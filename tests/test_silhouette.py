"""Unit tests for the silhouette coefficient."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.metrics.silhouette import silhouette_samples, silhouette_score


class TestSilhouette:
    def test_well_separated_blobs_have_high_score(self, blob_data):
        points, labels = blob_data
        assert silhouette_score(points, labels) > 0.7

    def test_random_labels_have_low_score(self, blob_data, rng):
        points, labels = blob_data
        shuffled = rng.permutation(labels)
        assert silhouette_score(points, shuffled) < silhouette_score(points, labels)

    def test_values_in_range(self, blob_data):
        points, labels = blob_data
        values = silhouette_samples(points, labels)
        assert values.shape == (points.shape[0],)
        assert np.all(values >= -1.0) and np.all(values <= 1.0)

    def test_precomputed_matches_feature_input(self, blob_data):
        points, labels = blob_data
        direct = silhouette_score(points, labels)
        matrix = pairwise_distances(points)
        precomputed = silhouette_score(matrix, labels, precomputed=True)
        assert direct == pytest.approx(precomputed)

    def test_single_cluster_returns_zero(self, blob_data):
        points, _ = blob_data
        assert silhouette_score(points, np.zeros(points.shape[0], dtype=int)) == 0.0

    def test_subsampling(self, blob_data):
        points, labels = blob_data
        value = silhouette_score(points, labels, sample_size=30, random_state=0)
        assert -1.0 <= value <= 1.0

    def test_invalid_distance_matrix(self):
        asymmetric = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError):
            silhouette_samples(asymmetric, [0, 1], precomputed=True)

    def test_label_length_mismatch(self, blob_data):
        points, labels = blob_data
        with pytest.raises(ValidationError):
            silhouette_samples(points, labels[:-1])
