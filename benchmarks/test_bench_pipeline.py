"""E6 — Figure 1: the k-Graph pipeline end-to-end.

Times each stage of the pipeline (graph embedding, graph clustering,
consensus clustering, interpretability computation) on one dataset and
verifies the stage outputs the figure describes: M graphs, M partitions, one
consensus matrix, one final partition and the selected graph.
"""

from __future__ import annotations

import pytest

from bench_utils import bench_catalogue, format_table, report
from repro.core.kgraph import KGraph
from repro.metrics.clustering import adjusted_rand_index


def _run_pipeline():
    dataset = bench_catalogue().get("cylinder_bell_funnel").generate(random_state=4)
    model = KGraph(n_clusters=dataset.n_classes, n_lengths=4, random_state=4)
    model.fit(dataset.data)
    return dataset, model


@pytest.mark.benchmark(group="E6-pipeline")
def test_bench_pipeline_stages(benchmark):
    dataset, model = benchmark.pedantic(_run_pipeline, rounds=1, iterations=1)
    result = model.result_

    stage_rows = [
        {"stage": stage, "seconds": seconds} for stage, seconds in result.timings.items()
    ]
    artifact_rows = [
        {"artifact": "graphs (one per length)", "count": len(result.graphs)},
        {"artifact": "per-length partitions L_l", "count": len(result.partitions)},
        {"artifact": "consensus matrix", "count": 1},
        {"artifact": "final labels L", "count": int(result.labels.shape[0])},
        {"artifact": "selected length", "count": result.optimal_length},
        {"artifact": "gamma-graphoids", "count": len(result.gamma_graphoids)},
    ]
    ari = adjusted_rand_index(dataset.labels, result.labels)
    summary = (
        format_table(stage_rows, ["stage", "seconds"])
        + "\n\n"
        + format_table(artifact_rows, ["artifact", "count"])
        + f"\n\nfinal ARI vs ground truth on {dataset.name}: {ari:.3f}"
    )
    report("E6: k-Graph pipeline end-to-end (Fig. 1)", summary)
    benchmark.extra_info["ari"] = round(ari, 3)
    benchmark.extra_info["stages"] = {row["stage"]: round(row["seconds"], 4) for row in stage_rows}

    assert len(result.graphs) == len(result.partitions)
    assert result.consensus_matrix.shape == (dataset.n_series, dataset.n_series)
    assert ari > 0.4
