"""Interactive dashboard server (stdlib ``http.server``).

The Streamlit app's widgets are replaced by query parameters:

* ``/``                      — dashboard for the default dataset
* ``/?dataset=<name>``       — pick another catalogue dataset
* ``&lam=0.6&gam=0.7``       — graphoid colouring thresholds
* ``&node=12``               — selected node of the Graph frame
* ``&measure=nmi``           — Benchmark-frame measure
* ``/datasets``              — JSON list of available datasets
* ``/summary?dataset=<name>``— JSON session summary

Sessions are cached per (dataset, seed) so switching widgets does not refit
the models, mirroring Streamlit's ``@st.cache_resource`` behaviour.

The HTTP plumbing in this module is application-agnostic: any object with a
``handle_request(method, path, body) -> (status, content_type, body)``
method (or a legacy GET-only ``handle(path)``) can be served with
:func:`serve_application` — the model-serving API of :mod:`repro.serve`
reuses it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from repro.benchmark.runner import BenchmarkResult
from repro.datasets.catalogue import DatasetCatalogue, default_catalogue
from repro.exceptions import VisualizationError
from repro.viz.dashboard import build_dashboard
from repro.viz.session import GraphintSession

Response = Tuple[int, str, str]


def json_error(status: int, message: str, **extra: object) -> Response:
    """A structured JSON error body shared by every served application.

    The payload shape is stable —
    ``{"error": {"status": ..., "message": ..., ...}}`` — so clients can
    rely on it across the dashboard and the model-serving API.
    """
    payload = {"error": {"status": int(status), "message": message, **extra}}
    return int(status), "application/json", json.dumps(payload, indent=2)


class DashboardApplication:
    """Request-independent application state (catalogue, cached sessions)."""

    #: Routes advertised in 404 bodies so clients can discover the API.
    ROUTES: List[str] = ["/", "/datasets", "/summary"]

    def __init__(
        self,
        *,
        catalogue: Optional[DatasetCatalogue] = None,
        benchmark_results: Optional[Sequence[BenchmarkResult]] = None,
        random_state: int = 0,
        n_lengths: int = 4,
        backend=None,
        n_jobs: Optional[int] = None,
        retry=None,
        fallback=None,
    ) -> None:
        self.catalogue = catalogue if catalogue is not None else default_catalogue()
        self.benchmark_results = list(benchmark_results) if benchmark_results else []
        self.random_state = int(random_state)
        self.n_lengths = int(n_lengths)
        self.backend = backend
        self.n_jobs = n_jobs
        self.retry = retry
        self.fallback = fallback
        self._sessions: Dict[str, GraphintSession] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def session_for(self, dataset_name: str) -> GraphintSession:
        """Return (and cache) the fitted session for ``dataset_name``."""
        with self._lock:
            if dataset_name not in self._sessions:
                dataset = self.catalogue.get(dataset_name).generate(
                    random_state=self.random_state
                )
                session = GraphintSession(
                    dataset,
                    n_lengths=self.n_lengths,
                    random_state=self.random_state,
                    backend=self.backend,
                    n_jobs=self.n_jobs,
                    retry=self.retry,
                    fallback=self.fallback,
                )
                session.fit()
                session.build_quizzes()
                self._sessions[dataset_name] = session
            return self._sessions[dataset_name]

    def default_dataset(self) -> str:
        """The dataset shown when none is requested."""
        names = self.catalogue.names()
        if not names:
            raise VisualizationError("the catalogue is empty")
        return "cylinder_bell_funnel" if "cylinder_bell_funnel" in names else names[0]

    # ------------------------------------------------------------------ #
    def handle_request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Response:
        """Route one request; the dashboard only speaks GET."""
        if method != "GET":
            return json_error(
                405, f"method {method} not allowed on the dashboard", allow=["GET"]
            )
        return self.handle(path)

    def handle(self, path: str) -> Response:
        """Route a GET request path to (status, content_type, body)."""
        parsed = urlparse(path)
        params = {key: values[0] for key, values in parse_qs(parsed.query).items()}
        route = parsed.path.rstrip("/") or "/"

        if route == "/datasets":
            return 200, "application/json", json.dumps(self.catalogue.summary_rows(), indent=2)

        dataset_name = params.get("dataset", self.default_dataset())
        if dataset_name not in self.catalogue:
            return json_error(
                404,
                f"unknown dataset {dataset_name!r}",
                datasets=self.catalogue.names(),
            )

        if route == "/summary":
            session = self.session_for(dataset_name)
            return 200, "application/json", json.dumps(session.summary(), indent=2, default=float)

        if route == "/":
            session = self.session_for(dataset_name)
            try:
                lam = float(params["lam"]) if "lam" in params else None
                gam = float(params["gam"]) if "gam" in params else None
                node = int(params["node"]) if "node" in params else None
            except ValueError:
                return json_error(400, "lam/gam must be floats and node an integer")
            measure = params.get("measure", "ari")
            try:
                page = build_dashboard(
                    session,
                    benchmark_results=self.benchmark_results,
                    measure=measure,
                    lambda_threshold=lam,
                    gamma_threshold=gam,
                    selected_node=node,
                )
            except Exception as exc:  # noqa: BLE001 - surface rendering errors as 500s
                return json_error(500, f"rendering failed: {exc}")
            return 200, "text/html", page

        return json_error(404, f"unknown route {route!r}", routes=self.ROUTES)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter over any application exposing ``handle_request``."""

    application = None  # injected by serve_application

    #: Reject request bodies larger than this before buffering them —
    #: a handful of oversized concurrent POSTs must not exhaust memory.
    max_body_bytes = 64 * 1024 * 1024

    #: Socket timeout (socketserver applies it to the connection): bounds
    #: how long a slow or stalled client can pin a handler thread.
    timeout = 60

    def _route(self, method: str) -> Response:
        body: Optional[bytes] = None
        if method == "POST":
            try:
                content_length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                return json_error(400, "malformed Content-Length header")
            if content_length < 0:
                return json_error(400, "malformed Content-Length header")
            if content_length > self.max_body_bytes:
                return json_error(
                    413,
                    f"request body of {content_length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit",
                )
            body = self.rfile.read(content_length) if content_length else b""
        application = self.application
        if hasattr(application, "handle_request"):
            return application.handle_request(method, self.path, body)
        if method == "GET":
            # Legacy GET-only applications expose handle(path) instead.
            return application.handle(self.path)
        return json_error(405, f"method {method} not allowed", allow=["GET"])

    def _dispatch(self, method: str) -> None:
        try:
            status, content_type, text = self._route(method)
        except Exception as exc:  # noqa: BLE001 - never drop the connection
            # Applications map expected failures themselves; anything that
            # still escapes becomes the documented JSON 500 instead of a
            # closed socket mid-response.
            status, content_type, text = json_error(
                500, f"internal error: {type(exc).__name__}: {exc}"
            )
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        if status == 405:
            # RFC 9110: a 405 MUST carry an Allow header; json_error put the
            # list in the body, surface it as the header too.
            try:
                allow = json.loads(text)["error"]["allow"]
                self.send_header("Allow", ", ".join(allow))
            except (json.JSONDecodeError, KeyError, TypeError):
                pass
        if status == 503:
            # Same idiom for load shedding: when the application put a
            # retry_after hint in the body, surface it as the Retry-After
            # header (RFC 9110 allows delay-seconds) so well-behaved
            # clients back off without parsing the JSON.
            try:
                retry_after = json.loads(text)["error"]["retry_after"]
                self.send_header("Retry-After", str(int(retry_after)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                pass
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming convention
        self._dispatch("POST")

    def log_message(self, format, *args):  # noqa: A002 - silence default logging
        return


def serve_application(
    application,
    *,
    host: str = "127.0.0.1",
    port: int = 8050,
    poll: bool = True,
    ready: Optional[Callable[[ThreadingHTTPServer], None]] = None,
) -> ThreadingHTTPServer:
    """Serve any request-routing application over HTTP.

    ``port=0`` binds an OS-assigned ephemeral port; the actually-bound
    port is ``server.server_port``.  ``ready`` (if given) is invoked with
    the configured server after the socket is bound but before serving —
    the hook callers use to report the real address, and the only way to
    learn it when ``poll`` is true (the call then blocks in
    ``serve_forever`` until interrupted or shut down).  With ``poll``
    false the server object is returned so the caller can drive it (tests
    start ``serve_forever`` on their own thread, or issue single
    ``handle_request`` calls).
    """
    handler = type("BoundHandler", (_Handler,), {"application": application})
    server = ThreadingHTTPServer((host, port), handler)
    if ready is not None:
        ready(server)
    if poll:
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
    return server


def serve_dashboard(
    application: Optional[DashboardApplication] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 8050,
    poll: bool = True,
    ready: Optional[Callable[[ThreadingHTTPServer], None]] = None,
) -> ThreadingHTTPServer:
    """Start the dashboard HTTP server (see :func:`serve_application`)."""
    if application is None:
        application = DashboardApplication()
    return serve_application(
        application, host=host, port=port, poll=poll, ready=ready
    )
