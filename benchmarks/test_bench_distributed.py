"""E14 — Distributed execution: worker pools and the data-plane economics.

Two real ``graphint worker`` services are started on loopback ephemeral
ports (the same subprocess + HTTP path a multi-host deployment uses), then:

* **Data plane**: the embed stage of one multi-length ``KGraph.fit`` is
  dispatched to the worker pool with and without a shared
  :class:`~repro.distributed.StageDataPlane`.  The plane must keep labels
  bit-identical while collapsing coordinator ``bytes_shipped`` by at least
  10x — the dataset arrays travel once as content fingerprints instead of
  once per job.
* **Sharded grid**: a k-Graph estimator grid sharded across the pool must
  match the serial sweep bit-identically (wall-clock is recorded, not
  asserted: on one machine two loopback workers mostly measure HTTP
  overhead, the sharding win appears with real hosts).

Results are persisted to ``benchmarks/results/distributed.json``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from bench_utils import RESULTS_DIR, format_table, full_mode, report
from repro.benchmark.runner import BenchmarkRunner
from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.distributed import DistributedBackend, StageDataPlane

_ANNOUNCE = re.compile(r"http://([\d.]+):(\d+) \(pid (\d+)\)")

if full_mode():
    FIT_N_SERIES, FIT_LENGTH, FIT_N_LENGTHS = 60, 256, 8
    GRID = {"n_lengths": [2, 3, 4], "n_sectors": [8, 10]}
else:
    FIT_N_SERIES, FIT_LENGTH, FIT_N_LENGTHS = 32, 128, 4
    GRID = {"n_lengths": [2, 3], "n_sectors": [8, 10]}

RESULTS: dict = {}


def _spawn_worker(data_plane: str):
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.viz.cli",
            "worker",
            "--port",
            "0",
            "--data-plane",
            data_plane,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 120
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = _ANNOUNCE.search(line)
        if match:
            return process, f"{match.group(1)}:{match.group(2)}"
    process.kill()
    raise RuntimeError(f"worker never announced itself: {''.join(lines)!r}")


@pytest.fixture(scope="module")
def worker_pool():
    plane_dir = tempfile.mkdtemp(prefix="repro-bench-distributed-")
    processes, urls = [], []
    for _ in range(2):
        process, url = _spawn_worker(plane_dir)
        processes.append(process)
        urls.append(url)
    yield {"urls": urls, "plane_dir": plane_dir}
    for process in processes:
        if process.poll() is None:
            process.terminate()
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=15)
        process.stdout.close()


def _fit_embed_distributed(urls, plane):
    backend = DistributedBackend(urls, data_plane=plane)
    dataset = make_cylinder_bell_funnel(
        n_series=FIT_N_SERIES, length=FIT_LENGTH, noise=0.2, random_state=0
    )
    model = KGraph(
        n_clusters=3,
        n_lengths=FIT_N_LENGTHS,
        random_state=0,
        stage_backends={"embed": backend},
    )
    try:
        start = time.perf_counter()
        labels = model.fit_predict(dataset.data)
        elapsed = time.perf_counter() - start
        return labels, model.optimal_length_, backend.bytes_shipped, elapsed
    finally:
        backend.close()


def test_data_plane_collapses_embed_payloads(worker_pool):
    dataset = make_cylinder_bell_funnel(
        n_series=FIT_N_SERIES, length=FIT_LENGTH, noise=0.2, random_state=0
    )
    serial_model = KGraph(n_clusters=3, n_lengths=FIT_N_LENGTHS, random_state=0)
    serial_labels = serial_model.fit_predict(dataset.data)

    plain_labels, plain_length, bytes_no_plane, plain_seconds = (
        _fit_embed_distributed(worker_pool["urls"], None)
    )
    plane = StageDataPlane(worker_pool["plane_dir"], min_bytes=8 * 1024)
    planed_labels, planed_length, bytes_plane, planed_seconds = (
        _fit_embed_distributed(worker_pool["urls"], plane)
    )

    np.testing.assert_array_equal(plain_labels, serial_labels)
    np.testing.assert_array_equal(planed_labels, serial_labels)
    assert plain_length == planed_length == serial_model.optimal_length_

    ratio = bytes_no_plane / max(bytes_plane, 1)
    assert ratio >= 10, (
        f"the data plane must collapse coordinator bytes >=10x, got "
        f"{ratio:.1f}x ({bytes_no_plane} B -> {bytes_plane} B)"
    )
    RESULTS["data_plane"] = {
        "n_series": FIT_N_SERIES,
        "length": FIT_LENGTH,
        "n_lengths": FIT_N_LENGTHS,
        "bytes_shipped_no_plane": int(bytes_no_plane),
        "bytes_shipped_with_plane": int(bytes_plane),
        "reduction_factor": round(ratio, 1),
        "arrays_stashed": plane.arrays_stashed,
        "arrays_deduplicated": plane.arrays_deduplicated,
        "fit_seconds_no_plane": round(plain_seconds, 3),
        "fit_seconds_with_plane": round(planed_seconds, 3),
    }


def _grid_comparable(result):
    row = result.to_dict()
    row.pop("runtime_seconds", None)
    for measure in ("stages_cached", "stages_executed"):
        row.pop(measure, None)
    return row


def test_sharded_grid_matches_serial(worker_pool):
    dataset = make_cylinder_bell_funnel(
        n_series=FIT_N_SERIES, length=FIT_LENGTH, noise=0.2, random_state=3
    )
    base = {"n_clusters": 3}

    start = time.perf_counter()
    serial = BenchmarkRunner(["kgraph"]).run_estimator_grid(
        dataset, "kgraph", GRID, base=base, random_state=7
    )
    serial_seconds = time.perf_counter() - start

    runner = BenchmarkRunner(
        ["kgraph"],
        backend="distributed:"
        + ",".join(worker_pool["urls"])
        + "@"
        + worker_pool["plane_dir"],
    )
    start = time.perf_counter()
    sharded = runner.run_estimator_grid(
        dataset, "kgraph", GRID, base=base, random_state=7
    )
    sharded_seconds = time.perf_counter() - start

    assert not any(result.failed for result in sharded)
    assert [_grid_comparable(result) for result in sharded] == [
        _grid_comparable(result) for result in serial
    ]
    RESULTS["sharded_grid"] = {
        "combinations": len(serial),
        "workers": len(worker_pool["urls"]),
        "serial_seconds": round(serial_seconds, 3),
        "sharded_seconds": round(sharded_seconds, 3),
        "ari_per_combo": [
            round(result.measures.get("ari", float("nan")), 4)
            for result in sharded
        ],
    }


def test_report_and_persist(worker_pool):
    if not RESULTS:
        pytest.skip("no results collected (earlier tests failed)")
    plane = RESULTS.get("data_plane", {})
    grid = RESULTS.get("sharded_grid", {})
    rows = []
    if plane:
        rows.append(
            {
                "scenario": "embed fan-out, no plane",
                "bytes_shipped": plane["bytes_shipped_no_plane"],
                "seconds": plane["fit_seconds_no_plane"],
            }
        )
        rows.append(
            {
                "scenario": "embed fan-out, data plane",
                "bytes_shipped": plane["bytes_shipped_with_plane"],
                "seconds": plane["fit_seconds_with_plane"],
            }
        )
    text = format_table(rows, ["scenario", "bytes_shipped", "seconds"])
    if plane:
        text += (
            f"\n\ncoordinator payload reduction: {plane['reduction_factor']}x"
        )
    if grid:
        text += (
            f"\nsharded grid: {grid['combinations']} combos over "
            f"{grid['workers']} workers, serial {grid['serial_seconds']} s vs "
            f"sharded {grid['sharded_seconds']} s (bit-identical)"
        )
    report("E14: distributed execution", text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "distributed.json").write_text(
        json.dumps(RESULTS, indent=2) + "\n", encoding="utf-8"
    )
