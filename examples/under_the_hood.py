"""Scenario 3: dive into the algorithmic steps of k-Graph.

Run with::

    python examples/under_the_hood.py

Answers the two questions the demo asks the participant to investigate:

* *How is the subsequence length selected for the graph displayed in the
  Graph frame?* — by maximising the product of the consistency W_c(ℓ) and the
  interpretability factor W_e(ℓ).
* *How is the graph used to cluster the time series?* — through the node/edge
  feature matrix clustered per length, then a consensus matrix across lengths
  clustered spectrally.

The script prints each intermediate artifact for one dataset.
"""

from __future__ import annotations

import numpy as np

from repro import KGraph, generate_dataset
from repro.metrics import adjusted_rand_index


def main() -> None:
    dataset = generate_dataset("seasonal_mixture", random_state=2)
    model = KGraph(n_clusters=dataset.n_classes, n_lengths=4, random_state=2)
    model.fit(dataset.data)
    result = model.result_

    print(f"dataset: {dataset.name} ({dataset.n_series} x {dataset.length})")
    print(f"\n--- step (b): graph embedding ({len(result.graphs)} graphs) ---")
    for length, graph in sorted(result.graphs.items()):
        print(f"  length {length:>3}: {graph.n_nodes:>3} nodes, {graph.n_edges:>4} edges")

    print("\n--- step (c): graph clustering (one partition per length) ---")
    for partition in result.partitions:
        ari = adjusted_rand_index(dataset.labels, partition.labels)
        print(f"  length {partition.length:>3}: feature matrix "
              f"{partition.feature_matrix.shape[0]}x{partition.feature_matrix.shape[1]}, "
              f"ARI vs truth = {ari:.3f}")

    print("\n--- step (d): consensus clustering ---")
    consensus = result.consensus_matrix
    same = consensus[dataset.labels[:, None] == dataset.labels[None, :]].mean()
    different = consensus[dataset.labels[:, None] != dataset.labels[None, :]].mean()
    print(f"  consensus matrix: {consensus.shape[0]}x{consensus.shape[1]}")
    print(f"  mean co-association within true classes : {same:.3f}")
    print(f"  mean co-association across true classes : {different:.3f}")
    print(f"  final ARI vs truth: {adjusted_rand_index(dataset.labels, result.labels):.3f}")

    print("\n--- interpretability computation: length selection ---")
    print("  length   W_c      W_e      W_c*W_e")
    for score in result.length_scores:
        marker = "  <-- selected" if score.length == result.optimal_length else ""
        print(f"  {score.length:>6}   {score.consistency:.3f}    "
              f"{score.interpretability:.3f}    {score.combined:.3f}{marker}")

    print("\n--- pipeline timings ---")
    for stage, seconds in result.timings.items():
        print(f"  {stage:<22} {seconds:.3f}s")

    print("\nchange the dataset name at the top of main() to explore other datasets,")
    print("as the demo scenario suggests.")


if __name__ == "__main__":
    main()
