"""Retry, timeout and deadline policy for :meth:`ExecutionBackend.map_jobs`.

A :class:`RetryPolicy` is a frozen, picklable description of how a fan-out
should behave under failure:

* ``max_attempts`` bounds how many times one job may be dispatched;
* ``backoff`` / ``backoff_multiplier`` / ``jitter`` shape the delay between
  a job's attempts — the jitter is drawn from a :func:`random.Random`
  seeded by ``(seed, job index, attempt)``, so the schedule is a pure
  function of the policy and never of wall-clock randomness;
* ``retryable`` filters which exceptions are worth retrying (``None``
  retries everything, including :class:`JobTimeoutError`);
* ``timeout`` bounds one attempt of one job, ``deadline`` bounds the whole
  fan-out — both enforced by the backends with watchdogs that *abandon*
  hung work and record ``timed_out`` outcomes instead of blocking forever;
* ``max_pool_rebuilds`` bounds how many times a process backend will
  replace a broken/hung worker pool before giving up (see
  :class:`WorkerPoolExhausted`).

Backends accept a policy per call (``map_jobs(..., retry=...)``) or as an
instance default (``resolve_backend(..., retry=...)``); ``None`` keeps the
historical single-attempt behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.exceptions import ParallelExecutionError, ValidationError

#: Pool rebuilds allowed when no policy is supplied: worker-loss recovery
#: is always on (a killed worker must not poison a whole fan-out), only
#: *failure retries* are opt-in.
DEFAULT_MAX_POOL_REBUILDS = 2


class JobTimeoutError(ParallelExecutionError):
    """A job exceeded its per-attempt ``timeout`` or the fan-out ``deadline``."""


class WorkerCrashError(ParallelExecutionError):
    """A job, isolated to a single-job chunk, still killed its worker."""


class WorkerPoolExhausted(ParallelExecutionError):
    """The pool broke more than ``max_pool_rebuilds`` times in one fan-out.

    Outcomes carrying this exception are the demotion signal a
    :class:`~repro.parallel.backends.FallbackBackend` reacts to.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Frozen retry/timeout configuration for one fan-out (see module docs).

    Attributes
    ----------
    max_attempts:
        Dispatches allowed per job (``1`` = no retries).
    backoff:
        Base delay in seconds before a job's second attempt; ``0`` retries
        immediately.
    backoff_multiplier:
        Growth factor applied per additional attempt (exponential backoff).
    jitter:
        Fraction of the delay added as deterministic noise: the delay for
        attempt ``a`` of job ``i`` is
        ``backoff * multiplier**(a-1) * (1 + jitter * u)`` with
        ``u = Random(f"{seed}:{i}:{a}").random()``.
    seed:
        Seeds the jitter stream (no wall-clock randomness, ever).
    retryable:
        Predicate over the captured exception; ``None`` retries every
        failure.  Must be picklable only if the *policy* itself has to
        cross a process boundary (the backends keep it coordinator-side).
    timeout:
        Seconds one attempt of one job may run before it is abandoned with
        a ``timed_out`` outcome (chunked process dispatches get
        ``timeout * len(chunk)``).
    deadline:
        Seconds the whole ``map_jobs`` call may take; on expiry the
        remaining jobs are recorded as ``timed_out`` and the call returns.
    max_pool_rebuilds:
        Broken/hung worker pools replaced before the remaining jobs fail
        with :class:`WorkerPoolExhausted`.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    backoff_multiplier: float = 2.0
    jitter: float = 0.0
    seed: int = 0
    retryable: Optional[Callable[[BaseException], bool]] = None
    timeout: Optional[float] = None
    deadline: Optional[float] = None
    max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS

    def __post_init__(self) -> None:
        if int(self.max_attempts) < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        for name in ("backoff", "jitter"):
            if float(getattr(self, name)) < 0:
                raise ValidationError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if float(self.backoff_multiplier) < 1.0:
            raise ValidationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        for name in ("timeout", "deadline"):
            value = getattr(self, name)
            if value is not None and float(value) <= 0:
                raise ValidationError(
                    f"{name} must be a positive number of seconds or None, "
                    f"got {value}"
                )
        if int(self.max_pool_rebuilds) < 0:
            raise ValidationError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    # ------------------------------------------------------------------ #
    def should_retry(self, exception: Optional[BaseException], attempts: int) -> bool:
        """Whether a job that has failed ``attempts`` times gets another one."""
        if attempts >= int(self.max_attempts):
            return False
        if self.retryable is None:
            return True
        try:
            return bool(self.retryable(exception))
        except Exception:  # noqa: BLE001 - a broken predicate must not crash the fan-out
            return False

    def backoff_seconds(self, attempt: int, index: int = 0) -> float:
        """Deterministic delay before ``attempt`` (2-based) of job ``index``.

        A pure function of ``(policy, index, attempt)`` — calling it twice
        yields the same delay, which is what makes backoff schedules
        assertable in tests.
        """
        if float(self.backoff) <= 0 or attempt <= 1:
            return 0.0
        delay = float(self.backoff) * float(self.backoff_multiplier) ** (attempt - 2)
        if float(self.jitter) > 0:
            # String seeds hash through sha512, stable across processes and
            # Python versions (unlike tuple seeds, which Random rejects).
            stream = random.Random(f"{int(self.seed)}:{int(index)}:{int(attempt)}")
            delay *= 1.0 + float(self.jitter) * stream.random()
        return delay
