"""Deep-learning-style clustering baselines on the NumPy auto-encoder.

The paper's introduction discusses Deep Auto-Encoder clustering (DAE) and
Deep Temporal Clustering (DTC); the Benchmark frame also includes SOM-VAE-like
quantised-latent clustering.  These re-implementations keep the defining
two-stage design (representation learning, then clustering in latent space)
while staying dependency-free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.neural import DenseAutoencoder
from repro.cluster.base import BaseClusterer
from repro.cluster.kmeans import KMeans
from repro.cluster.som import SelfOrganizingMap
from repro.utils.normalization import znormalize_dataset
from repro.utils.validation import check_array, check_positive_int, check_random_state


class DAEClustering(BaseClusterer):
    """Deep auto-encoder + k-Means on the latent space (DAE baseline)."""

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        latent_dim: int = 8,
        n_epochs: int = 60,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.latent_dim = check_positive_int(latent_dim, "latent_dim")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.autoencoder_: Optional[DenseAutoencoder] = None
        self.embedding_: Optional[np.ndarray] = None

    def fit(self, data) -> "DAEClustering":
        """Train the auto-encoder then cluster its latent codes."""
        array = znormalize_dataset(check_array(data, name="data", ndim=2, min_rows=2))
        rng = check_random_state(self.random_state)
        latent_dim = min(self.latent_dim, max(2, array.shape[1] // 4))
        self.autoencoder_ = DenseAutoencoder(
            latent_dim=latent_dim,
            n_epochs=self.n_epochs,
            random_state=rng,
        ).fit(array)
        self.embedding_ = self.autoencoder_.encode(array)
        kmeans = KMeans(n_clusters=self.n_clusters, n_init=5, random_state=rng)
        self.labels_ = kmeans.fit_predict(self.embedding_)
        return self


class DTCClustering(BaseClusterer):
    """Deep-temporal-clustering-style baseline.

    DTC initialises from an auto-encoder and then refines soft cluster
    assignments in the latent space with a Student-t kernel and a sharpened
    target distribution (the DEC/DTC self-training loop).  The refinement here
    updates the centroids only (the encoder is frozen), which captures the
    assignment-sharpening behaviour without a full backprop-through-encoder
    implementation.
    """

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        latent_dim: int = 8,
        n_epochs: int = 60,
        n_refine_iter: int = 30,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.latent_dim = check_positive_int(latent_dim, "latent_dim")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.n_refine_iter = check_positive_int(n_refine_iter, "n_refine_iter")
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.embedding_: Optional[np.ndarray] = None
        self.cluster_centers_: Optional[np.ndarray] = None

    @staticmethod
    def _soft_assign(embedding: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Student-t soft assignment (DEC equation 1, one degree of freedom)."""
        distances = np.sum(
            (embedding[:, None, :] - centers[None, :, :]) ** 2, axis=2
        )
        q = 1.0 / (1.0 + distances)
        return q / q.sum(axis=1, keepdims=True)

    @staticmethod
    def _target_distribution(q: np.ndarray) -> np.ndarray:
        """Sharpened target distribution (DEC equation 3)."""
        weight = q**2 / q.sum(axis=0, keepdims=True)
        return weight / weight.sum(axis=1, keepdims=True)

    def fit(self, data) -> "DTCClustering":
        """Auto-encoder init + soft-assignment refinement."""
        array = znormalize_dataset(check_array(data, name="data", ndim=2, min_rows=2))
        rng = check_random_state(self.random_state)
        latent_dim = min(self.latent_dim, max(2, array.shape[1] // 4))
        autoencoder = DenseAutoencoder(
            latent_dim=latent_dim, n_epochs=self.n_epochs, random_state=rng
        ).fit(array)
        embedding = autoencoder.encode(array)
        self.embedding_ = embedding

        kmeans = KMeans(n_clusters=self.n_clusters, n_init=5, random_state=rng)
        kmeans.fit(embedding)
        centers = kmeans.cluster_centers_.copy()

        for _ in range(self.n_refine_iter):
            q = self._soft_assign(embedding, centers)
            p = self._target_distribution(q)
            # Weighted centroid update toward the sharpened assignments.
            weights = p.sum(axis=0) + 1e-12
            centers = (p.T @ embedding) / weights[:, None]

        self.cluster_centers_ = centers
        self.labels_ = np.argmax(self._soft_assign(embedding, centers), axis=1)
        return self


class SOMVAEClustering(BaseClusterer):
    """SOM-VAE-style baseline: auto-encoder latent space quantised by a SOM."""

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        latent_dim: int = 8,
        n_epochs: int = 60,
        grid_shape=(3, 3),
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.latent_dim = check_positive_int(latent_dim, "latent_dim")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.grid_shape = (int(grid_shape[0]), int(grid_shape[1]))
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.embedding_: Optional[np.ndarray] = None

    def fit(self, data) -> "SOMVAEClustering":
        """Train the auto-encoder, then a SOM on its latent space."""
        array = znormalize_dataset(check_array(data, name="data", ndim=2, min_rows=2))
        rng = check_random_state(self.random_state)
        latent_dim = min(self.latent_dim, max(2, array.shape[1] // 4))
        autoencoder = DenseAutoencoder(
            latent_dim=latent_dim, n_epochs=self.n_epochs, random_state=rng
        ).fit(array)
        self.embedding_ = autoencoder.encode(array)
        som = SelfOrganizingMap(
            grid_shape=self.grid_shape,
            n_clusters=self.n_clusters,
            n_epochs=15,
            random_state=rng,
        )
        self.labels_ = som.fit_predict(self.embedding_)
        return self
