"""E2 / E7 — Benchmark frame (Fig. 3, frame 1.2).

Runs the full method population (the 14 baselines plus k-Graph) over the
dataset catalogue and reproduces what the frame shows:

* the box-plot statistics of each method's score distribution for the four
  evaluation measures (ARI, RI, NMI, AMI),
* the filtered views (by dataset type, length, number of classes, number of
  series) the frame's widgets produce, and
* the overall mean-rank table (E7): the headline claim is that k-Graph is
  competitive with the best baselines while being interpretable.
"""

from __future__ import annotations

import pytest

from bench_utils import RESULTS_DIR, bench_catalogue, format_table, full_mode, report
from repro.baselines.registry import all_baseline_names
from repro.benchmark.aggregate import (
    boxplot_summary,
    filter_results,
    mean_rank_table,
    summarize_by_method,
)
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.store import save_results

METHODS = all_baseline_names() + ["kgraph"]


def _run_campaign():
    runner = BenchmarkRunner(METHODS, catalogue=bench_catalogue(), random_state=0)
    return runner.run()


@pytest.mark.benchmark(group="E2-benchmark-frame")
def test_bench_benchmark_frame(benchmark):
    results = benchmark.pedantic(_run_campaign, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    save_results(results, RESULTS_DIR / "benchmark_frame_results.json")

    sections = []
    # Box plot per measure (the frame's main plot, one measure at a time).
    for measure in ("ari", "ri", "nmi", "ami"):
        stats = boxplot_summary(results, measure)
        rows = [
            {"method": method, **{k: v for k, v in values.items() if k != "n"}}
            for method, values in sorted(stats.items(), key=lambda kv: -kv[1]["median"])
        ]
        sections.append(
            f"--- {measure.upper()} distribution per method (box-plot statistics) ---\n"
            + format_table(rows, ["method", "min", "q1", "median", "q3", "max", "mean"])
        )

    # Mean score + runtime per method.
    summary = summarize_by_method(results)
    rows = [
        {"method": method, **values}
        for method, values in sorted(summary.items(), key=lambda kv: -kv[1].get("ari", 0.0))
    ]
    sections.append(
        "--- mean score per method ---\n"
        + format_table(rows, ["method", "ari", "ri", "nmi", "ami", "runtime_seconds"])
    )

    # E7: mean rank (1 = best).
    ranks = mean_rank_table(results, "ari")
    rank_rows = [{"method": m, "mean_rank": r} for m, r in sorted(ranks.items(), key=lambda kv: kv[1])]
    sections.append("--- mean rank over datasets (ARI, 1 = best) ---\n" + format_table(rank_rows, ["method", "mean_rank"]))

    # Filtered views, as produced by the frame's widgets.
    filters = [
        ("dataset type = synthetic-shape", {"dataset_type": "synthetic-shape"}),
        ("number of classes = 2", {"min_classes": 2, "max_classes": 2}),
        ("number of classes >= 3", {"min_classes": 3}),
    ]
    for label, kwargs in filters:
        subset = filter_results(results, **kwargs)
        if not subset:
            continue
        sub_summary = summarize_by_method(subset, measures=("ari",))
        sub_rows = [
            {"method": m, "ari": v.get("ari", float("nan"))}
            for m, v in sorted(sub_summary.items(), key=lambda kv: -kv[1].get("ari", 0.0))
        ][:6]
        sections.append(f"--- filter: {label} (top 6 by ARI) ---\n" + format_table(sub_rows, ["method", "ari"]))

    mode = "FULL catalogue" if full_mode() else "reduced catalogue (set REPRO_BENCH_FULL=1 for paper-scale sizes)"
    kgraph_rank = ranks.get("kgraph", float("nan"))
    conclusion = (
        f"\nmode: {mode}\n"
        f"k-Graph mean rank: {kgraph_rank:.2f} over {len(METHODS)} methods "
        f"(paper expectation: among the best performers)."
    )
    report("E2/E7: Benchmark frame (k-Graph vs 14 baselines)", "\n\n".join(sections) + conclusion)

    benchmark.extra_info["kgraph_mean_rank"] = round(kgraph_rank, 3)
    benchmark.extra_info["n_results"] = len(results)
    # Shape assertion: k-Graph must rank in the upper half of the population.
    assert kgraph_rank <= (len(METHODS) + 1) / 2.0
