"""Interactive dashboard server (stdlib ``http.server``).

The Streamlit app's widgets are replaced by query parameters:

* ``/``                      — dashboard for the default dataset
* ``/?dataset=<name>``       — pick another catalogue dataset
* ``&lam=0.6&gam=0.7``       — graphoid colouring thresholds
* ``&node=12``               — selected node of the Graph frame
* ``&measure=nmi``           — Benchmark-frame measure
* ``/datasets``              — JSON list of available datasets
* ``/summary?dataset=<name>``— JSON session summary

Sessions are cached per (dataset, seed) so switching widgets does not refit
the models, mirroring Streamlit's ``@st.cache_resource`` behaviour.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from repro.benchmark.runner import BenchmarkResult
from repro.datasets.catalogue import DatasetCatalogue, default_catalogue
from repro.exceptions import VisualizationError
from repro.viz.dashboard import build_dashboard
from repro.viz.session import GraphintSession


class DashboardApplication:
    """Request-independent application state (catalogue, cached sessions)."""

    def __init__(
        self,
        *,
        catalogue: Optional[DatasetCatalogue] = None,
        benchmark_results: Optional[Sequence[BenchmarkResult]] = None,
        random_state: int = 0,
        n_lengths: int = 4,
    ) -> None:
        self.catalogue = catalogue if catalogue is not None else default_catalogue()
        self.benchmark_results = list(benchmark_results) if benchmark_results else []
        self.random_state = int(random_state)
        self.n_lengths = int(n_lengths)
        self._sessions: Dict[str, GraphintSession] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def session_for(self, dataset_name: str) -> GraphintSession:
        """Return (and cache) the fitted session for ``dataset_name``."""
        with self._lock:
            if dataset_name not in self._sessions:
                dataset = self.catalogue.get(dataset_name).generate(
                    random_state=self.random_state
                )
                session = GraphintSession(
                    dataset,
                    n_lengths=self.n_lengths,
                    random_state=self.random_state,
                )
                session.fit()
                session.build_quizzes()
                self._sessions[dataset_name] = session
            return self._sessions[dataset_name]

    def default_dataset(self) -> str:
        """The dataset shown when none is requested."""
        names = self.catalogue.names()
        if not names:
            raise VisualizationError("the catalogue is empty")
        return "cylinder_bell_funnel" if "cylinder_bell_funnel" in names else names[0]

    # ------------------------------------------------------------------ #
    def handle(self, path: str) -> Tuple[int, str, str]:
        """Route a request path to (status, content_type, body)."""
        parsed = urlparse(path)
        params = {key: values[0] for key, values in parse_qs(parsed.query).items()}
        route = parsed.path.rstrip("/") or "/"

        if route == "/datasets":
            return 200, "application/json", json.dumps(self.catalogue.summary_rows(), indent=2)

        dataset_name = params.get("dataset", self.default_dataset())
        if dataset_name not in self.catalogue:
            return 404, "text/plain", f"unknown dataset {dataset_name!r}"

        if route == "/summary":
            session = self.session_for(dataset_name)
            return 200, "application/json", json.dumps(session.summary(), indent=2, default=float)

        if route == "/":
            session = self.session_for(dataset_name)
            try:
                lam = float(params["lam"]) if "lam" in params else None
                gam = float(params["gam"]) if "gam" in params else None
                node = int(params["node"]) if "node" in params else None
            except ValueError:
                return 400, "text/plain", "lam/gam must be floats and node an integer"
            measure = params.get("measure", "ari")
            try:
                page = build_dashboard(
                    session,
                    benchmark_results=self.benchmark_results,
                    measure=measure,
                    lambda_threshold=lam,
                    gamma_threshold=gam,
                    selected_node=node,
                )
            except Exception as exc:  # noqa: BLE001 - surface rendering errors as 500s
                return 500, "text/plain", f"rendering failed: {exc}"
            return 200, "text/html", page

        return 404, "text/plain", f"unknown route {route!r}"


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter over :class:`DashboardApplication`."""

    application: DashboardApplication = None  # injected by serve_dashboard

    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        status, content_type, body = self.application.handle(self.path)
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args):  # noqa: A002 - silence default logging
        return


def serve_dashboard(
    application: Optional[DashboardApplication] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 8050,
    poll: bool = True,
) -> ThreadingHTTPServer:
    """Start the dashboard HTTP server.

    When ``poll`` is true the call blocks (``serve_forever``); otherwise the
    configured server object is returned so the caller can drive it (tests use
    this to issue a single request).
    """
    if application is None:
        application = DashboardApplication()
    handler = type("BoundHandler", (_Handler,), {"application": application})
    server = ThreadingHTTPServer((host, port), handler)
    if poll:
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
    return server
