"""Unit tests for the SVG canvas and the plot functions."""

import numpy as np
import pytest

from repro.exceptions import VisualizationError
from repro.viz.plots import (
    bar_chart,
    box_plot,
    curve_comparison,
    heatmap,
    histogram,
    line_plot,
    scatter_plot,
    series_grid,
)
from repro.viz.svg import SVGCanvas
from repro.viz.theme import CLUSTER_PALETTE, color_for_cluster, diverging_color, sequential_color


def _is_svg(text: str) -> bool:
    return text.startswith("<svg") and text.rstrip().endswith("</svg>")


class TestSVGCanvas:
    def test_empty_canvas_serialises(self):
        canvas = SVGCanvas(100, 50)
        svg = canvas.to_svg()
        assert _is_svg(svg)
        assert 'width="100"' in svg and 'height="50"' in svg

    def test_primitives_appear_in_output(self):
        canvas = SVGCanvas(200, 200, background="#ffffff")
        canvas.rect(10, 10, 50, 20, fill="#ff0000", tooltip="a box")
        canvas.line(0, 0, 100, 100, dashed=True)
        canvas.polyline([(0, 0), (10, 5), (20, 0)], stroke="#00ff00")
        canvas.circle(50, 50, 5, tooltip="a node")
        canvas.text(5, 5, "hello <world>")
        canvas.arrow(0, 0, 30, 30)
        svg = canvas.to_svg()
        for tag in ("<rect", "<line", "<polyline", "<circle", "<text"):
            assert tag in svg
        assert "stroke-dasharray" in svg
        assert "&lt;world&gt;" in svg  # text is escaped
        assert "<title>a node</title>" in svg

    def test_invalid_dimensions(self):
        with pytest.raises(VisualizationError):
            SVGCanvas(0, 10)

    def test_polyline_needs_two_points(self):
        canvas = SVGCanvas(10, 10)
        with pytest.raises(VisualizationError):
            canvas.polyline([(1, 1)])


class TestTheme:
    def test_cluster_colors_cycle(self):
        assert color_for_cluster(0) == CLUSTER_PALETTE[0]
        assert color_for_cluster(len(CLUSTER_PALETTE)) == CLUSTER_PALETTE[0]

    def test_sequential_color_range(self):
        for value in (-1.0, 0.0, 0.5, 1.0, 2.0):
            color = sequential_color(value)
            assert color.startswith("#") and len(color) == 7

    def test_diverging_color_range(self):
        assert diverging_color(-1.0) != diverging_color(1.0)
        assert diverging_color(0.0).startswith("#")


class TestPlots:
    def test_line_plot(self, rng):
        svg = line_plot([rng.normal(size=50), rng.normal(size=50)], labels=[0, 1], title="demo")
        assert _is_svg(svg)
        assert "demo" in svg

    def test_line_plot_highlight(self, rng):
        svg = line_plot([rng.normal(size=60)], highlight=[(0, 10, 30)])
        assert _is_svg(svg)
        assert "#d62728" in svg  # highlight colour present

    def test_line_plot_empty_rejected(self):
        with pytest.raises(VisualizationError):
            line_plot([])

    def test_series_grid(self, small_dataset):
        svg = series_grid(small_dataset.data, small_dataset.labels, title="clusters")
        assert _is_svg(svg)
        # One panel label per cluster.
        for cluster in np.unique(small_dataset.labels):
            assert f"cluster {cluster}" in svg

    def test_series_grid_label_mismatch(self, small_dataset):
        with pytest.raises(VisualizationError):
            series_grid(small_dataset.data, small_dataset.labels[:-1])

    def test_scatter_plot_with_extras(self, blob_data):
        points, labels = blob_data
        svg = scatter_plot(points, labels=labels, extra_points=[(0.0, 0.0)])
        assert _is_svg(svg)

    def test_scatter_needs_2d(self):
        with pytest.raises(VisualizationError):
            scatter_plot(np.zeros((5, 1)))

    def test_box_plot(self, rng):
        groups = {f"method_{i}": rng.normal(0.5, 0.1, 20).tolist() for i in range(4)}
        svg = box_plot(groups, title="ARI", highlight="method_2")
        assert _is_svg(svg)
        assert "method_3" in svg

    def test_box_plot_empty_group(self):
        with pytest.raises(VisualizationError):
            box_plot({"a": []})

    def test_heatmap_small_and_downsampled(self, rng):
        small = heatmap(rng.normal(size=(10, 12)), title="matrix")
        assert _is_svg(small)
        large = heatmap(rng.normal(size=(300, 500)), max_cells=50)
        assert _is_svg(large)
        # Downsampling keeps the SVG compact.
        assert len(large) < 1_000_000

    def test_bar_chart(self):
        svg = bar_chart({"cluster 0": 0.8, "cluster 1": 0.3}, title="exclusivity")
        assert _is_svg(svg)
        assert "exclusivity" in svg

    def test_bar_chart_empty(self):
        with pytest.raises(VisualizationError):
            bar_chart({})

    def test_histogram(self, rng):
        svg = histogram(rng.normal(size=300), n_bins=15, title="scores")
        assert _is_svg(svg)

    def test_curve_comparison_with_marker(self):
        svg = curve_comparison(
            [8, 16, 32],
            {"W_c": [0.5, 0.9, 0.7], "W_e": [0.3, 0.4, 0.6]},
            marker=16.0,
            title="length selection",
        )
        assert _is_svg(svg)
        assert "W_c" in svg and "W_e" in svg

    def test_curve_length_mismatch(self):
        with pytest.raises(VisualizationError):
            curve_comparison([1, 2, 3], {"a": [0.1, 0.2]})
