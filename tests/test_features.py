"""Unit tests for the feature bank and feature selection."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features.bank import (
    FEATURE_NAMES,
    autocorrelation,
    binned_entropy,
    complexity_estimate,
    count_above_mean,
    crossing_points,
    dominant_frequency,
    extract_features,
    feature_vector,
    longest_strike_above_mean,
    mean_absolute_change,
    number_of_peaks,
    partial_autocorrelation,
    seasonality_strength,
    spectral_centroid,
    trend_strength,
)
from repro.features.selection import select_features, variance_ranking


class TestIndividualFeatures:
    def test_autocorrelation_of_periodic_signal(self):
        t = np.arange(200)
        series = np.sin(2 * np.pi * t / 20)
        # The biased estimator scales by (n - lag) / n, so the peak at one full
        # period (lag 20 of 200 points) is 0.9, not 1.0.
        assert autocorrelation(series, 20) > 0.85
        assert autocorrelation(series, 10) < -0.85

    def test_autocorrelation_constant_series(self):
        assert autocorrelation(np.full(50, 3.0), 1) == 0.0

    def test_partial_autocorrelation_ar1(self, rng):
        # For an AR(1) process the PACF beyond lag 1 is near zero.
        series = np.zeros(500)
        for i in range(1, 500):
            series[i] = 0.8 * series[i - 1] + rng.normal()
        assert abs(partial_autocorrelation(series, 2)) < 0.2

    def test_crossing_points(self):
        series = np.array([1.0, -1.0, 1.0, -1.0, 1.0])
        assert crossing_points(series) == 4

    def test_count_above_mean_and_strike(self):
        series = np.array([0.0, 0.0, 5.0, 5.0, 5.0, 0.0])
        assert count_above_mean(series) == 3
        assert longest_strike_above_mean(series) == 3

    def test_number_of_peaks(self):
        series = np.array([0, 3, 0, 0, 5, 0, 1, 0], dtype=float)
        assert number_of_peaks(series, support=1) == 3

    def test_binned_entropy_bounds(self, rng):
        uniform = rng.uniform(size=1000)
        constant = np.full(1000, 1.0)
        assert binned_entropy(constant) == pytest.approx(0.0)
        assert binned_entropy(uniform, n_bins=10) > 2.0

    def test_spectral_features(self):
        t = np.arange(128)
        slow = np.sin(2 * np.pi * t / 64)
        fast = np.sin(2 * np.pi * t / 4)
        assert spectral_centroid(fast) > spectral_centroid(slow)
        assert dominant_frequency(fast) > dominant_frequency(slow)

    def test_trend_strength(self, rng):
        trended = np.linspace(0, 10, 200) + rng.normal(0, 0.1, 200)
        flat = rng.normal(0, 1.0, 200)
        assert trend_strength(trended) > trend_strength(flat)
        assert 0.0 <= trend_strength(flat) <= 1.0

    def test_seasonality_strength(self, rng):
        t = np.arange(200)
        seasonal = np.sin(2 * np.pi * t / 25) + rng.normal(0, 0.1, 200)
        noise = rng.normal(0, 1.0, 200)
        assert seasonality_strength(seasonal) > seasonality_strength(noise)

    def test_change_and_complexity(self, rng):
        smooth = np.linspace(0, 1, 100)
        rough = rng.normal(0, 1, 100)
        assert mean_absolute_change(rough) > mean_absolute_change(smooth)
        assert complexity_estimate(rough) > complexity_estimate(smooth)


class TestFeatureVectorAndMatrix:
    def test_all_features_present(self, rng):
        values = feature_vector(rng.normal(size=100))
        assert set(values) == set(FEATURE_NAMES)
        assert all(np.isfinite(v) for v in values.values())

    def test_extract_features_shape(self, small_dataset):
        matrix = extract_features(small_dataset.data)
        assert matrix.shape == (small_dataset.n_series, len(FEATURE_NAMES))
        assert np.all(np.isfinite(matrix))

    def test_standardized_columns(self, small_dataset):
        matrix = extract_features(small_dataset.data, standardize=True)
        stds = matrix.std(axis=0)
        # Non-constant columns are unit variance; constant ones are zero.
        assert np.all((np.isclose(stds, 1.0, atol=1e-6)) | (np.isclose(stds, 0.0, atol=1e-6)))

    def test_unstandardized_keeps_scale(self, small_dataset):
        matrix = extract_features(small_dataset.data, standardize=False)
        mean_index = FEATURE_NAMES.index("mean")
        expected = small_dataset.data.mean(axis=1)
        assert np.allclose(matrix[:, mean_index], expected, atol=1e-8)

    def test_features_discriminate_classes(self, small_dataset):
        # The feature representation must carry class signal: nearest-centroid
        # accuracy in feature space should beat chance by a wide margin.
        matrix = extract_features(small_dataset.data)
        labels = small_dataset.labels
        centroids = np.vstack([matrix[labels == c].mean(axis=0) for c in np.unique(labels)])
        assigned = np.argmin(
            np.linalg.norm(matrix[:, None, :] - centroids[None, :, :], axis=2), axis=1
        )
        accuracy = float((assigned == labels).mean())
        assert accuracy > 0.6

    def test_short_series_rejected(self):
        with pytest.raises(ValidationError):
            feature_vector(np.arange(4.0))


class TestFeatureSelection:
    def test_variance_ranking_order(self):
        matrix = np.column_stack(
            [np.random.default_rng(0).normal(0, scale, 50) for scale in (0.1, 5.0, 1.0)]
        )
        ranking = variance_ranking(matrix)
        assert ranking[0] == 1

    def test_selection_respects_budget(self, small_dataset):
        matrix = extract_features(small_dataset.data)
        reduced, selected = select_features(matrix, n_features=5)
        assert reduced.shape == (matrix.shape[0], len(selected))
        assert len(selected) <= 5

    def test_redundant_features_dropped(self, rng):
        base = rng.normal(size=100)
        matrix = np.column_stack([base, base * 2.0 + 1e-9, rng.normal(size=100)])
        _, selected = select_features(matrix, n_features=3, correlation_threshold=0.95)
        assert len(selected) == 2

    def test_constant_columns_skipped(self, rng):
        matrix = np.column_stack([np.full(50, 3.0), rng.normal(size=50)])
        _, selected = select_features(matrix, n_features=2)
        assert 0 not in selected

    def test_invalid_threshold(self, rng):
        with pytest.raises(ValidationError):
            select_features(rng.normal(size=(10, 3)), 2, correlation_threshold=0.0)

    def test_feature_names_length_checked(self, rng):
        with pytest.raises(ValidationError):
            select_features(rng.normal(size=(10, 3)), 2, feature_names=["a"])
