"""Unit tests for the interpretability test (representations, quiz, simulated user)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.interpret.quiz import Quiz, build_quiz
from repro.interpret.representations import centroid_representation, graphoid_representation
from repro.interpret.user_model import SimulatedUser, score_methods


class TestRepresentations:
    def test_centroid_representation_per_cluster(self, small_dataset):
        reps = centroid_representation("kmeans", small_dataset.data, small_dataset.labels)
        assert set(reps) == set(np.unique(small_dataset.labels).tolist())
        for rep in reps.values():
            assert rep.kind == "centroid"
            assert rep.centroid.shape == (small_dataset.length,)
            # Centroids are z-normalised.
            assert abs(rep.centroid.mean()) < 1e-8

    def test_centroid_representation_empty_cluster_rejected(self, small_dataset):
        labels = np.zeros(small_dataset.n_series, dtype=int)
        reps = centroid_representation("kmeans", small_dataset.data, labels)
        assert set(reps) == {0}

    def test_graphoid_representation(self, fitted_kgraph):
        reps = graphoid_representation(fitted_kgraph, max_patterns=4)
        clusters = set(np.unique(fitted_kgraph.labels_).tolist())
        assert set(reps) == clusters
        for rep in reps.values():
            assert rep.kind == "graphoid"
            assert 1 <= len(rep.patterns) <= 4
            assert len(rep.patterns) == len(rep.pattern_scores)
            for pattern in rep.patterns:
                assert pattern.shape == (fitted_kgraph.optimal_length_,)

    def test_describe_serialisable(self, fitted_kgraph):
        import json

        reps = graphoid_representation(fitted_kgraph)
        json.dumps([rep.describe() for rep in reps.values()])


class TestQuiz:
    @pytest.fixture()
    def quiz(self, small_dataset):
        reps = centroid_representation("kmeans", small_dataset.data, small_dataset.labels)
        return build_quiz(
            small_dataset, "kmeans", small_dataset.labels, reps, n_questions=5, random_state=0
        )

    def test_quiz_structure(self, quiz, small_dataset):
        assert quiz.n_questions == 5
        assert quiz.dataset_name == small_dataset.name
        assert set(quiz.clusters) == set(np.unique(small_dataset.labels).tolist())
        indices = [q.series_index for q in quiz.questions]
        assert len(set(indices)) == 5  # drawn without replacement

    def test_correct_answers_match_method_labels(self, quiz, small_dataset):
        for question in quiz.questions:
            assert question.correct_cluster == small_dataset.labels[question.series_index]

    def test_scoring(self, quiz):
        # Answer everything correctly -> score 1; flip one answer -> 0.8.
        for question in quiz.questions:
            quiz.answer(question.question_id, question.correct_cluster)
        assert quiz.is_complete()
        assert quiz.score() == pytest.approx(1.0)
        wrong = (quiz.questions[0].correct_cluster + 1) % len(quiz.clusters)
        quiz.answer(quiz.questions[0].question_id, wrong)
        assert quiz.score() == pytest.approx(0.8)

    def test_unanswered_score_zero(self, quiz):
        assert quiz.score() == 0.0
        assert not quiz.is_complete()

    def test_invalid_answers_rejected(self, quiz):
        with pytest.raises(ValidationError):
            quiz.answer(999, 0)
        with pytest.raises(ValidationError):
            quiz.answer(0, 999)

    def test_deterministic_questions(self, small_dataset):
        reps = centroid_representation("kmeans", small_dataset.data, small_dataset.labels)
        a = build_quiz(small_dataset, "m", small_dataset.labels, reps, random_state=4)
        b = build_quiz(small_dataset, "m", small_dataset.labels, reps, random_state=4)
        assert [q.series_index for q in a.questions] == [q.series_index for q in b.questions]

    def test_missing_representation_rejected(self, small_dataset):
        reps = centroid_representation("kmeans", small_dataset.data, small_dataset.labels)
        reps.pop(0)
        with pytest.raises(ValidationError):
            build_quiz(small_dataset, "m", small_dataset.labels, reps, random_state=0)

    def test_exclude_indices(self, small_dataset):
        reps = centroid_representation("kmeans", small_dataset.data, small_dataset.labels)
        excluded = list(range(small_dataset.n_series - 6))
        quiz = build_quiz(
            small_dataset,
            "m",
            small_dataset.labels,
            reps,
            n_questions=5,
            random_state=0,
            exclude_indices=excluded,
        )
        assert all(q.series_index >= small_dataset.n_series - 6 for q in quiz.questions)


class TestSimulatedUser:
    def test_ideal_user_beats_chance_with_true_centroids(self, small_dataset):
        reps = centroid_representation("truth", small_dataset.data, small_dataset.labels)
        quiz = build_quiz(
            small_dataset, "truth", small_dataset.labels, reps, n_questions=8, random_state=1
        )
        SimulatedUser(perception_noise=0.0).answer_quiz(quiz)
        assert quiz.is_complete()
        assert quiz.score() > 1.0 / small_dataset.n_classes

    def test_graphoid_user_beats_chance(self, fitted_kgraph, small_dataset):
        reps = graphoid_representation(fitted_kgraph)
        quiz = build_quiz(
            small_dataset,
            "kgraph",
            fitted_kgraph.labels_,
            reps,
            n_questions=8,
            random_state=1,
        )
        SimulatedUser(perception_noise=0.0).answer_quiz(quiz)
        assert quiz.score() > 1.0 / 3

    def test_noise_changes_answers_but_not_validity(self, small_dataset):
        reps = centroid_representation("m", small_dataset.data, small_dataset.labels)
        quiz = build_quiz(small_dataset, "m", small_dataset.labels, reps, random_state=2)
        SimulatedUser(perception_noise=5.0, random_state=0).answer_quiz(quiz)
        assert quiz.is_complete()
        assert 0.0 <= quiz.score() <= 1.0

    def test_negative_noise_rejected(self):
        with pytest.raises(ValidationError):
            SimulatedUser(perception_noise=-0.1)

    def test_score_methods_returns_all_methods(self, small_dataset, fitted_kgraph):
        quizzes = {}
        reps_centroid = centroid_representation("kmeans", small_dataset.data, small_dataset.labels)
        quizzes["kmeans"] = build_quiz(
            small_dataset, "kmeans", small_dataset.labels, reps_centroid, random_state=3
        )
        reps_graph = graphoid_representation(fitted_kgraph)
        quizzes["kgraph"] = build_quiz(
            small_dataset, "kgraph", fitted_kgraph.labels_, reps_graph, random_state=3
        )
        scores = score_methods(quizzes, n_users=3, random_state=0)
        assert set(scores) == {"kmeans", "kgraph"}
        assert all(0.0 <= value <= 1.0 for value in scores.values())

    def test_score_methods_empty_rejected(self):
        with pytest.raises(ValidationError):
            score_methods({})
