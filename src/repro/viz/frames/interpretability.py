"""Interpretability-test frame (Fig. 3, frame 3).

Renders the quiz of Scenario 1: the per-cluster representations of the
selected method (centroids or graphoid patterns), the five query series, and
— once answered — the score comparison across methods.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import VisualizationError
from repro.interpret.quiz import Quiz
from repro.viz.frames.base import Frame, Panel, html_table
from repro.viz.plots import bar_chart, line_plot
from repro.viz.theme import color_for_cluster


def _representation_panel(quiz: Quiz) -> Panel:
    """Panel showing the cluster representations the participant sees."""
    series = []
    labels = []
    for cluster, representation in sorted(quiz.representations.items()):
        if representation.kind == "centroid":
            series.append(representation.centroid)
            labels.append(cluster)
        else:
            for pattern in representation.patterns:
                series.append(pattern)
                labels.append(cluster)
    if not series:
        raise VisualizationError("quiz representations are empty")
    kind = next(iter(quiz.representations.values())).kind
    title = "cluster centroids" if kind == "centroid" else "graphoid patterns per cluster"
    return Panel(
        title=f"{quiz.method}: {title}",
        svg=line_plot(series, labels=labels, title=title),
        caption="One colour per cluster; these are the only hints available to the participant.",
    )


def build_interpretability_frame(
    quizzes: Dict[str, Quiz],
    scores: Optional[Dict[str, float]] = None,
) -> Frame:
    """Build the frame from per-method quizzes (answered or not).

    Parameters
    ----------
    quizzes:
        Mapping method name -> quiz on the same dataset.
    scores:
        Optional mapping method -> average participant score; when omitted and
        the quizzes carry answers, each quiz's own score is used.
    """
    if not quizzes:
        raise VisualizationError("at least one quiz is required")
    first = next(iter(quizzes.values()))

    frame = Frame(
        frame_id="interpretability-test",
        title="Interpretability test",
        description=(
            f"Assign each of the {first.n_questions} series of {first.dataset_name} to a "
            "cluster, given only each method's cluster representation. A higher score "
            "means the representation explains the clustering better."
        ),
        metadata={"dataset": first.dataset_name, "methods": sorted(quizzes)},
    )

    for method in sorted(quizzes):
        frame.add_panel(_representation_panel(quizzes[method]))

    # The question series (coloured by the answer of the first quiz if present).
    question_series = [question.series for question in first.questions]
    frame.add_panel(
        Panel(
            title="Quiz questions",
            svg=line_plot(
                question_series,
                labels=list(range(len(question_series))),
                title="which cluster was each series assigned to?",
            ),
            caption="The five randomly drawn series the participant must assign.",
        )
    )

    if scores is None:
        scores = {
            method: quiz.score() for method, quiz in quizzes.items() if quiz.answers
        }
    if scores:
        colors = {method: color_for_cluster(i) for i, method in enumerate(sorted(scores))}
        frame.add_panel(
            Panel(
                title="Participant score per method",
                svg=bar_chart(
                    {method: scores[method] for method in sorted(scores)},
                    title="fraction of correct assignments",
                    colors=colors,
                ),
                caption="Higher = the cluster representation is more interpretable.",
            )
        )
        rows = [
            {"method": method, "score": score, "n_questions": quizzes[method].n_questions}
            for method, score in sorted(scores.items(), key=lambda item: -item[1])
        ]
        frame.add_panel(
            Panel(
                title="Scores",
                html_body=html_table(rows),
                caption="Average fraction of questions answered correctly.",
            )
        )
        frame.metadata["scores"] = dict(scores)
    return frame
