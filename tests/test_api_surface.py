"""Public-API surface snapshot: changes to repro.api must be deliberate.

``tests/data/api_surface.json`` commits the exported names of
:mod:`repro.api` and the estimator registry.  A PR that adds, renames or
removes a public name (or a registered estimator) must update the snapshot
in the same change — the failure message below says exactly how — so the
public contract never drifts by accident.
"""

import json
from pathlib import Path

SNAPSHOT_PATH = Path(__file__).parent / "data" / "api_surface.json"

REGENERATE_HINT = (
    "the public API surface changed; if that is intentional, regenerate the "
    "snapshot with:\n"
    "  PYTHONPATH=src python - <<'EOF'\n"
    "  import json, repro.api\n"
    "  from repro.api import default_registry\n"
    "  snapshot = {'repro.api': sorted(repro.api.__all__),\n"
    "              'estimators': default_registry().names()}\n"
    "  json.dump(snapshot, open('tests/data/api_surface.json', 'w'),\n"
    "            indent=2, sort_keys=True)\n"
    "  EOF"
)


def _snapshot():
    return json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))


def test_repro_api_all_matches_snapshot():
    import repro.api

    assert sorted(repro.api.__all__) == _snapshot()["repro.api"], REGENERATE_HINT


def test_estimator_registry_names_match_snapshot():
    from repro.api import default_registry

    assert default_registry().names() == _snapshot()["estimators"], REGENERATE_HINT


def test_every_exported_name_resolves():
    import repro.api

    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_top_level_package_reexports_api_names():
    # The repro package re-exports the api surface (configs/protocols
    # eagerly, the registry lazily); a rename that forgets the top level
    # fails here.
    import repro

    for name in (
        "EstimatorConfig",
        "KGraphConfig",
        "BaselineConfig",
        "Estimator",
        "SupportsServing",
        "ServableState",
        "EstimatorRegistry",
        "EstimatorSpec",
        "default_registry",
    ):
        assert getattr(repro, name) is not None
        assert name in repro.__all__
