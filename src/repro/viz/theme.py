"""Colours and sizing shared by every Graphint frame."""

from __future__ import annotations

from dataclasses import dataclass

#: Categorical palette used to colour clusters / true labels (colour-blind safe).
CLUSTER_PALETTE = (
    "#4e79a7",
    "#f28e2b",
    "#e15759",
    "#76b7b2",
    "#59a14f",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
)

#: Colour used for de-emphasised elements (nodes below threshold, grid lines).
NEUTRAL_COLOR = "#c8c8c8"

#: Colour used for highlighted elements (selected node, selected series).
HIGHLIGHT_COLOR = "#d62728"


def color_for_cluster(cluster: int) -> str:
    """Stable colour for a cluster identifier."""
    return CLUSTER_PALETTE[int(cluster) % len(CLUSTER_PALETTE)]


def sequential_color(value: float) -> str:
    """Map a value in [0, 1] to a white -> blue sequential colour (hex)."""
    value = min(max(float(value), 0.0), 1.0)
    # Interpolate between near-white (247) and a saturated blue (#2166ac).
    red = int(247 + (33 - 247) * value)
    green = int(251 + (102 - 251) * value)
    blue = int(255 + (172 - 255) * value)
    return f"#{red:02x}{green:02x}{blue:02x}"


def diverging_color(value: float) -> str:
    """Map a value in [-1, 1] to a red-white-blue diverging colour (hex)."""
    value = min(max(float(value), -1.0), 1.0)
    if value >= 0:
        red = int(247 + (33 - 247) * value)
        green = int(247 + (102 - 247) * value)
        blue = int(247 + (172 - 247) * value)
    else:
        value = -value
        red = int(247 + (178 - 247) * value)
        green = int(247 + (24 - 247) * value)
        blue = int(247 + (43 - 247) * value)
    return f"#{red:02x}{green:02x}{blue:02x}"


@dataclass(frozen=True)
class Theme:
    """Sizing and typography defaults for the frames."""

    frame_width: int = 960
    panel_width: int = 460
    panel_height: int = 260
    font_family: str = "Helvetica, Arial, sans-serif"
    font_size: int = 12
    title_size: int = 15
    background: str = "#ffffff"
    axis_color: str = "#555555"
    grid_color: str = "#e6e6e6"


DEFAULT_THEME = Theme()
