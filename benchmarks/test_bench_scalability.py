"""E8 — Scalability: runtime vs dataset size and series length.

The demo paper does not report absolute runtimes, but a credible release of
the system must characterise them (the k-Graph journal paper does).  This
experiment measures wall-clock time of k-Graph, k-Means and k-Shape while
growing (a) the number of series and (b) the series length, and reports the
growth factors.  Expected shape: k-Graph grows roughly linearly with the
number of series, sits between k-Means (fastest) and k-Shape.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from bench_utils import format_table, full_mode, report
from repro.cluster.kmeans import KMeans
from repro.cluster.kshape import KShape
from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.utils.normalization import znormalize_dataset

SERIES_GRID = (24, 48, 96) if not full_mode() else (30, 60, 120, 240)
LENGTH_GRID = (64, 128) if not full_mode() else (64, 128, 256, 512)


def _time(callable_):
    start = time.perf_counter()
    callable_()
    return time.perf_counter() - start


def _measure(n_series: int, length: int):
    dataset = make_cylinder_bell_funnel(n_series=n_series, length=length, noise=0.2, random_state=0)
    data = dataset.data
    timings = {
        "kgraph": _time(lambda: KGraph(n_clusters=3, n_lengths=3, random_state=0).fit(data)),
        "kmeans": _time(lambda: KMeans(n_clusters=3, n_init=5, random_state=0).fit(znormalize_dataset(data))),
        "kshape": _time(lambda: KShape(n_clusters=3, n_init=1, random_state=0).fit(data)),
    }
    return timings


def _run_scalability():
    rows = []
    for n_series in SERIES_GRID:
        timings = _measure(n_series, 96)
        rows.append({"sweep": "n_series", "value": n_series, **timings})
    for length in LENGTH_GRID:
        timings = _measure(32, length)
        rows.append({"sweep": "length", "value": length, **timings})
    return rows


@pytest.mark.benchmark(group="E8-scalability")
def test_bench_scalability(benchmark):
    rows = benchmark.pedantic(_run_scalability, rounds=1, iterations=1)
    table = format_table(rows, ["sweep", "value", "kgraph", "kmeans", "kshape"])

    series_rows = [row for row in rows if row["sweep"] == "n_series"]
    growth = series_rows[-1]["kgraph"] / max(series_rows[0]["kgraph"], 1e-9)
    size_ratio = series_rows[-1]["value"] / series_rows[0]["value"]
    summary = (
        f"{table}\n\nk-Graph runtime grew by x{growth:.1f} when the number of series grew by "
        f"x{size_ratio:.0f} (paper expectation: roughly linear growth; k-Means fastest, "
        "k-Graph between k-Means and k-Shape on long series)."
    )
    report("E8: Scalability (runtime vs #series and series length)", summary)
    benchmark.extra_info["kgraph_growth_factor"] = round(growth, 2)
    # Sub-quadratic growth in the number of series.
    assert growth < size_ratio**2
