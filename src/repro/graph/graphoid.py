"""Graphoids: cluster-specific subgraphs with representativity / exclusivity.

Definitions (Section II of the paper):

* **Representativity** of a node N for cluster C_i, written ``|N|_{C_i}``:
  the proportion of time series *of the cluster* that pass through the node,
  i.e. ``|{T in C_i : T crosses N}| / |C_i|``.
* **Exclusivity** of a node N for cluster C_i, written ``Pr_{C_i}(N)``:
  the proportion of the series *crossing the node* that belong to the
  cluster, i.e. ``|{T in C_i : T crosses N}| / |{T in D : T crosses N}|``.
* The **λ-Graphoid** of a cluster keeps the nodes/edges whose representativity
  is at least λ; the **γ-Graphoid** keeps those whose exclusivity is at least
  γ.  The plain Graphoid is the λ=0, γ=0 case (everything the cluster touches).

The same definitions apply to edges, with "crossing" meaning "traversing the
edge at least once".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.structure import Edge, TimeSeriesGraph
from repro.utils.validation import check_labels, check_probability


def _cluster_members(labels: np.ndarray) -> Dict[int, np.ndarray]:
    return {int(c): np.flatnonzero(labels == c) for c in np.unique(labels)}


def node_representativity(graph: TimeSeriesGraph, labels) -> Dict[int, Dict[int, float]]:
    """``result[cluster][node]`` = representativity of the node for the cluster."""
    labels = check_labels(labels, n_samples=graph.n_series)
    members = _cluster_members(labels)
    result: Dict[int, Dict[int, float]] = {cluster: {} for cluster in members}
    for node in graph.nodes():
        crossing = set(graph.series_through_node(node))
        for cluster, cluster_indices in members.items():
            if cluster_indices.size == 0:
                result[cluster][node] = 0.0
                continue
            count = sum(1 for idx in cluster_indices if idx in crossing)
            result[cluster][node] = count / cluster_indices.size
    return result


def node_exclusivity(graph: TimeSeriesGraph, labels) -> Dict[int, Dict[int, float]]:
    """``result[cluster][node]`` = exclusivity of the node for the cluster."""
    labels = check_labels(labels, n_samples=graph.n_series)
    members = _cluster_members(labels)
    result: Dict[int, Dict[int, float]] = {cluster: {} for cluster in members}
    for node in graph.nodes():
        crossing = graph.series_through_node(node)
        total = len(crossing)
        for cluster, cluster_indices in members.items():
            if total == 0:
                result[cluster][node] = 0.0
                continue
            member_set = set(cluster_indices.tolist())
            count = sum(1 for idx in crossing if idx in member_set)
            result[cluster][node] = count / total
    return result


def edge_representativity(graph: TimeSeriesGraph, labels) -> Dict[int, Dict[Edge, float]]:
    """``result[cluster][edge]`` = representativity of the edge for the cluster."""
    labels = check_labels(labels, n_samples=graph.n_series)
    members = _cluster_members(labels)
    result: Dict[int, Dict[Edge, float]] = {cluster: {} for cluster in members}
    for edge in graph.edges():
        crossing = set(graph.series_through_edge(edge))
        for cluster, cluster_indices in members.items():
            if cluster_indices.size == 0:
                result[cluster][edge] = 0.0
                continue
            count = sum(1 for idx in cluster_indices if idx in crossing)
            result[cluster][edge] = count / cluster_indices.size
    return result


def edge_exclusivity(graph: TimeSeriesGraph, labels) -> Dict[int, Dict[Edge, float]]:
    """``result[cluster][edge]`` = exclusivity of the edge for the cluster."""
    labels = check_labels(labels, n_samples=graph.n_series)
    members = _cluster_members(labels)
    result: Dict[int, Dict[Edge, float]] = {cluster: {} for cluster in members}
    for edge in graph.edges():
        crossing = graph.series_through_edge(edge)
        total = len(crossing)
        for cluster, cluster_indices in members.items():
            if total == 0:
                result[cluster][edge] = 0.0
                continue
            member_set = set(cluster_indices.tolist())
            count = sum(1 for idx in crossing if idx in member_set)
            result[cluster][edge] = count / total
    return result


@dataclass
class Graphoid:
    """A cluster-specific subgraph plus the scores that selected it.

    Attributes
    ----------
    cluster:
        Cluster identifier the graphoid describes.
    nodes / edges:
        Selected node ids and directed edges.
    node_scores / edge_scores:
        The score (representativity or exclusivity, depending on the kind)
        of every *selected* node/edge.
    kind:
        ``"graphoid"``, ``"lambda"`` or ``"gamma"``.
    threshold:
        The λ or γ value used for the selection (0.0 for the plain graphoid).
    """

    cluster: int
    nodes: List[int] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)
    node_scores: Dict[int, float] = field(default_factory=dict)
    edge_scores: Dict[Edge, float] = field(default_factory=dict)
    kind: str = "graphoid"
    threshold: float = 0.0

    @property
    def n_nodes(self) -> int:
        """Number of selected nodes."""
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        """Number of selected edges."""
        return len(self.edges)

    def is_empty(self) -> bool:
        """True when neither nodes nor edges were selected."""
        return not self.nodes and not self.edges

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable summary for the Graph frame side panel."""
        return {
            "cluster": self.cluster,
            "kind": self.kind,
            "threshold": self.threshold,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "top_nodes": sorted(self.node_scores, key=self.node_scores.get, reverse=True)[:5],
        }


def extract_graphoid(graph: TimeSeriesGraph, labels, cluster: int) -> Graphoid:
    """The plain Graphoid: every node/edge traversed by at least one member."""
    labels = check_labels(labels, n_samples=graph.n_series)
    members = set(np.flatnonzero(labels == cluster).tolist())
    if not members:
        raise ValidationError(f"cluster {cluster} has no members")
    nodes = [
        node for node in graph.nodes()
        if members.intersection(graph.series_through_node(node))
    ]
    edges = [
        edge for edge in graph.edges()
        if members.intersection(graph.series_through_edge(edge))
    ]
    return Graphoid(
        cluster=int(cluster),
        nodes=nodes,
        edges=edges,
        node_scores={node: 1.0 for node in nodes},
        edge_scores={edge: 1.0 for edge in edges},
        kind="graphoid",
        threshold=0.0,
    )


def extract_lambda_graphoid(
    graph: TimeSeriesGraph, labels, cluster: int, lambda_threshold: float
) -> Graphoid:
    """λ-Graphoid: nodes/edges whose representativity for ``cluster`` >= λ."""
    lambda_threshold = check_probability(lambda_threshold, "lambda_threshold")
    node_scores = node_representativity(graph, labels)
    edge_scores = edge_representativity(graph, labels)
    if cluster not in node_scores:
        raise ValidationError(f"cluster {cluster} not present in labels")
    nodes = {
        node: score
        for node, score in node_scores[cluster].items()
        if score >= lambda_threshold and score > 0
    }
    edges = {
        edge: score
        for edge, score in edge_scores[cluster].items()
        if score >= lambda_threshold and score > 0
    }
    return Graphoid(
        cluster=int(cluster),
        nodes=sorted(nodes),
        edges=sorted(edges),
        node_scores=nodes,
        edge_scores=edges,
        kind="lambda",
        threshold=lambda_threshold,
    )


def extract_gamma_graphoid(
    graph: TimeSeriesGraph, labels, cluster: int, gamma_threshold: float
) -> Graphoid:
    """γ-Graphoid: nodes/edges whose exclusivity for ``cluster`` >= γ."""
    gamma_threshold = check_probability(gamma_threshold, "gamma_threshold")
    node_scores = node_exclusivity(graph, labels)
    edge_scores = edge_exclusivity(graph, labels)
    if cluster not in node_scores:
        raise ValidationError(f"cluster {cluster} not present in labels")
    nodes = {
        node: score
        for node, score in node_scores[cluster].items()
        if score >= gamma_threshold and score > 0
    }
    edges = {
        edge: score
        for edge, score in edge_scores[cluster].items()
        if score >= gamma_threshold and score > 0
    }
    return Graphoid(
        cluster=int(cluster),
        nodes=sorted(nodes),
        edges=sorted(edges),
        node_scores=nodes,
        edge_scores=edges,
        kind="gamma",
        threshold=gamma_threshold,
    )


def interpretability_factor(graph: TimeSeriesGraph, labels) -> float:
    """W_e: average over clusters of the maximum node exclusivity.

    This is the paper's interpretability factor used (together with the
    consistency W_c) to pick the most interpretable subsequence length.
    """
    exclusivity = node_exclusivity(graph, labels)
    maxima = []
    for cluster, scores in exclusivity.items():
        if scores:
            maxima.append(max(scores.values()))
        else:
            maxima.append(0.0)
    return float(np.mean(maxima)) if maxima else 0.0
