"""Affinity kernels used by spectral clustering and consensus clustering."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.utils.validation import check_array


def gaussian_kernel_matrix(distances, gamma: Optional[float] = None) -> np.ndarray:
    """Convert a distance matrix to Gaussian (RBF) affinities ``exp(-g d^2)``.

    When ``gamma`` is ``None`` it defaults to ``1 / median(d^2)`` over the
    strictly positive entries (the "median heuristic"), which keeps affinities
    well spread for arbitrary scales.
    """
    matrix = check_array(distances, name="distances", ndim=2)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValidationError("distance matrix must be square")
    squared = matrix**2
    if gamma is None:
        positive = squared[squared > 0]
        scale = float(np.median(positive)) if positive.size else 1.0
        gamma = 1.0 / max(scale, 1e-12)
    elif gamma <= 0:
        raise ValidationError(f"gamma must be positive, got {gamma}")
    affinity = np.exp(-gamma * squared)
    np.fill_diagonal(affinity, 1.0)
    return affinity


def rbf_affinity(data, gamma: Optional[float] = None, metric: str = "euclidean") -> np.ndarray:
    """RBF affinity matrix computed directly from a feature matrix."""
    array = check_array(data, name="data", ndim=2)
    distances = pairwise_distances(array, metric=metric)
    return gaussian_kernel_matrix(distances, gamma=gamma)


def knn_affinity(data, n_neighbors: int = 10, metric: str = "euclidean") -> np.ndarray:
    """Symmetric k-nearest-neighbour connectivity affinity (0/1 entries).

    Neighbour selection is fully vectorised with ``np.argpartition``
    (O(n²) instead of the O(n² log n) argsort-per-row loop) and breaks
    distance ties deterministically by the smaller column index — the same
    semantics as :func:`knn_affinity_reference`, which it is bit-identical
    to: strictly-closer points are always neighbours, and points tied with
    the k-th smallest distance fill the remaining slots in index order.

    .. note::
       The pre-vectorization implementation broke ties in ``np.argsort``
       (introsort) order, which was an unspecified implementation detail;
       on tied distances (duplicate or discrete-valued points) this
       deterministic rule may select different — equally near — neighbours
       than an older release did.
    """
    array = check_array(data, name="data", ndim=2)
    n = array.shape[0]
    if n_neighbors < 1:
        raise ValidationError(f"n_neighbors must be >= 1, got {n_neighbors}")
    n_neighbors = min(n_neighbors, n - 1)
    if n_neighbors == 0:
        return np.zeros((n, n))
    # pairwise_distances returns a fresh array on every path, so in-place
    # diagonal masking is safe without a defensive copy.
    distances = pairwise_distances(array, metric=metric)
    np.fill_diagonal(distances, np.inf)  # a point is never its own neighbour
    # k-th smallest distance per row: argpartition pivots the k smallest
    # values (ties arbitrary) before index k, so their max is the k-th order
    # statistic regardless of tie placement.
    partition = np.argpartition(distances, n_neighbors - 1, axis=1)[:, :n_neighbors]
    kth = np.take_along_axis(distances, partition, axis=1).max(axis=1)
    closer = distances < kth[:, None]
    n_closer = closer.sum(axis=1)
    # Fill the remaining slots from the boundary ties, smallest index first.
    tied = distances == kth[:, None]
    tie_rank = np.cumsum(tied, axis=1)
    fill = tied & (tie_rank <= (n_neighbors - n_closer)[:, None])
    affinity = (closer | fill).astype(float)
    # Symmetrise: connect if either endpoint lists the other as a neighbour.
    return np.maximum(affinity, affinity.T)


def knn_affinity_reference(
    data, n_neighbors: int = 10, metric: str = "euclidean"
) -> np.ndarray:
    """Reference argsort-per-row k-NN affinity (O(n² log n)).

    Retained as the implementation :func:`knn_affinity` is benchmarked and
    equivalence-tested against (E13).  Uses a stable sort with the column
    index as tie-break so the selection is deterministic under distance
    ties, matching the vectorised path exactly.
    """
    array = check_array(data, name="data", ndim=2)
    n = array.shape[0]
    if n_neighbors < 1:
        raise ValidationError(f"n_neighbors must be >= 1, got {n_neighbors}")
    n_neighbors = min(n_neighbors, n - 1)
    if n_neighbors == 0:
        return np.zeros((n, n))
    distances = pairwise_distances(array, metric=metric)
    affinity = np.zeros((n, n))
    columns = np.arange(n)
    for i in range(n):
        order = np.lexsort((columns, distances[i]))
        neighbours = [j for j in order if j != i][:n_neighbors]
        affinity[i, neighbours] = 1.0
    return np.maximum(affinity, affinity.T)
