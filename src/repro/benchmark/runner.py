"""Benchmark runner: methods x datasets x measures.

One :class:`BenchmarkResult` is produced per (method, dataset) pair and
carries every evaluation measure plus the dataset attributes the Benchmark
frame filters on.  Failures of individual methods are recorded (not raised)
so a single brittle baseline cannot take down a whole campaign — mirroring
how published benchmark harnesses handle method errors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.baselines.registry import all_baseline_names, get_method
from repro.datasets.catalogue import DatasetCatalogue, DatasetSpec, default_catalogue
from repro.exceptions import BenchmarkError
from repro.metrics.clustering import clustering_report
from repro.parallel import ExecutionBackend, RetryPolicy, backend_scope
from repro.utils.containers import TimeSeriesDataset
from repro.utils.rng import SeedSequencePool
from repro.utils.validation import check_positive_int


@dataclass
class BenchmarkResult:
    """Outcome of one (method, dataset) benchmark run."""

    method: str
    family: str
    dataset: str
    dataset_type: str
    n_series: int
    length: int
    n_classes: int
    measures: Dict[str, float] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Whether the method raised instead of producing labels."""
        return self.error is not None

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-serialisable representation."""
        row: Dict[str, object] = {
            "method": self.method,
            "family": self.family,
            "dataset": self.dataset,
            "dataset_type": self.dataset_type,
            "n_series": self.n_series,
            "length": self.length,
            "n_classes": self.n_classes,
            "runtime_seconds": self.runtime_seconds,
            "error": self.error,
        }
        row.update(self.measures)
        return row

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "BenchmarkResult":
        """Inverse of :meth:`to_dict`."""
        known = {
            "method",
            "family",
            "dataset",
            "dataset_type",
            "n_series",
            "length",
            "n_classes",
            "runtime_seconds",
            "error",
        }
        measures = {
            key: float(value)
            for key, value in row.items()
            if key not in known and isinstance(value, (int, float))
        }
        return cls(
            method=str(row["method"]),
            family=str(row.get("family", "")),
            dataset=str(row["dataset"]),
            dataset_type=str(row.get("dataset_type", "")),
            n_series=int(row.get("n_series", 0)),
            length=int(row.get("length", 0)),
            n_classes=int(row.get("n_classes", 0)),
            measures=measures,
            runtime_seconds=float(row.get("runtime_seconds", 0.0)),
            error=row.get("error"),
        )


def run_single_benchmark(
    method_name: str,
    dataset: TimeSeriesDataset,
    random_state=None,
    *,
    config_overrides: Optional[Dict[str, object]] = None,
) -> BenchmarkResult:
    """Run one registered estimator on one (already materialised) dataset.

    Module-level (hence picklable) so campaign jobs can be dispatched
    through any :class:`~repro.parallel.ExecutionBackend`.  The method is
    resolved through the estimator registry and run via the
    :class:`~repro.api.Estimator` protocol, so any registry name —
    k-Graph or baseline — benchmarks identically.

    ``config_overrides`` applies config-field overrides to every method
    whose config declares the field (e.g. ``{"n_sectors": 16}`` reaches
    k-Graph but is a no-op for k-Means); values for fields a method does
    not declare are skipped, so one override set can drive a mixed-method
    campaign.  The method identity itself (``method``) is never
    overridable — a row labelled ``kshape`` must hold k-Shape's numbers.
    """
    from repro.api.registry import default_registry

    spec = default_registry().get(method_name)
    # A live Generator cannot live in a (serialisable) config; forward it
    # verbatim through the legacy method shim instead, exactly as the
    # pre-registry harness did.
    simple_seed = random_state is None or isinstance(random_state, (int, np.integer))
    params: Dict[str, object] = {"n_clusters": dataset.default_cluster_count()}
    if simple_seed:
        params["random_state"] = random_state
    if config_overrides:
        known = set(spec.config_cls.field_names()) - {"method"}
        params.update(
            {key: value for key, value in config_overrides.items() if key in known}
        )
    result = BenchmarkResult(
        method=spec.name,
        family=spec.family,
        dataset=dataset.name,
        dataset_type=dataset.dataset_type,
        n_series=dataset.n_series,
        length=dataset.length,
        n_classes=dataset.n_classes,
    )
    start = time.perf_counter()
    try:
        if simple_seed:
            estimator = spec.build(spec.make_config(**params))
            labels = estimator.fit_predict(dataset.data)
        else:
            labels = get_method(spec.name).fit_predict(
                dataset, int(params["n_clusters"]), random_state=random_state
            )
        result.runtime_seconds = time.perf_counter() - start
        if dataset.labels is not None:
            result.measures = clustering_report(dataset.labels, labels)
    except Exception as exc:  # noqa: BLE001 - a failing baseline must not stop the campaign
        result.runtime_seconds = time.perf_counter() - start
        result.error = f"{type(exc).__name__}: {exc}"
    return result


@dataclass(frozen=True)
class _CampaignJob:
    """One (method, dataset, run) cell of the campaign grid.

    Seeds are pre-drawn by the parent in the exact order the serial loop
    would draw them, so campaigns are bit-identical across backends.
    """

    method_name: str
    spec: DatasetSpec
    run_index: int
    dataset_seed: int
    method_seed: int
    config_overrides: Optional[Dict[str, object]] = None


def _execute_campaign_job(job: _CampaignJob) -> BenchmarkResult:
    """Materialise the dataset and run one method on it (picklable)."""
    dataset = job.spec.generate(random_state=job.dataset_seed)
    return run_single_benchmark(
        job.method_name,
        dataset,
        random_state=job.method_seed,
        config_overrides=job.config_overrides,
    )


def _combo_label(spec_name: str, combo: Dict[str, object]) -> str:
    """The result label of one grid combination, e.g. ``kgraph[k=3]``."""
    label = spec_name
    if combo:
        label += "[" + ",".join(
            f"{key}={combo[key]}" for key in sorted(combo)
        ) + "]"
    return label


def _grid_params(
    spec_name: str,
    dataset: TimeSeriesDataset,
    base_fields: Dict[str, object],
    combo: Dict[str, object],
    random_state,
) -> Dict[str, object]:
    """One combination's full config parameters (shared defaulting).

    ``n_clusters`` falls back to the dataset's class count and the seed to
    the shared ``random_state`` whenever neither base nor combo pins them —
    a base *config* carries ``random_state=None`` for "unset", which must
    not mean fresh entropy here (a shared seed is what makes stage
    checkpoints hit across the grid).  The estimator identity is never
    rebindable through a grid.  Module-level so the serial sweep and the
    sharded (distributed) path agree bit-for-bit.
    """
    params = dict(base_fields)
    params.update(combo)
    if params.get("method") not in (None, spec_name):
        raise BenchmarkError(
            f"a grid for estimator {spec_name!r} cannot rebind "
            f"'method' to {params['method']!r}; sweep the other "
            "estimator by name instead"
        )
    if params.get("n_clusters") is None:
        params["n_clusters"] = dataset.default_cluster_count()
    if params.get("random_state") is None:
        params["random_state"] = random_state
    return params


@dataclass(frozen=True)
class _GridJob:
    """One self-contained grid combination for sharded dispatch.

    Carries the materialised dataset and every config ingredient, so a
    worker (local or remote) rebuilds the exact combination the serial
    sweep would run — including its shared seed — without any coordinator
    state.  A bad combination fails inside its own job, preserving the
    per-combination error isolation of the serial path.
    """

    estimator: str
    dataset: TimeSeriesDataset
    base_fields: Dict[str, object]
    combo: Dict[str, object]
    random_state: int
    stage_cache_dir: Optional[str] = None
    cache_budget: Optional[int] = None
    cache_policy: str = "lru"


def _execute_grid_combo(job: _GridJob) -> BenchmarkResult:
    """Run one grid combination end to end (picklable, registered)."""
    from repro.api.registry import default_registry

    spec = default_registry().get(job.estimator)
    dataset = job.dataset
    result = BenchmarkResult(
        method=_combo_label(spec.name, job.combo),
        family=spec.family,
        dataset=dataset.name,
        dataset_type=dataset.dataset_type,
        n_series=dataset.n_series,
        length=dataset.length,
        n_classes=dataset.n_classes,
    )
    start = time.perf_counter()
    try:
        params = _grid_params(
            spec.name, dataset, job.base_fields, job.combo, job.random_state
        )
        cache = None
        if spec.name == "kgraph" and job.stage_cache_dir is not None:
            from repro.pipeline import resolve_stage_cache

            cache = resolve_stage_cache(
                job.stage_cache_dir,
                budget_bytes=job.cache_budget,
                policy=job.cache_policy,
            )
        estimator = spec.build(spec.make_config(**params), stage_cache=cache)
        labels = estimator.fit_predict(dataset.data)
        result.runtime_seconds = time.perf_counter() - start
        if dataset.labels is not None:
            result.measures = clustering_report(dataset.labels, labels)
        report = getattr(estimator, "pipeline_report_", None)
        if report is not None:
            result.measures["stages_cached"] = float(len(report.cached))
            result.measures["stages_executed"] = float(len(report.executed))
    except Exception as exc:  # noqa: BLE001 - one bad combo must not stop the sweep
        result.runtime_seconds = time.perf_counter() - start
        result.error = f"{type(exc).__name__}: {exc}"
    return result


ProgressCallback = Callable[[str, str, BenchmarkResult], None]


class BenchmarkRunner:
    """Runs a set of methods over a set of datasets.

    Parameters
    ----------
    methods:
        Method names from the baseline registry; defaults to the 14
        Benchmark-frame baselines plus ``"kgraph"``.
    catalogue:
        Dataset catalogue; defaults to :func:`repro.datasets.default_catalogue`.
    n_runs:
        Repetitions per (method, dataset) pair with different seeds; measures
        are averaged over runs (the Benchmark frame shows one point per pair).
    random_state:
        Seed pool controlling dataset generation and method seeds.
    backend, n_jobs:
        Execution backend for the ``methods x datasets x runs`` grid.
        Defaults to serial; ``n_jobs=4`` selects a 4-worker thread pool,
        ``backend="process"`` a process pool (which requires picklable
        catalogue generators).  Seeds are pre-drawn in serial order, so
        results are identical across backends — see :mod:`repro.parallel`.
    config_overrides:
        Optional config-field overrides applied to every campaign cell
        whose estimator config declares the field (the CLI's ``--config``
        / ``--set`` plumbing) — see :func:`run_single_benchmark`.
    retry:
        Optional :class:`~repro.parallel.RetryPolicy` applied to the
        campaign fan-out (bounded retries, per-attempt timeouts, fan-out
        deadline).  Runtime-only: cell seeds are pre-drawn, so a retried
        cell reproduces its original result.
    fallback:
        Optional degradation chain (backend spec or sequence) demoted to
        when the primary backend's pool-rebuild budget is exhausted — see
        :func:`repro.parallel.resolve_backend`.
    """

    def __init__(
        self,
        methods: Optional[Sequence[str]] = None,
        *,
        catalogue: Optional[DatasetCatalogue] = None,
        n_runs: int = 1,
        random_state=None,
        backend: Union[None, str, ExecutionBackend] = None,
        n_jobs: Optional[int] = None,
        config_overrides: Optional[Dict[str, object]] = None,
        retry: Optional[RetryPolicy] = None,
        fallback: Union[None, str, ExecutionBackend, Sequence] = None,
    ) -> None:
        if methods is None:
            methods = all_baseline_names() + ["kgraph"]
        if not methods:
            raise BenchmarkError("at least one method is required")
        self.methods = [get_method(name).name for name in methods]
        self.catalogue = catalogue if catalogue is not None else default_catalogue()
        self.n_runs = check_positive_int(n_runs, "n_runs")
        self.backend = backend
        self.n_jobs = n_jobs
        self.config_overrides = dict(config_overrides) if config_overrides else None
        self.retry = retry
        self.fallback = fallback
        self._seed_pool = SeedSequencePool(random_state)

    # ------------------------------------------------------------------ #
    def run_single(
        self, method_name: str, dataset: TimeSeriesDataset, random_state=None
    ) -> BenchmarkResult:
        """Run one method on one (already materialised) dataset."""
        return run_single_benchmark(method_name, dataset, random_state=random_state)

    def _job_result(self, job: _CampaignJob, outcome) -> BenchmarkResult:
        """Turn a job outcome into a result, capturing job-level failures.

        Method errors are already recorded by :func:`run_single_benchmark`;
        this additionally isolates failures of the job itself (dataset
        generation, or pickling for the process backend) so one broken cell
        cannot take down a whole campaign.
        """
        if outcome.ok:
            return outcome.value
        return BenchmarkResult(
            method=job.method_name,
            family=get_method(job.method_name).family,
            dataset=job.spec.name,
            dataset_type=job.spec.dataset_type,
            n_series=job.spec.n_series,
            length=job.spec.length,
            n_classes=job.spec.n_classes,
            error=outcome.error,
        )

    def run(
        self,
        dataset_names: Optional[Sequence[str]] = None,
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[BenchmarkResult]:
        """Run the full campaign and return one averaged result per pair.

        Parameters
        ----------
        dataset_names:
            Subset of catalogue names; ``None`` runs the whole catalogue.
        progress:
            Optional callback ``(method, dataset, result)`` invoked after each
            individual run (used by the CLI to stream progress).  With a
            parallel backend the callback fires in completion order.
        """
        names = list(dataset_names) if dataset_names is not None else self.catalogue.names()
        # Build the campaign grid with seeds drawn in the exact nested-loop
        # order of the serial implementation (dataset -> method -> run).
        jobs: List[_CampaignJob] = []
        for dataset_name in names:
            spec = self.catalogue.get(dataset_name)
            for method_name in self.methods:
                for run_index in range(self.n_runs):
                    jobs.append(
                        _CampaignJob(
                            method_name=method_name,
                            spec=spec,
                            run_index=run_index,
                            dataset_seed=self._seed_pool.next_seed(),
                            method_seed=self._seed_pool.next_seed(),
                            config_overrides=self.config_overrides,
                        )
                    )
        if not jobs:
            raise BenchmarkError("the benchmark campaign produced no results")

        # Convert each outcome exactly once, so the object streamed to the
        # progress callback is the same one that enters the averaging step.
        converted: Dict[int, BenchmarkResult] = {}

        def _result_for(outcome) -> BenchmarkResult:
            # setdefault keeps this safe even against a backend that violates
            # the calling-thread contract of on_result: the same object always
            # wins, so progress and averaging never see diverging results.
            if outcome.index not in converted:
                converted.setdefault(
                    outcome.index, self._job_result(jobs[outcome.index], outcome)
                )
            return converted[outcome.index]

        on_result = None
        if progress is not None:
            def on_result(outcome) -> None:
                job = jobs[outcome.index]
                progress(job.method_name, job.spec.name, _result_for(outcome))

        with backend_scope(
            self.backend, self.n_jobs, retry=self.retry, fallback=self.fallback
        ) as backend:
            if self.retry is not None:
                outcomes = backend.map_jobs(
                    _execute_campaign_job,
                    jobs,
                    on_result=on_result,
                    retry=self.retry,
                )
            else:
                outcomes = backend.map_jobs(
                    _execute_campaign_job, jobs, on_result=on_result
                )
        # Group by the outcome's own job index rather than list position, so
        # a third-party backend returning completion order cannot silently
        # misalign the per-pair averages.
        by_index = {outcome.index: outcome for outcome in outcomes}
        if sorted(by_index) != list(range(len(jobs))):
            raise BenchmarkError(
                f"execution backend returned outcomes for {sorted(by_index)} "
                f"but the campaign submitted {len(jobs)} jobs"
            )

        results: List[BenchmarkResult] = []
        for start in range(0, len(jobs), self.n_runs):
            per_run = [
                _result_for(by_index[index])
                for index in range(start, start + self.n_runs)
            ]
            results.append(self._average(per_run))
        return results

    def run_estimator_grid(
        self,
        dataset: TimeSeriesDataset,
        name: str,
        grid,
        *,
        base: Union[None, Dict[str, object], "EstimatorConfig"] = None,
        stage_cache=None,
        cache_budget: Optional[int] = None,
        cache_policy: str = "lru",
        random_state=0,
        progress: Optional[ProgressCallback] = None,
        shard: Optional[bool] = None,
    ) -> List[BenchmarkResult]:
        """Sweep one registered estimator's config grid on one dataset.

        Accepts *any* estimator registry name.  Each combination becomes a
        typed config (one validation code path — an invalid value fails
        naming the offending field), the estimator is built through the
        registry, and for k-Graph every combination fits through the stage
        pipeline with a *shared* :class:`~repro.pipeline.StageCache`, so
        sweeping a parameter that only affects downstream stages replays
        the expensive per-length embedding checkpoints instead of
        refitting from scratch — results are bit-identical to independent
        cold fits.

        Parameters
        ----------
        dataset:
            The materialised dataset every combination runs on.
        grid:
            Either a dict-of-lists expanded deterministically via
            :meth:`~repro.api.EstimatorConfig.expand_grid` (any invalid
            combination fails up front), or an explicit sequence of
            override dicts (combinations are isolated: a bad combo is
            recorded as a failed result, the sweep continues).
        base:
            Config fields shared by every combination — a plain dict of
            overrides or a full :class:`~repro.api.EstimatorConfig`.
        stage_cache:
            k-Graph only: checkpoint store shared across the grid (a
            :class:`~repro.pipeline.StageCache`, a directory path, or
            ``None`` for a fresh in-memory cache scoped to this call).
        cache_budget, cache_policy:
            k-Graph only: byte budget and eviction policy (``"lru"`` /
            ``"lfu"``) applied when ``stage_cache`` is a directory path —
            a paper-scale sweep can share one bounded on-disk cache.
            Rejected when ``stage_cache`` is an already-configured
            :class:`~repro.pipeline.StageCache` instance.
        random_state:
            Seed used by *every* combination — a shared seed is what makes
            upstream checkpoints hit across the grid.
        progress:
            Optional ``(method, dataset, result)`` callback per combination.
        shard:
            Dispatch each combination as one job through the runner's
            backend instead of the serial in-process loop.  ``None``
            (default) auto-enables sharding when the backend is
            distributed (a ``"distributed:..."`` spec or a
            ``DistributedBackend``); ``True`` forces it through any
            backend, ``False`` keeps the serial sweep.  Combinations carry
            the shared seed, so sharded results are bit-identical to the
            serial sweep (``runtime_seconds`` and the ``stages_cached`` /
            ``stages_executed`` accounting may differ — workers do not
            share an in-memory stage cache; pass a directory
            ``stage_cache`` to share checkpoints through the filesystem).

        Returns one :class:`BenchmarkResult` per combination, in grid
        order; for k-Graph, ``measures["stages_cached"]`` /
        ``measures["stages_executed"]`` record how much of each fit was
        replayed.
        """
        from typing import Mapping

        from repro.api.config import EstimatorConfig, grid_combinations
        from repro.api.registry import default_registry

        spec = default_registry().get(name)
        is_kgraph = spec.name == "kgraph"

        base_fields: Dict[str, object] = {}
        if isinstance(base, EstimatorConfig):
            if not isinstance(base, spec.config_cls):
                raise BenchmarkError(
                    f"estimator {spec.name!r} expects a "
                    f"{spec.config_cls.__name__} base, got {type(base).__name__}"
                )
            base_fields = {
                field_name: getattr(base, field_name)
                for field_name in spec.config_cls.field_names()
            }
        elif base is not None:
            base_fields = dict(base)

        def _combo_params(combo: Dict[str, object]) -> Dict[str, object]:
            """One combination's parameters (see :func:`_grid_params`)."""
            return _grid_params(spec.name, dataset, base_fields, combo, random_state)

        if isinstance(grid, Mapping):
            # Dict-of-lists grids are declarative: expand through the shared
            # deterministic-order helper and validate every combination
            # before any fit starts, so a bad value fails here with the
            # offending field named.
            combos = grid_combinations(grid)
            for combo in combos:
                spec.make_config(**_combo_params(combo))
        else:
            combos = [dict(combo) for combo in grid]
        if not combos:
            raise BenchmarkError(
                f"run_estimator_grid needs at least one combination for {spec.name!r}"
            )

        if shard is None:
            # Auto-shard when the backend is distributed: a grid swept
            # in-process would leave the worker pool idle.
            shard = (
                isinstance(self.backend, str)
                and self.backend.strip().startswith("distributed")
            ) or getattr(self.backend, "name", None) in ("distributed", "fallback")
            if getattr(self.backend, "name", None) == "fallback":
                shard = (
                    getattr(getattr(self.backend, "active", None), "name", None)
                    == "distributed"
                )
        if shard:
            return self._run_grid_sharded(
                spec,
                dataset,
                combos,
                base_fields=base_fields,
                stage_cache=stage_cache,
                cache_budget=cache_budget,
                cache_policy=cache_policy,
                random_state=random_state,
                progress=progress,
            )

        cache = None
        if is_kgraph:
            from repro.pipeline import MemoryStageCache, resolve_stage_cache

            cache = resolve_stage_cache(
                stage_cache, budget_bytes=cache_budget, policy=cache_policy
            )
            if cache is None:
                cache = MemoryStageCache(max_entries=64)

        results: List[BenchmarkResult] = []
        for combo in combos:
            label = _combo_label(spec.name, combo)
            result = BenchmarkResult(
                method=label,
                family=spec.family,
                dataset=dataset.name,
                dataset_type=dataset.dataset_type,
                n_series=dataset.n_series,
                length=dataset.length,
                n_classes=dataset.n_classes,
            )
            start = time.perf_counter()
            try:
                estimator = spec.build(
                    spec.make_config(**_combo_params(combo)),
                    backend=self.backend,
                    n_jobs=self.n_jobs,
                    stage_cache=cache,
                )
                labels = estimator.fit_predict(dataset.data)
                result.runtime_seconds = time.perf_counter() - start
                if dataset.labels is not None:
                    result.measures = clustering_report(dataset.labels, labels)
                report = getattr(estimator, "pipeline_report_", None)
                if report is not None:
                    result.measures["stages_cached"] = float(len(report.cached))
                    result.measures["stages_executed"] = float(len(report.executed))
            except Exception as exc:  # noqa: BLE001 - one bad combo must not stop the sweep
                result.runtime_seconds = time.perf_counter() - start
                result.error = f"{type(exc).__name__}: {exc}"
            if progress is not None:
                progress(label, dataset.name, result)
            results.append(result)
        return results

    def _run_grid_sharded(
        self,
        spec,
        dataset: TimeSeriesDataset,
        combos: List[Dict[str, object]],
        *,
        base_fields: Dict[str, object],
        stage_cache,
        cache_budget: Optional[int],
        cache_policy: str,
        random_state,
        progress: Optional[ProgressCallback],
    ) -> List[BenchmarkResult]:
        """Dispatch one :func:`_execute_grid_combo` job per combination.

        Workers cannot reach an in-memory stage cache, so sharding accepts
        only a directory path (shared through the filesystem) or no cache
        at all; each job is self-contained and a killed worker's
        combinations are recovered by the backend's quarantine/bisection
        machinery — results stay bit-identical to the serial sweep.
        """
        from pathlib import Path as _Path

        from repro.pipeline.cache import StageCache

        if isinstance(stage_cache, StageCache):
            raise BenchmarkError(
                "a sharded grid cannot share an in-memory StageCache "
                "instance across workers; pass a cache directory path "
                "instead (workers share checkpoints through the filesystem)"
            )
        cache_dir = (
            str(stage_cache)
            if spec.name == "kgraph"
            and isinstance(stage_cache, (str, _Path))
            else None
        )
        jobs = [
            _GridJob(
                estimator=spec.name,
                dataset=dataset,
                base_fields=dict(base_fields),
                combo=dict(combo),
                random_state=random_state,
                stage_cache_dir=cache_dir,
                cache_budget=cache_budget,
                cache_policy=cache_policy,
            )
            for combo in combos
        ]

        converted: Dict[int, BenchmarkResult] = {}

        def _result_for(outcome) -> BenchmarkResult:
            if outcome.index not in converted:
                if outcome.ok:
                    converted.setdefault(outcome.index, outcome.value)
                else:
                    job = jobs[outcome.index]
                    converted.setdefault(
                        outcome.index,
                        BenchmarkResult(
                            method=_combo_label(spec.name, job.combo),
                            family=spec.family,
                            dataset=dataset.name,
                            dataset_type=dataset.dataset_type,
                            n_series=dataset.n_series,
                            length=dataset.length,
                            n_classes=dataset.n_classes,
                            error=outcome.error,
                        ),
                    )
            return converted[outcome.index]

        on_result = None
        if progress is not None:
            def on_result(outcome) -> None:
                result = _result_for(outcome)
                progress(result.method, dataset.name, result)

        with backend_scope(
            self.backend, self.n_jobs, retry=self.retry, fallback=self.fallback
        ) as backend:
            if self.retry is not None:
                outcomes = backend.map_jobs(
                    _execute_grid_combo, jobs, on_result=on_result, retry=self.retry
                )
            else:
                outcomes = backend.map_jobs(
                    _execute_grid_combo, jobs, on_result=on_result
                )
        by_index = {outcome.index: outcome for outcome in outcomes}
        if sorted(by_index) != list(range(len(jobs))):
            raise BenchmarkError(
                f"execution backend returned outcomes for {sorted(by_index)} "
                f"but the grid submitted {len(jobs)} jobs"
            )
        return [_result_for(by_index[index]) for index in range(len(jobs))]

    def run_kgraph_grid(
        self,
        dataset: TimeSeriesDataset,
        grid: Sequence[Dict[str, object]],
        *,
        base_params: Optional[Dict[str, object]] = None,
        stage_cache=None,
        cache_budget: Optional[int] = None,
        cache_policy: str = "lru",
        random_state=0,
        progress: Optional[ProgressCallback] = None,
    ) -> List[BenchmarkResult]:
        """Sweep k-Graph parameter combinations (kept as a thin alias).

        Subsumed by :meth:`run_estimator_grid` with ``name="kgraph"`` —
        same shared-stage-cache reuse, same per-combination error
        isolation, same result labels.
        """
        return self.run_estimator_grid(
            dataset,
            "kgraph",
            grid,
            base=base_params,
            stage_cache=stage_cache,
            cache_budget=cache_budget,
            cache_policy=cache_policy,
            random_state=random_state,
            progress=progress,
        )

    @staticmethod
    def _average(runs: List[BenchmarkResult]) -> BenchmarkResult:
        """Average measures/runtime over repeated runs of the same pair."""
        successful = [run for run in runs if not run.failed]
        template = successful[0] if successful else runs[0]
        if not successful:
            return template
        measures: Dict[str, float] = {}
        for key in successful[0].measures:
            measures[key] = float(np.mean([run.measures[key] for run in successful]))
        return BenchmarkResult(
            method=template.method,
            family=template.family,
            dataset=template.dataset,
            dataset_type=template.dataset_type,
            n_series=template.n_series,
            length=template.length,
            n_classes=template.n_classes,
            measures=measures,
            runtime_seconds=float(np.mean([run.runtime_seconds for run in successful])),
            error=None,
        )


def run_benchmark(
    methods: Optional[Sequence[str]] = None,
    dataset_names: Optional[Sequence[str]] = None,
    *,
    n_runs: int = 1,
    random_state=None,
) -> List[BenchmarkResult]:
    """Convenience one-call benchmark campaign."""
    runner = BenchmarkRunner(methods, n_runs=n_runs, random_state=random_state)
    return runner.run(dataset_names)


# Register the campaign/grid job functions for distributed dispatch:
# `BenchmarkRunner.run` and sharded `run_estimator_grid` fan these out
# through whatever backend the runner was given, including a pool of
# `graphint worker` services (see repro.distributed.registry).
from repro.distributed.registry import register_worker_function  # noqa: E402

register_worker_function(_execute_campaign_job)
register_worker_function(_execute_grid_combo)
