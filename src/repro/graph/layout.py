"""2-D layouts for rendering a :class:`TimeSeriesGraph` in the Graph frame."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.graph.structure import TimeSeriesGraph
from repro.utils.validation import check_positive_int, check_random_state

Position = Tuple[float, float]


def _normalise_positions(positions: Dict[int, Position]) -> Dict[int, Position]:
    """Rescale positions into the unit square (keeps aspect ratio)."""
    if not positions:
        return {}
    coords = np.array(list(positions.values()), dtype=float)
    minimum = coords.min(axis=0)
    span = coords.max(axis=0) - minimum
    scale = float(span.max())
    if scale < 1e-12:
        scale = 1.0
    return {
        node: tuple(((np.array(pos) - minimum) / scale).tolist())
        for node, pos in positions.items()
    }


def pca_layout(graph: TimeSeriesGraph) -> Dict[int, Position]:
    """Use the embedding's own PCA positions (the most faithful layout)."""
    return _normalise_positions(graph.node_positions())


def circular_layout(graph: TimeSeriesGraph) -> Dict[int, Position]:
    """Nodes equally spaced on a circle, ordered by total weight."""
    nodes = sorted(graph.nodes(), key=graph.node_weight, reverse=True)
    n = len(nodes)
    positions: Dict[int, Position] = {}
    for i, node in enumerate(nodes):
        angle = 2.0 * np.pi * i / max(n, 1)
        positions[node] = (0.5 + 0.5 * np.cos(angle), 0.5 + 0.5 * np.sin(angle))
    return positions


def force_directed_layout(
    graph: TimeSeriesGraph,
    *,
    n_iterations: int = 100,
    random_state=None,
) -> Dict[int, Position]:
    """Fruchterman-Reingold force-directed layout seeded from the PCA layout.

    Edge weights attract proportionally to ``log(1 + weight)`` so heavy
    transition edges pull their endpoints together without collapsing the
    whole graph.
    """
    n_iterations = check_positive_int(n_iterations, "n_iterations")
    rng = check_random_state(random_state)
    nodes = graph.nodes()
    n = len(nodes)
    if n == 0:
        return {}
    if n == 1:
        return {nodes[0]: (0.5, 0.5)}

    index = {node: i for i, node in enumerate(nodes)}
    seed = pca_layout(graph)
    positions = np.array([seed[node] for node in nodes], dtype=float)
    positions += rng.normal(0.0, 0.01, size=positions.shape)

    adjacency = np.zeros((n, n))
    for (source, target) in graph.edges():
        weight = np.log1p(graph.edge_weight((source, target)))
        adjacency[index[source], index[target]] += weight
        adjacency[index[target], index[source]] += weight

    optimal = 1.0 / np.sqrt(n)
    temperature = 0.1
    for iteration in range(n_iterations):
        delta = positions[:, None, :] - positions[None, :, :]
        distance = np.linalg.norm(delta, axis=2)
        np.fill_diagonal(distance, 1.0)
        distance = np.maximum(distance, 1e-6)

        repulsion = (optimal**2) / distance
        attraction = adjacency * (distance**2) / optimal
        force = (repulsion - attraction) / distance
        displacement = np.sum(delta * force[:, :, None], axis=1)

        length = np.linalg.norm(displacement, axis=1, keepdims=True)
        length = np.maximum(length, 1e-9)
        positions += displacement / length * np.minimum(length, temperature)
        temperature *= 0.95

    return _normalise_positions({node: tuple(positions[index[node]]) for node in nodes})
