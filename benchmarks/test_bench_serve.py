"""E12 — Online serving: micro-batched vs unbatched per-request dispatch.

The :mod:`repro.serve` stack turns a fitted k-Graph into a servable model.
This experiment replays a closed-loop load test against one saved model:
``N_CLIENTS`` concurrent clients each issue ``N_REQUESTS`` single-series
predict requests, under three serving modes:

* ``direct``    — every client calls ``model.predict`` itself (no server,
  per-request pattern/centroid preparation; what a naive integration does);
* ``unbatched`` — per-request dispatch through the
  :class:`~repro.serve.engine.InferenceEngine` with ``max_batch_size=1``
  (prepared state, but one backend dispatch per request);
* ``batched``   — the same engine with micro-batching enabled
  (``max_batch_size=32``), coalescing whatever requests are pending.

Throughput (requests/s) and client-side latency (p50/p95) are recorded to
``benchmarks/results/serve_latency.json``.  Predictions are asserted to be
identical across all modes — micro-batching must never change results —
and the batched mode must beat unbatched per-request dispatch on
throughput (the whole point of the engine).
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from bench_utils import RESULTS_DIR, format_table, full_mode, report
from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.serve.artifacts import load_model, save_model
from repro.serve.engine import InferenceEngine
from repro.utils.schema import schema_envelope

if full_mode():
    FIT_N_SERIES, FIT_LENGTH, FIT_N_LENGTHS = 60, 256, 6
    N_CLIENTS, N_REQUESTS = 12, 80
else:
    FIT_N_SERIES, FIT_LENGTH, FIT_N_LENGTHS = 24, 96, 3
    N_CLIENTS, N_REQUESTS = 8, 50

MAX_BATCH_SIZE = 32


def _served_model(tmp_path):
    """Fit once, round-trip through the artifact format (as a server would)."""
    dataset = make_cylinder_bell_funnel(
        n_series=FIT_N_SERIES, length=FIT_LENGTH, noise=0.2, random_state=0
    )
    model = KGraph(n_clusters=3, n_lengths=FIT_N_LENGTHS, random_state=0)
    model.fit(dataset.data)
    return load_model(save_model(model, tmp_path / "model", dataset="bench"))


def _request_stream():
    """The pool of out-of-sample series clients draw their requests from."""
    return make_cylinder_bell_funnel(
        n_series=64, length=FIT_LENGTH, noise=0.2, random_state=1
    ).data


def _run_load(call, series_pool):
    """Closed-loop load: N_CLIENTS threads, each issuing N_REQUESTS in turn.

    Returns (throughput_rps, latencies_seconds, predictions-by-request-index).
    """
    latencies = np.zeros(N_CLIENTS * N_REQUESTS)
    predictions = np.zeros(N_CLIENTS * N_REQUESTS, dtype=int)

    def client(client_id: int) -> None:
        for request_id in range(N_REQUESTS):
            index = client_id * N_REQUESTS + request_id
            series = series_pool[index % len(series_pool)]
            start = time.perf_counter()
            predictions[index] = call(series)
            latencies[index] = time.perf_counter() - start

    threads = [
        threading.Thread(target=client, args=(client_id,))
        for client_id in range(N_CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return len(latencies) / wall, latencies, predictions


def _run_serve_experiment(tmp_path):
    model = _served_model(tmp_path)
    series_pool = _request_stream()
    rows = []
    prediction_reference = None
    engine_stats = {}

    def record(mode, throughput, latencies, predictions, stats=None):
        nonlocal prediction_reference
        if prediction_reference is None:
            prediction_reference = predictions.copy()
        else:
            assert np.array_equal(predictions, prediction_reference), mode
        row = {
            "mode": mode,
            "throughput_rps": throughput,
            "p50_ms": float(np.percentile(latencies, 50) * 1e3),
            "p95_ms": float(np.percentile(latencies, 95) * 1e3),
            "requests": int(latencies.size),
        }
        if stats is not None:
            row["batches"] = stats["batches"]
            row["mean_batch_size"] = stats["mean_batch_size"]
            engine_stats[mode] = stats
        rows.append(row)

    # direct: per-request predict in the client thread, no serving layer.
    throughput, latencies, predictions = _run_load(
        lambda series: int(model.predict(series.reshape(1, -1))[0]), series_pool
    )
    record("direct", throughput, latencies, predictions)

    # unbatched: per-request dispatch through the engine (batch size 1).
    with InferenceEngine(model, max_batch_size=1, flush_interval=0.0) as engine:
        throughput, latencies, predictions = _run_load(engine.predict, series_pool)
        record("unbatched", throughput, latencies, predictions, engine.stats())

    # batched: work-conserving micro-batching (flush whatever is pending).
    with InferenceEngine(
        model, max_batch_size=MAX_BATCH_SIZE, flush_interval=0.0
    ) as engine:
        throughput, latencies, predictions = _run_load(engine.predict, series_pool)
        record("batched", throughput, latencies, predictions, engine.stats())

    return rows, engine_stats


@pytest.mark.benchmark(group="E12-serve-latency")
def test_bench_serve_latency(benchmark, tmp_path):
    rows, engine_stats = benchmark.pedantic(
        lambda: _run_serve_experiment(tmp_path), rounds=1, iterations=1
    )

    by_mode = {row["mode"]: row for row in rows}
    for row in rows:
        row["speedup_vs_direct"] = row["throughput_rps"] / max(
            by_mode["direct"]["throughput_rps"], 1e-9
        )

    payload = schema_envelope(1, "serve-latency-benchmark")
    payload.update(
        {
            "experiment": "E12-serve-latency",
            "cpu_count": os.cpu_count() or 1,
            "full_mode": full_mode(),
            "load": {
                "n_clients": N_CLIENTS,
                "n_requests_per_client": N_REQUESTS,
                "series_length": FIT_LENGTH,
                "max_batch_size": MAX_BATCH_SIZE,
            },
            "model": {
                "n_series": FIT_N_SERIES,
                "length": FIT_LENGTH,
                "n_lengths": FIT_N_LENGTHS,
            },
            "rows": rows,
            "engine_stats": engine_stats,
        }
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "serve_latency.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )

    table = format_table(
        rows,
        ["mode", "throughput_rps", "p50_ms", "p95_ms", "mean_batch_size", "speedup_vs_direct"],
    )
    batched = by_mode["batched"]
    unbatched = by_mode["unbatched"]
    summary = (
        f"{table}\n\n{N_CLIENTS} closed-loop clients x {N_REQUESTS} requests against "
        "one saved model (predictions identical across all modes, asserted).  "
        f"Micro-batching coalesced {batched['requests']} requests into "
        f"{batched['batches']} batches (mean size {batched['mean_batch_size']:.1f}) "
        f"for a {batched['throughput_rps'] / unbatched['throughput_rps']:.2f}x "
        "throughput gain over unbatched per-request dispatch."
    )
    report("E12: Online serving latency (micro-batched vs unbatched)", summary)
    benchmark.extra_info["batched_rps"] = round(batched["throughput_rps"])
    benchmark.extra_info["unbatched_rps"] = round(unbatched["throughput_rps"])

    # Results are always recorded; the wall-clock acceptance bar is only
    # asserted in full mode — throughput assertions flake on loaded or
    # single-core CI runners (same policy as test_bench_parallel).
    if full_mode():
        # Micro-batches must actually form under concurrent load...
        assert batched["mean_batch_size"] > 1.0
        # ...and batching must pay: more throughput than per-request dispatch.
        assert batched["throughput_rps"] > unbatched["throughput_rps"], (
            f"micro-batching ({batched['throughput_rps']:.0f} rps) must beat unbatched "
            f"per-request dispatch ({unbatched['throughput_rps']:.0f} rps)"
        )
