"""BIRCH-style clustering with a clustering-feature (CF) summarisation stage.

This is a simplified BIRCH: a one-pass CF summarisation (threshold-driven
subcluster creation) followed by global agglomerative clustering of the
subcluster centroids, then label propagation back to the samples.  It keeps
the defining characteristic of BIRCH (single-pass summarisation before
global clustering) with far less bookkeeping than a full CF-tree.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_positive_int


class _ClusteringFeature:
    """Sufficient statistics (n, linear sum, squared sum) of a subcluster."""

    __slots__ = ("count", "linear_sum", "squared_sum")

    def __init__(self, point: np.ndarray) -> None:
        self.count = 1
        self.linear_sum = point.copy()
        self.squared_sum = float(point @ point)

    @property
    def centroid(self) -> np.ndarray:
        return self.linear_sum / self.count

    @property
    def radius(self) -> float:
        centroid = self.centroid
        value = self.squared_sum / self.count - float(centroid @ centroid)
        return float(np.sqrt(max(value, 0.0)))

    def add(self, point: np.ndarray) -> None:
        self.count += 1
        self.linear_sum = self.linear_sum + point
        self.squared_sum += float(point @ point)

    def radius_if_added(self, point: np.ndarray) -> float:
        count = self.count + 1
        linear = self.linear_sum + point
        squared = self.squared_sum + float(point @ point)
        centroid = linear / count
        value = squared / count - float(centroid @ centroid)
        return float(np.sqrt(max(value, 0.0)))


class Birch(BaseClusterer):
    """Single-pass CF summarisation + global agglomerative refinement.

    Parameters
    ----------
    n_clusters:
        Number of final clusters.
    threshold:
        Maximum subcluster radius; new points that would exceed it start a new
        subcluster.
    branching_factor:
        Upper bound on the number of subclusters (memory guard); when reached,
        the threshold is doubled and summarisation restarts.

    Attributes
    ----------
    subcluster_centers_:
        Centroids of the CF subclusters.
    labels_:
        Final cluster assignment per sample.
    """

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        threshold: float = 0.5,
        branching_factor: int = 200,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        if threshold <= 0:
            raise ValidationError(f"threshold must be positive, got {threshold}")
        self.threshold = float(threshold)
        self.branching_factor = check_positive_int(branching_factor, "branching_factor", minimum=2)

        self.subcluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None

    def _summarise(self, array: np.ndarray, threshold: float) -> List[_ClusteringFeature]:
        features: List[_ClusteringFeature] = []
        for point in array:
            if not features:
                features.append(_ClusteringFeature(point))
                continue
            centroids = np.vstack([cf.centroid for cf in features])
            nearest = int(np.argmin(np.linalg.norm(centroids - point, axis=1)))
            if features[nearest].radius_if_added(point) <= threshold:
                features[nearest].add(point)
            else:
                features.append(_ClusteringFeature(point))
                if len(features) > self.branching_factor:
                    return []
        return features

    def fit(self, data) -> "Birch":
        """Summarise then cluster ``data`` of shape (n_samples, n_features)."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if self.n_clusters > array.shape[0]:
            raise ValidationError(
                f"n_clusters ({self.n_clusters}) cannot exceed n_samples ({array.shape[0]})"
            )

        threshold = self.threshold
        features = self._summarise(array, threshold)
        while not features:
            threshold *= 2.0
            features = self._summarise(array, threshold)

        centers = np.vstack([cf.centroid for cf in features])
        self.subcluster_centers_ = centers

        if centers.shape[0] <= self.n_clusters:
            sub_labels = np.arange(centers.shape[0])
        else:
            global_clusterer = AgglomerativeClustering(
                n_clusters=self.n_clusters, linkage="ward", metric="euclidean"
            )
            sub_labels = global_clusterer.fit_predict(centers)

        distances = np.linalg.norm(array[:, None, :] - centers[None, :, :], axis=2)
        nearest_sub = np.argmin(distances, axis=1)
        self.labels_ = sub_labels[nearest_sub]
        return self
