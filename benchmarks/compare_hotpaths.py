#!/usr/bin/env python
"""Compare a fresh hotpaths run against the committed baseline (CI perf smoke).

Usage::

    python benchmarks/compare_hotpaths.py BASELINE.json CURRENT.json \
        [--max-slowdown 2.0]

Both files are ``benchmarks/results/hotpaths.json`` payloads written by
``benchmarks/test_bench_hotpaths.py`` (E13).  Comparing raw seconds across
machines is meaningless — a laptop baseline would fail every CI runner — so
the regression signal is the *speedup* of each vectorized hot path over its
retained reference implementation, which both runs measure on their own
hardware.  A hot path fails the smoke check when its current speedup drops
below ``baseline_speedup / max_slowdown`` (i.e. the vectorized path became
more than ``max_slowdown`` x slower relative to the reference than the
committed baseline says it should be), or when a baseline hot path is
missing from the current run.

Exit status: 0 when every hot path passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_payload(path: Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise SystemExit(f"{path}: missing or malformed schema_version")
    return payload


def entries_by_name(payload: dict) -> dict:
    return {entry["hot_path"]: entry for entry in payload.get("entries", [])}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed hotpaths.json")
    parser.add_argument("current", type=Path, help="freshly generated hotpaths.json")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when a hot path's speedup drops below baseline/this factor",
    )
    args = parser.parse_args(argv)
    if args.max_slowdown <= 0:
        parser.error("--max-slowdown must be positive")

    baseline_payload = load_payload(args.baseline)
    current_payload = load_payload(args.current)
    # Speedups are only comparable for the same benchmark config: a
    # full-mode baseline vs a tiny-mode run would set nonsense floors.
    if baseline_payload.get("full_mode") != current_payload.get("full_mode"):
        raise SystemExit(
            f"config mismatch: baseline full_mode="
            f"{baseline_payload.get('full_mode')} but current full_mode="
            f"{current_payload.get('full_mode')}; regenerate the baseline "
            "with the same REPRO_BENCH_FULL setting"
        )
    baseline = entries_by_name(baseline_payload)
    current = entries_by_name(current_payload)

    failures = []
    width = max(len(name) for name in baseline) if baseline else 10
    print(f"{'hot path':<{width}}  baseline  current  floor  status")
    for name, base_entry in sorted(baseline.items()):
        base_speedup = float(base_entry["speedup"])
        floor = base_speedup / args.max_slowdown
        entry = current.get(name)
        if entry is None:
            failures.append(f"{name}: missing from the current run")
            print(f"{name:<{width}}  {base_speedup:7.1f}x  missing  {floor:4.1f}x  FAIL")
            continue
        speedup = float(entry["speedup"])
        ok = speedup >= floor
        status = "ok" if ok else "FAIL"
        print(
            f"{name:<{width}}  {base_speedup:7.1f}x  {speedup:6.1f}x  {floor:4.1f}x  {status}"
        )
        if not ok:
            failures.append(
                f"{name}: speedup {speedup:.1f}x fell below {floor:.1f}x "
                f"(baseline {base_speedup:.1f}x / max slowdown {args.max_slowdown:g})"
            )

    if failures:
        print("\nPerf smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nPerf smoke passed: no vectorized hot path regressed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
