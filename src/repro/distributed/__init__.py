"""Distributed execution: HTTP worker services + a coordinator backend.

The package splits the fan-out contract of
:class:`~repro.parallel.backends.ExecutionBackend` across machines:

* :mod:`repro.distributed.worker` — the worker service (``graphint
  worker``): ``POST /jobs`` chunks against a registered-function dispatch
  table, ``GET /healthz``/``/metrics``, ``POST /shutdown``.
* :mod:`repro.distributed.backend` — :class:`DistributedBackend`, the
  coordinator: ordered results, per-job error capture, quarantine/bisect
  crash recovery and ``WorkerPoolExhausted`` demotion, all mirroring the
  process backend so retry policies and fallback chains transfer as-is.
* :mod:`repro.distributed.registry` — the safe dispatch table (names over
  the wire, never pickled callables).
* :mod:`repro.distributed.stagecache` — :class:`StageDataPlane`, the
  stage cache as a data plane: large arrays travel as content
  fingerprints resolved against a shared directory.

Resolve one anywhere a backend is accepted::

    resolve_backend("distributed:127.0.0.1:8101,127.0.0.1:8102@/tmp/plane")
"""

# Exports resolve lazily (PEP 562): the library's hot modules
# (kgraph_stages, distances, runner, ...) import
# ``repro.distributed.registry`` at their bottom to self-register their
# fan-out functions, which executes this package __init__ first — an eager
# import of backend/worker here would close a cycle straight back into
# those modules.  The registry stays import-light by design; everything
# else loads on first attribute access.
_EXPORTS = {
    "DistributedBackend": "repro.distributed.backend",
    "DEFAULT_REQUEST_TIMEOUT": "repro.distributed.backend",
    "DEFAULT_PROBE_TIMEOUT": "repro.distributed.backend",
    "canonical_name": "repro.distributed.registry",
    "register_worker_function": "repro.distributed.registry",
    "registered_function_names": "repro.distributed.registry",
    "resolve_worker_function": "repro.distributed.registry",
    "worker_function_name": "repro.distributed.registry",
    "load_default_worker_functions": "repro.distributed.registry",
    "StageDataPlane": "repro.distributed.stagecache",
    "PlaneArrayRef": "repro.distributed.stagecache",
    "PlaneMissError": "repro.distributed.stagecache",
    "DEFAULT_MIN_PLANE_BYTES": "repro.distributed.stagecache",
    "WorkerApplication": "repro.distributed.worker",
    "serve_worker": "repro.distributed.worker",
    "WORKER_PROCESS_ENV": "repro.distributed.worker",
    "DEFAULT_MAX_CHUNK_JOBS": "repro.distributed.worker",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.distributed' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "DistributedBackend",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_PROBE_TIMEOUT",
    "canonical_name",
    "register_worker_function",
    "registered_function_names",
    "resolve_worker_function",
    "worker_function_name",
    "load_default_worker_functions",
    "StageDataPlane",
    "PlaneArrayRef",
    "PlaneMissError",
    "DEFAULT_MIN_PLANE_BYTES",
    "WorkerApplication",
    "serve_worker",
    "WORKER_PROCESS_ENV",
    "DEFAULT_MAX_CHUNK_JOBS",
]
