"""Cluster representations shown to the (simulated) quiz participant.

* For **k-Means** and **k-Shape** the representation of a cluster is its
  centroid series (exactly what the Graphint quiz displays).
* For **k-Graph** the representation is the cluster's graphoid: the set of
  exclusive/representative node patterns, each a short subsequence shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.kgraph import KGraph
from repro.exceptions import ValidationError
from repro.graph.graphoid import node_exclusivity, node_representativity
from repro.utils.normalization import znormalize, znormalize_dataset
from repro.utils.validation import check_array, check_labels


@dataclass
class ClusterRepresentation:
    """What the participant sees for one cluster under one method.

    Attributes
    ----------
    method:
        Clustering method name (``"kmeans"``, ``"kshape"``, ``"kgraph"``).
    cluster:
        Cluster identifier.
    kind:
        ``"centroid"`` (a single series) or ``"graphoid"`` (a set of node
        patterns with scores).
    centroid:
        The centroid series when ``kind == "centroid"``.
    patterns:
        Node patterns (short subsequences) when ``kind == "graphoid"``.
    pattern_scores:
        Exclusivity-weighted score of each pattern (same order as
        ``patterns``); used both for display and by the simulated user.
    graph_node_patterns:
        For graphoid representations: the z-normalised pattern of *every*
        node of the displayed graph (node-sorted order).  Together with
        ``cluster_profile`` this is what the Graph frame shows when it
        highlights a series' trajectory, and what the simulated user uses to
        place a query series on the graph.
    cluster_profile:
        For graphoid representations: the cluster's average node-visit
        distribution (same node order as ``graph_node_patterns``).
    """

    method: str
    cluster: int
    kind: str
    centroid: Optional[np.ndarray] = None
    patterns: List[np.ndarray] = field(default_factory=list)
    pattern_scores: List[float] = field(default_factory=list)
    graph_node_patterns: List[np.ndarray] = field(default_factory=list)
    cluster_profile: Optional[np.ndarray] = None

    def describe(self) -> Dict[str, object]:
        """JSON-friendly description for the quiz frame."""
        return {
            "method": self.method,
            "cluster": self.cluster,
            "kind": self.kind,
            "n_patterns": len(self.patterns),
            "centroid_length": None if self.centroid is None else int(self.centroid.shape[0]),
        }


def centroid_representation(
    method: str, data, labels
) -> Dict[int, ClusterRepresentation]:
    """Per-cluster centroid representations (k-Means / k-Shape style).

    The centroid of a cluster is the z-normalised mean of its members, which
    is what both baselines display in the demo.
    """
    array = check_array(data, name="data", ndim=2, min_rows=1)
    labels = check_labels(labels, n_samples=array.shape[0])
    representations: Dict[int, ClusterRepresentation] = {}
    for cluster in np.unique(labels):
        members = array[labels == cluster]
        if members.shape[0] == 0:
            raise ValidationError(f"cluster {cluster} has no members")
        centroid = znormalize(members.mean(axis=0))
        representations[int(cluster)] = ClusterRepresentation(
            method=method,
            cluster=int(cluster),
            kind="centroid",
            centroid=centroid,
        )
    return representations


def graphoid_representation(
    model: KGraph,
    *,
    max_patterns: int = 5,
) -> Dict[int, ClusterRepresentation]:
    """Per-cluster graphoid representations from a fitted k-Graph model.

    For each cluster the most exclusive nodes (weighted by representativity so
    rarely-visited flukes do not dominate) provide ``max_patterns`` short
    patterns; the quiz participant matches query series against them.
    """
    model._check_fitted()
    graph = model.result_.optimal_graph
    labels = model.result_.labels
    exclusivity = node_exclusivity(graph, labels)
    representativity = node_representativity(graph, labels)

    # The per-series node-visit distribution and the per-node patterns let the
    # quiz participant (human or simulated) place a query series on the graph,
    # which is exactly what the demo shows ("the subgraph corresponding to the
    # time series").
    node_features = graph.node_feature_matrix(normalize=True)
    all_patterns = [znormalize(graph.node_pattern(node)) for node in graph.nodes()]

    representations: Dict[int, ClusterRepresentation] = {}
    for cluster in np.unique(labels):
        cluster = int(cluster)
        scores = {
            node: exclusivity[cluster][node] * representativity[cluster][node]
            for node in graph.nodes()
        }
        ranked = sorted(scores, key=scores.get, reverse=True)
        patterns: List[np.ndarray] = []
        pattern_scores: List[float] = []
        for node in ranked[:max_patterns]:
            if scores[node] <= 0:
                continue
            patterns.append(znormalize(graph.node_pattern(node)))
            pattern_scores.append(float(scores[node]))
        if not patterns:
            # Fall back to the most representative node so the representation
            # is never empty (mirrors the GUI which always shows something).
            best = max(
                graph.nodes(), key=lambda n: representativity[cluster][n], default=None
            )
            if best is not None:
                patterns.append(znormalize(graph.node_pattern(best)))
                pattern_scores.append(float(representativity[cluster][best]))
        cluster_profile = node_features[labels == cluster].mean(axis=0)
        representations[cluster] = ClusterRepresentation(
            method="kgraph",
            cluster=cluster,
            kind="graphoid",
            patterns=patterns,
            pattern_scores=pattern_scores,
            graph_node_patterns=all_patterns,
            cluster_profile=cluster_profile,
        )
    return representations
