"""Spectral clustering on an affinity matrix (normalised-cut embedding).

Spectral clustering plays two roles in the paper: it is the consensus step of
k-Graph ("We finally apply spectral clustering on this matrix and produce a
final clustering partition L") and it is one of the benchmark baselines when
applied to an RBF affinity of the raw series.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.cluster.kmeans import KMeans
from repro.exceptions import ValidationError
from repro.linalg.kernels import rbf_affinity
from repro.utils.validation import check_array, check_positive_int


class SpectralClustering(BaseClusterer):
    """Normalised spectral clustering (Ng-Jordan-Weiss style).

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    affinity:
        ``"precomputed"`` when ``fit`` receives an affinity/similarity matrix
        directly (the consensus-matrix case), or ``"rbf"`` to build a Gaussian
        affinity from a feature matrix.
    gamma:
        RBF scale when ``affinity="rbf"`` (``None`` = median heuristic).
    n_init, random_state:
        Passed to the k-Means discretisation of the spectral embedding.

    Attributes
    ----------
    labels_:
        Final cluster assignment.
    embedding_:
        Row-normalised spectral embedding used for the k-Means step.
    """

    def __init__(
        self,
        n_clusters: int = 2,
        *,
        affinity: str = "rbf",
        gamma: Optional[float] = None,
        n_init: int = 10,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        if affinity not in {"rbf", "precomputed"}:
            raise ValidationError(f"affinity must be 'rbf' or 'precomputed', got {affinity!r}")
        self.affinity = affinity
        self.gamma = gamma
        self.n_init = check_positive_int(n_init, "n_init")
        self.random_state = random_state

        self.labels_: Optional[np.ndarray] = None
        self.embedding_: Optional[np.ndarray] = None
        self.affinity_matrix_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def _build_affinity(self, data: np.ndarray) -> np.ndarray:
        if self.affinity == "precomputed":
            matrix = check_array(data, name="affinity", ndim=2)
            if matrix.shape[0] != matrix.shape[1]:
                raise ValidationError("precomputed affinity matrix must be square")
            if np.any(matrix < -1e-12):
                raise ValidationError("affinity values must be non-negative")
            matrix = np.maximum(matrix, 0.0)
            return 0.5 * (matrix + matrix.T)
        return rbf_affinity(data, gamma=self.gamma)

    def fit(self, data) -> "SpectralClustering":
        """Cluster ``data`` (feature matrix or precomputed affinity)."""
        affinity = self._build_affinity(np.asarray(data, dtype=float))
        n = affinity.shape[0]
        if self.n_clusters > n:
            raise ValidationError(
                f"n_clusters ({self.n_clusters}) cannot exceed n_samples ({n})"
            )
        self.affinity_matrix_ = affinity

        degrees = affinity.sum(axis=1)
        # Guard against isolated points (zero degree) to keep D^-1/2 finite.
        inv_sqrt_degrees = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
        normalized = affinity * inv_sqrt_degrees[:, None] * inv_sqrt_degrees[None, :]
        # Eigenvectors of the normalised affinity associated with the largest
        # eigenvalues span the same space as the smallest eigenvectors of the
        # normalised Laplacian I - D^-1/2 A D^-1/2.
        eigenvalues, eigenvectors = np.linalg.eigh(normalized)
        order = np.argsort(eigenvalues)[::-1]
        components = eigenvectors[:, order[: self.n_clusters]]

        norms = np.linalg.norm(components, axis=1, keepdims=True)
        norms = np.where(norms < 1e-12, 1.0, norms)
        embedding = components / norms
        self.embedding_ = embedding

        kmeans = KMeans(
            n_clusters=self.n_clusters,
            n_init=self.n_init,
            random_state=self.random_state,
        )
        self.labels_ = kmeans.fit_predict(embedding)
        return self
