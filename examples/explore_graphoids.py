"""Scenario 2: explore the graph and find each cluster's discriminative patterns.

Run with::

    python examples/explore_graphoids.py

Reproduces the "Exploring k-Graph" demonstration scenario: fit k-Graph on a
dataset, sweep the representativity (λ) and exclusivity (γ) thresholds, find
the setting where every cluster owns at least one coloured node, and print
the patterns those nodes represent.
"""

from __future__ import annotations

import numpy as np

from repro import KGraph, generate_dataset
from repro.graph.graphoid import node_exclusivity, node_representativity


def coloured_nodes_per_cluster(model: KGraph, lam: float, gam: float) -> dict:
    """Number of nodes passing both thresholds, per cluster."""
    graph = model.optimal_graph_
    labels = model.result_.labels
    exclusivity = node_exclusivity(graph, labels)
    representativity = node_representativity(graph, labels)
    counts = {}
    for cluster in exclusivity:
        counts[cluster] = sum(
            1
            for node in graph.nodes()
            if exclusivity[cluster][node] >= gam and representativity[cluster][node] >= lam
        )
    return counts


def main() -> None:
    dataset = generate_dataset("two_patterns", random_state=1)
    print(f"dataset: {dataset.name} ({dataset.n_classes} classes)")

    model = KGraph(n_clusters=dataset.n_classes, n_lengths=4, random_state=1)
    model.fit(dataset.data)
    print(f"selected length: {model.optimal_length_}")

    # Sweep the thresholds from strict to permissive, as the demo user would
    # move the sliders, and stop at the strictest setting where every cluster
    # has at least one coloured node.
    print("\nthreshold sweep (nodes passing both lambda and gamma, per cluster):")
    chosen = None
    for threshold in (0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3):
        counts = coloured_nodes_per_cluster(model, lam=threshold, gam=threshold)
        line = "  ".join(f"C{c}:{n}" for c, n in sorted(counts.items()))
        print(f"  lambda = gamma = {threshold:.1f}   {line}")
        if chosen is None and all(count >= 1 for count in counts.values()):
            chosen = threshold
    if chosen is None:
        chosen = 0.3
    print(f"\nstrictest setting with one coloured node per cluster: {chosen:.1f}")

    # Show the discriminative pattern of each cluster at that setting.
    graphoids = model.recompute_graphoids(lambda_threshold=chosen, gamma_threshold=chosen)
    graph = model.optimal_graph_
    print("\nmost exclusive node pattern per cluster (first 10 values, z-normalised):")
    for cluster, graphoid in sorted(graphoids["gamma"].items()):
        if not graphoid.nodes:
            print(f"  cluster {cluster}: no node above the threshold")
            continue
        best = max(graphoid.node_scores, key=graphoid.node_scores.get)
        pattern = graph.node_pattern(best)
        pattern = (pattern - pattern.mean()) / (pattern.std() + 1e-12)
        values = np.array2string(pattern[:10], precision=2, separator=", ")
        print(f"  cluster {cluster}: node {best} "
              f"(exclusivity {graphoid.node_scores[best]:.2f})  pattern[:10] = {values}")

    # Verify the identified patterns are consistent with the true labels.
    from repro.metrics import adjusted_rand_index

    ari = adjusted_rand_index(dataset.labels, model.labels_)
    print(f"\nARI of the k-Graph partition vs true labels: {ari:.3f}")


if __name__ == "__main__":
    main()
