"""``graphint`` command-line interface.

Sub-commands:

* ``graphint datasets``                       — list the dataset catalogue
* ``graphint cluster  --dataset NAME``        — run k-Graph and print a report
* ``graphint dashboard --dataset NAME -o F``  — write the static HTML dashboard
* ``graphint benchmark -o results.json``      — run the benchmark campaign
* ``graphint serve --port 8050``              — start the interactive server
  (add ``--registry DIR`` to mount the model-serving JSON API on the same
  port: ``POST /predict``, ``GET /models``, ``GET /healthz``)
* ``graphint worker --port 0``                — start a distributed execution
  worker (``--data-plane DIR`` shares large arrays by fingerprint instead of
  shipping them); point any ``--backend`` at a pool of workers with
  ``distributed:HOST:PORT[,HOST:PORT...][@PLANE_DIR]``
* ``graphint quiz --dataset NAME``            — run the simulated interpretability test
* ``graphint export-model --dataset NAME -o DIR`` — fit k-Graph and save a
  servable model artifact (or publish it with ``--registry DIR``)
* ``graphint import-model ARTIFACT --registry DIR`` — copy an existing
  artifact into a registry
* ``graphint pipeline run --dataset NAME --cache DIR`` — run the staged
  k-Graph pipeline with checkpointing; ``--resume`` replays unchanged
  stages from the cache, ``--stage-backend embed=shared`` picks a backend
  per stage, ``--cache-budget BYTES --cache-policy lru|lfu`` bound the
  checkpoint directory, ``--fuse``/``--no-fuse`` control fused dispatch
* ``graphint pipeline inspect --cache DIR`` — list the checkpoints of a
  pipeline cache directory
* ``graphint estimators list`` — every estimator registry name (k-Graph
  plus the baselines) with family and description
* ``graphint estimators describe NAME`` — one estimator's typed config:
  fields, defaults, pipeline stages, help

``cluster``, ``benchmark`` and ``pipeline run`` accept ``--config FILE``
(a JSON estimator-config payload, sparse files allowed) and repeatable
``--set KEY=VALUE`` overrides; values parse as JSON with a plain-string
fallback (``--set feature_mode=edges --set lengths=[10,20]``).

Every command with ``--backend``/``--jobs`` also accepts the
fault-tolerance knobs: ``--retries N`` (attempts per failed job),
``--job-timeout SECONDS`` (watchdog that abandons hung jobs) and
``--fallback CHAIN`` (comma-separated degradation chain, e.g.
``thread,serial``).  Results stay bit-identical — retries and demotions
trade speed for survival, never correctness.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import KGraphConfig
from repro.benchmark.aggregate import summarize_by_method
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.store import load_results, save_results
from repro.datasets.catalogue import default_catalogue
from repro.exceptions import PipelineError, ValidationError
from repro.metrics.clustering import adjusted_rand_index
from repro.viz.dashboard import build_dashboard
from repro.viz.session import GraphintSession


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="JSON estimator-config file (a KGraphConfig payload for "
        "cluster/pipeline, any config fields for benchmark); sparse files "
        "are allowed — absent fields keep their defaults",
    )
    parser.add_argument(
        "--set",
        dest="set_options",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="config field override (repeatable); VALUE parses as JSON "
        "with a plain-string fallback, e.g. --set n_sectors=16 "
        "--set feature_mode=edges",
    )


def _parse_config_options(
    args: argparse.Namespace,
) -> Tuple[Optional[Dict[str, object]], Dict[str, object]]:
    """Read ``--config FILE`` and parse ``--set KEY=VALUE`` overrides."""
    payload: Optional[Dict[str, object]] = None
    if getattr(args, "config", None):
        text = Path(args.config).read_text(encoding="utf-8")
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValidationError(
                f"--config file {args.config} must hold a JSON object, got "
                f"{type(payload).__name__}"
            )
    overrides: Dict[str, object] = {}
    for entry in getattr(args, "set_options", None) or []:
        key, separator, value = entry.partition("=")
        key = key.strip()
        if not separator or not key:
            raise ValidationError(f"--set expects KEY=VALUE, got {entry!r}")
        try:
            overrides[key] = json.loads(value)
        except json.JSONDecodeError:
            overrides[key] = value
    return payload, overrides


def _resolve_kgraph_config(
    args: argparse.Namespace, dataset, *, default_seed: Optional[int]
) -> Optional[KGraphConfig]:
    """Build the KGraphConfig a command should fit with, or ``None``.

    Returns ``None`` when neither ``--config`` nor ``--set`` was given, so
    commands keep their legacy flag-driven path.  Explicit ``--clusters``
    / ``--lengths`` flags override the config file; unset knobs default
    from the dataset (``n_clusters``) and the command seed.
    """
    payload, overrides = _parse_config_options(args)
    if payload is None and not overrides:
        return None
    merged_keys = set(payload or {}) | set(overrides)
    if getattr(args, "clusters", None) is not None:
        overrides["n_clusters"] = args.clusters
    if getattr(args, "lengths", None) is not None:
        overrides["n_lengths"] = args.lengths
    merged_keys |= set(overrides)
    if "n_clusters" not in merged_keys:
        overrides["n_clusters"] = dataset.default_cluster_count()
    if "random_state" not in merged_keys and default_seed is not None:
        overrides["random_state"] = default_seed
    return KGraphConfig.from_options(payload, overrides)


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help=(
            "execution backend for the parallel pipeline stages (default: "
            "serial); one of serial|thread|process|shared, or "
            "'distributed:HOST:PORT[,HOST:PORT...][@PLANE_DIR]' to fan out "
            "over graphint worker services; 'shared' is a process pool with "
            "zero-copy shared-memory dataset plans"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count; results are identical to the serial run for a fixed seed",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry failed parallel jobs up to N attempts total "
        "(default: no failure retries; worker-loss recovery is always on)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job timeout; a job still running after this long is "
        "abandoned and reported as timed out",
    )
    parser.add_argument(
        "--fallback",
        default=None,
        metavar="CHAIN",
        help="comma-separated degradation chain tried when the primary "
        "backend exhausts its pool rebuilds, e.g. 'process,thread,serial'",
    )


def _parallel_options(args: argparse.Namespace):
    """Build the ``(retry, fallback)`` pair from the parallel CLI flags."""
    from repro.parallel import RetryPolicy

    retry = None
    if args.retries is not None or args.job_timeout is not None:
        retry = RetryPolicy(
            max_attempts=args.retries if args.retries is not None else 3,
            timeout=args.job_timeout,
        )
    fallback = None
    if args.fallback:
        names = tuple(name.strip() for name in args.fallback.split(",") if name.strip())
        if names:
            fallback = names
    return retry, fallback


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="graphint",
        description="Graphint: graph-based interpretable time series clustering tool",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list available datasets")

    cluster = subparsers.add_parser("cluster", help="run k-Graph on one dataset")
    cluster.add_argument("--dataset", default="cylinder_bell_funnel")
    cluster.add_argument("--clusters", type=int, default=None)
    cluster.add_argument(
        "--lengths", type=int, default=None,
        help="number of subsequence lengths (default 4, or the --config value)",
    )
    cluster.add_argument("--seed", type=int, default=0)
    _add_config_arguments(cluster)
    _add_parallel_arguments(cluster)

    dashboard = subparsers.add_parser("dashboard", help="build the static HTML dashboard")
    dashboard.add_argument("--dataset", default="cylinder_bell_funnel")
    dashboard.add_argument("--output", "-o", default="graphint_dashboard.html")
    dashboard.add_argument("--benchmark-file", default=None, help="JSON results to feed the Benchmark frame")
    dashboard.add_argument("--seed", type=int, default=0)
    _add_parallel_arguments(dashboard)

    benchmark = subparsers.add_parser("benchmark", help="run the benchmark campaign")
    benchmark.add_argument("--output", "-o", default="benchmark_results.json")
    benchmark.add_argument("--methods", nargs="*", default=None)
    benchmark.add_argument("--datasets", nargs="*", default=None)
    benchmark.add_argument("--runs", type=int, default=1)
    benchmark.add_argument("--seed", type=int, default=0)
    _add_config_arguments(benchmark)
    _add_parallel_arguments(benchmark)

    serve = subparsers.add_parser("serve", help="start the interactive dashboard server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8050)
    serve.add_argument("--benchmark-file", default=None)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--registry",
        default=None,
        help="model registry directory; mounts POST /predict, GET /models and "
        "GET /healthz next to the dashboard routes",
    )
    serve.add_argument("--max-batch-size", type=int, default=32)
    serve.add_argument(
        "--flush-interval",
        type=float,
        default=0.005,
        help="seconds the oldest queued predict request waits before a partial "
        "micro-batch is flushed",
    )
    _add_parallel_arguments(serve)

    worker = subparsers.add_parser(
        "worker", help="start a distributed execution worker service"
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to listen on (default 0: an OS-assigned ephemeral port, "
        "announced on stdout once bound)",
    )
    worker.add_argument(
        "--inner-backend",
        default=None,
        metavar="SPEC",
        help="backend the worker runs its own chunk's jobs on (default "
        "serial; the coordinator already spreads chunks across workers)",
    )
    worker.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker-local parallelism for --inner-backend",
    )
    worker.add_argument(
        "--data-plane",
        default=None,
        metavar="DIR",
        help="shared directory this worker may resolve data-plane array "
        "fingerprints against (omit to require inline payloads)",
    )

    quiz = subparsers.add_parser("quiz", help="run the simulated interpretability test")
    quiz.add_argument("--dataset", default="cylinder_bell_funnel")
    quiz.add_argument("--users", type=int, default=5)
    quiz.add_argument("--seed", type=int, default=0)

    export_model = subparsers.add_parser(
        "export-model", help="fit k-Graph and save a servable model artifact"
    )
    export_model.add_argument("--dataset", default="cylinder_bell_funnel")
    export_model.add_argument("--clusters", type=int, default=None)
    export_model.add_argument("--lengths", type=int, default=4, help="number of subsequence lengths")
    export_model.add_argument("--seed", type=int, default=0)
    export_model.add_argument("--output", "-o", default=None, help="artifact directory to write")
    export_model.add_argument("--registry", default=None, help="publish into this registry instead")
    export_model.add_argument("--model-id", default=None, help="registry model id (default: next vN)")
    _add_parallel_arguments(export_model)

    import_model = subparsers.add_parser(
        "import-model", help="copy a model artifact into a registry"
    )
    import_model.add_argument("artifact", help="artifact directory written by export-model")
    import_model.add_argument("--registry", required=True)
    import_model.add_argument("--dataset", default=None, help="override the dataset recorded in the manifest")
    import_model.add_argument("--model-id", default=None)

    pipeline = subparsers.add_parser(
        "pipeline", help="run or inspect the staged k-Graph pipeline"
    )
    pipeline_sub = pipeline.add_subparsers(dest="pipeline_command", required=True)

    pipeline_run = pipeline_sub.add_parser(
        "run", help="fit k-Graph through the checkpointed stage pipeline"
    )
    pipeline_run.add_argument("--dataset", default="cylinder_bell_funnel")
    pipeline_run.add_argument("--clusters", type=int, default=None)
    pipeline_run.add_argument(
        "--lengths", type=int, default=None,
        help="number of subsequence lengths (default 4, or the --config value)",
    )
    pipeline_run.add_argument("--seed", type=int, default=0)
    _add_config_arguments(pipeline_run)
    pipeline_run.add_argument(
        "--cache",
        default=None,
        help="stage checkpoint directory (created if needed); omit to run "
        "without checkpointing",
    )
    pipeline_run.add_argument(
        "--resume",
        action="store_true",
        help="replay unchanged stages from --cache instead of clearing it first",
    )
    pipeline_run.add_argument(
        "--cache-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="evict checkpoints so --cache never exceeds this many bytes",
    )
    pipeline_run.add_argument(
        "--cache-policy",
        choices=("lru", "lfu"),
        default="lru",
        help="eviction order under --cache-budget (default: lru)",
    )
    pipeline_run.add_argument(
        "--fuse",
        dest="fuse",
        action="store_true",
        default=None,
        help="force fused dispatch of adjacent fusable stages "
        "(default: automatic when both share one process backend)",
    )
    pipeline_run.add_argument(
        "--no-fuse",
        dest="fuse",
        action="store_false",
        help="disable fused stage dispatch",
    )
    pipeline_run.add_argument(
        "--stage-backend",
        action="append",
        default=None,
        metavar="STAGE=BACKEND",
        help="per-stage backend override, e.g. 'embed=shared' (repeatable); "
        "stages: embed, graph_cluster, consensus, length_selection, "
        "interpretability",
    )
    _add_parallel_arguments(pipeline_run)

    pipeline_inspect = pipeline_sub.add_parser(
        "inspect", help="list the checkpoints of a pipeline cache directory"
    )
    pipeline_inspect.add_argument("--cache", required=True, help="stage checkpoint directory")

    estimators = subparsers.add_parser(
        "estimators", help="list registered estimators or describe one"
    )
    estimators_sub = estimators.add_subparsers(dest="estimators_command", required=True)
    estimators_sub.add_parser("list", help="every estimator registry name")
    estimators_describe = estimators_sub.add_parser(
        "describe", help="one estimator's typed config: fields, defaults, help"
    )
    estimators_describe.add_argument("name", help="estimator registry name, e.g. kgraph")
    return parser


# --------------------------------------------------------------------------- #
def _cmd_datasets(_: argparse.Namespace) -> int:
    catalogue = default_catalogue()
    rows = catalogue.summary_rows()
    width = max(len(row["name"]) for row in rows)
    print(f"{'name':<{width}}  type                 series  length  classes")
    for row in rows:
        print(
            f"{row['name']:<{width}}  {row['type']:<20} {row['n_series']:>6}  "
            f"{row['length']:>6}  {row['n_classes']:>7}"
        )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    dataset = default_catalogue().get(args.dataset).generate(random_state=args.seed)
    try:
        config = _resolve_kgraph_config(args, dataset, default_seed=args.seed)
    except (ValidationError, OSError, json.JSONDecodeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    retry, fallback = _parallel_options(args)
    session = GraphintSession(
        dataset,
        n_clusters=args.clusters if config is None else config.n_clusters,
        n_lengths=(args.lengths if args.lengths is not None else 4),
        random_state=args.seed,
        backend=args.backend,
        n_jobs=args.jobs,
        retry=retry,
        fallback=fallback,
        kgraph_config=config,
    ).fit()
    summary = session.summary()
    print(f"dataset            : {dataset.name} ({dataset.n_series} x {dataset.length})")
    print(f"clusters (k)       : {session.n_clusters}")
    print(f"optimal length     : {summary['optimal_length']}")
    for method, ari in sorted(summary["ari"].items()):
        print(f"ARI {method:<14} : {ari:.3f}")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    dataset = default_catalogue().get(args.dataset).generate(random_state=args.seed)
    retry, fallback = _parallel_options(args)
    session = GraphintSession(
        dataset,
        random_state=args.seed,
        backend=args.backend,
        n_jobs=args.jobs,
        retry=retry,
        fallback=fallback,
    )
    benchmark_results = load_results(args.benchmark_file) if args.benchmark_file else None
    build_dashboard(session, benchmark_results=benchmark_results, output_path=args.output)
    print(f"dashboard written to {Path(args.output).resolve()}")
    return 0


def _cmd_benchmark(args: argparse.Namespace) -> int:
    try:
        payload, overrides = _parse_config_options(args)
    except (ValidationError, OSError, json.JSONDecodeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    config_overrides = {**(payload or {}), **overrides}
    # A full config file carries its schema version; the campaign applies
    # field overrides only.
    config_overrides.pop("version", None)
    retry, fallback = _parallel_options(args)
    runner = BenchmarkRunner(
        args.methods,
        n_runs=args.runs,
        random_state=args.seed,
        backend=args.backend,
        n_jobs=args.jobs,
        retry=retry,
        fallback=fallback,
        config_overrides=config_overrides or None,
    )

    def progress(method: str, dataset: str, result) -> None:
        status = "FAILED" if result.failed else f"ari={result.measures.get('ari', float('nan')):.3f}"
        print(f"[{dataset:<22}] {method:<16} {status}")

    results = runner.run(args.datasets, progress=progress)
    save_results(results, args.output)
    print(f"\nresults written to {Path(args.output).resolve()}")
    print("\nmean scores per method:")
    for method, values in sorted(summarize_by_method(results).items()):
        ari = values.get("ari", float("nan"))
        print(f"  {method:<16} ari={ari:.3f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.viz.server import DashboardApplication, serve_application

    benchmark_results = load_results(args.benchmark_file) if args.benchmark_file else None
    retry, fallback = _parallel_options(args)
    application = DashboardApplication(
        benchmark_results=benchmark_results,
        random_state=args.seed,
        backend=args.backend,
        n_jobs=args.jobs,
        retry=retry,
        fallback=fallback,
    )
    if args.registry is not None:
        from repro.serve import CombinedApplication, ModelRegistry, ServeApplication

        serving = ServeApplication(
            ModelRegistry(args.registry),
            max_batch_size=args.max_batch_size,
            flush_interval=args.flush_interval,
            backend=args.backend,
            n_jobs=args.jobs,
        )
        application = CombinedApplication(application, serving)
        print(f"model registry mounted from {Path(args.registry).resolve()}")

    def announce(server) -> None:
        # Printed from the ready hook, after bind: with --port 0 the OS
        # assigns the port, so only the bound server knows the real one.
        print(
            f"serving Graphint on http://{args.host}:{server.server_port} "
            "(Ctrl+C to stop)",
            flush=True,
        )

    try:
        serve_application(
            application, host=args.host, port=args.port, ready=announce
        )
    finally:
        if hasattr(application, "close"):
            application.close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import os

    from repro.distributed import WORKER_PROCESS_ENV, WorkerApplication, serve_worker

    # Mark this process sacrificial: chaos 'kill' faults may os._exit it.
    os.environ[WORKER_PROCESS_ENV] = "1"
    application = WorkerApplication(
        backend=args.inner_backend,
        n_jobs=args.jobs,
        data_plane=args.data_plane,
    )

    def announce(server) -> None:
        # One parseable line: supervisors (and the test-suite) read the
        # bound port and pid from it when --port 0 was used.
        print(
            f"worker listening on http://{args.host}:{server.server_port} "
            f"(pid {os.getpid()})",
            flush=True,
        )

    try:
        serve_worker(
            application, host=args.host, port=args.port, ready=announce
        )
    finally:
        application.close()
    return 0


def _cmd_export_model(args: argparse.Namespace) -> int:
    from repro.core.kgraph import KGraph
    from repro.serve import ModelRegistry, save_model

    if (args.output is None) == (args.registry is None):
        print("export-model needs exactly one of --output DIR or --registry DIR", file=sys.stderr)
        return 2
    dataset = default_catalogue().get(args.dataset).generate(random_state=args.seed)
    n_clusters = args.clusters
    if n_clusters is None:
        n_clusters = dataset.default_cluster_count()
    retry, fallback = _parallel_options(args)
    model = KGraph(
        n_clusters,
        n_lengths=args.lengths,
        random_state=args.seed,
        backend=args.backend,
        n_jobs=args.jobs,
        retry=retry,
        fallback=fallback,
    ).fit(dataset.data)
    if args.registry is not None:
        record = ModelRegistry(args.registry).publish(
            model, args.dataset, model_id=args.model_id
        )
        print(f"published {record.dataset}/{record.model_id} -> {record.path.resolve()}")
    else:
        path = save_model(model, args.output, dataset=args.dataset)
        print(f"model artifact written to {path.resolve()}")
    print(
        f"fitted on {dataset.n_series} series, k={model.n_clusters}, "
        f"optimal length {model.optimal_length_}"
    )
    return 0


def _cmd_import_model(args: argparse.Namespace) -> int:
    from repro.serve import ModelRegistry

    record = ModelRegistry(args.registry).import_artifact(
        args.artifact, dataset=args.dataset, model_id=args.model_id
    )
    print(f"imported {record.dataset}/{record.model_id} -> {record.path.resolve()}")
    return 0


def _parse_stage_backends(entries) -> dict:
    """Parse repeated ``--stage-backend STAGE=BACKEND`` options."""
    from repro.pipeline import KGRAPH_STAGE_NAMES

    overrides = {}
    for entry in entries or []:
        stage, separator, backend = entry.partition("=")
        stage = stage.strip()
        backend = backend.strip()
        if not separator or not stage or not backend:
            raise ValueError(
                f"--stage-backend expects STAGE=BACKEND, got {entry!r}"
            )
        if stage not in KGRAPH_STAGE_NAMES:
            raise ValueError(
                f"unknown stage {stage!r} in --stage-backend; stages: "
                f"{', '.join(KGRAPH_STAGE_NAMES)}"
            )
        overrides[stage] = backend
    return overrides


def _cmd_pipeline_run(args: argparse.Namespace) -> int:
    from repro.core.kgraph import KGraph
    from repro.pipeline import DiskStageCache

    try:
        stage_backends = _parse_stage_backends(args.stage_backend)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    dataset = default_catalogue().get(args.dataset).generate(random_state=args.seed)
    try:
        config = _resolve_kgraph_config(args, dataset, default_seed=args.seed)
    except (ValidationError, OSError, json.JSONDecodeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if config is None:
        n_clusters = args.clusters
        if n_clusters is None:
            n_clusters = dataset.default_cluster_count()
        config = KGraphConfig.from_options(
            overrides={
                "n_clusters": n_clusters,
                "n_lengths": args.lengths if args.lengths is not None else 4,
                "random_state": args.seed,
            }
        )

    cache = None
    if args.cache is not None:
        try:
            cache = DiskStageCache(
                args.cache,
                budget_bytes=args.cache_budget,
                policy=args.cache_policy,
            )
        except PipelineError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not args.resume:
            # A fresh run must not silently replay stale checkpoints from a
            # previous configuration; --resume is the explicit opt-in.
            cache.clear()
    elif args.resume:
        print("--resume requires --cache DIR", file=sys.stderr)
        return 2
    elif args.cache_budget is not None:
        print("--cache-budget requires --cache DIR", file=sys.stderr)
        return 2

    retry, fallback = _parallel_options(args)
    model = KGraph.from_config(
        config,
        backend=args.backend,
        n_jobs=args.jobs,
        retry=retry,
        fallback=fallback,
        stage_backends=stage_backends or None,
        stage_cache=cache,
        fuse_stages=args.fuse,
    ).fit(dataset.data)

    report = model.pipeline_report_
    print(f"dataset            : {dataset.name} ({dataset.n_series} x {dataset.length})")
    print(f"clusters (k)       : {model.n_clusters}")
    print(f"optimal length     : {model.optimal_length_}")
    if dataset.labels is not None:
        ari = adjusted_rand_index(dataset.labels, model.labels_)
        print(f"ARI                : {ari:.3f}")
    print()
    print(
        f"{'stage':<18} {'status':<8} {'seconds':>9} {'shipped':>10} "
        f"{'att':>4} {'t/o':>4} {'rbld':>5}  key"
    )
    for record in report.records:
        status = "cached" if record.cached else ("fused" if record.fused else "ran")
        print(
            f"{record.name:<18} {status:<8} {record.seconds:>9.4f} "
            f"{record.bytes_shipped:>10} {record.attempts:>4} "
            f"{record.timeouts:>4} {record.pool_rebuilds:>5}  {record.key[:12]}"
        )
    if cache is not None:
        stats = cache.stats()
        print(
            f"\ncheckpoints in {Path(args.cache).resolve()}: "
            f"{stats['entries']} ({stats['total_bytes']} bytes"
            + (
                f", budget {stats['budget_bytes']}, "
                f"{stats['evictions']} eviction(s), policy {stats['policy']})"
                if stats.get("budget_bytes")
                else ")"
            )
        )
        if not args.resume:
            print("re-run with --resume to replay unchanged stages")
    return 0


def _cmd_pipeline_inspect(args: argparse.Namespace) -> int:
    from repro.pipeline import DiskStageCache

    directory = Path(args.cache)
    if not directory.is_dir():
        print(f"no pipeline cache at {directory.resolve()}", file=sys.stderr)
        return 2
    cache = DiskStageCache(directory)
    entries = cache.entries()
    if not entries:
        print(f"no checkpoints in {directory.resolve()}")
        return 0
    print(f"{'stage':<18} {'key':<14} {'seconds':>9} {'bytes':>10}  outputs")
    for entry in entries:
        print(
            f"{entry.stage:<18} {entry.key[:12]:<14} {entry.seconds:>9.4f} "
            f"{entry.payload_bytes:>10}  {', '.join(entry.outputs)}"
        )
    print(
        f"\n{len(entries)} checkpoint(s), {cache.total_bytes()} bytes "
        f"in {directory.resolve()}"
    )
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    if args.pipeline_command == "run":
        return _cmd_pipeline_run(args)
    return _cmd_pipeline_inspect(args)


def _cmd_estimators_list(_: argparse.Namespace) -> int:
    from repro.api import default_registry

    specs = default_registry().specs()
    width = max(len(spec.name) for spec in specs)
    print(f"{'name':<{width}}  family   config          serve  description")
    for spec in specs:
        servable = "yes" if spec.servable else "no"
        print(
            f"{spec.name:<{width}}  {spec.family:<8} "
            f"{spec.config_cls.__name__:<15} {servable:<6} {spec.description}"
        )
    return 0


def _cmd_estimators_describe(args: argparse.Namespace) -> int:
    from repro.api import default_registry

    try:
        spec = default_registry().get(args.name)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    info = spec.describe()
    print(f"name        : {info['name']}")
    print(f"family      : {info['family']}")
    print(f"servable    : {'yes' if info['servable'] else 'no'}")
    print(f"config      : {info['config']} (version {info['config_version']})")
    print(f"description : {info['description']}")
    print()
    name_width = max(len(row["name"]) for row in info["fields"])
    print(f"{'field':<{name_width}}  {'default':<12} help")
    for row in info["fields"]:
        default = json.dumps(row["default"])
        help_text = row["help"]
        if row.get("stages"):
            help_text += f" [stages: {', '.join(row['stages'])}]"
        print(f"{row['name']:<{name_width}}  {default:<12} {help_text}")
    return 0


def _cmd_estimators(args: argparse.Namespace) -> int:
    if args.estimators_command == "describe":
        return _cmd_estimators_describe(args)
    return _cmd_estimators_list(args)


def _cmd_quiz(args: argparse.Namespace) -> int:
    dataset = default_catalogue().get(args.dataset).generate(random_state=args.seed)
    session = GraphintSession(dataset, random_state=args.seed).fit()
    session.build_quizzes(n_users=args.users)
    print(f"interpretability test on {dataset.name} ({args.users} simulated users)")
    for method, score in sorted(session.quiz_scores.items(), key=lambda item: -item[1]):
        print(f"  {method:<10} score = {score:.2f}")
    best = max(session.quiz_scores, key=session.quiz_scores.get)
    print(f"most interpretable representation: {best}")
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "cluster": _cmd_cluster,
    "dashboard": _cmd_dashboard,
    "benchmark": _cmd_benchmark,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "quiz": _cmd_quiz,
    "export-model": _cmd_export_model,
    "import-model": _cmd_import_model,
    "pipeline": _cmd_pipeline,
    "estimators": _cmd_estimators,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also exposed as the ``graphint`` console script)."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
