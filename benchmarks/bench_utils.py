"""Shared helpers for the benchmark harness.

Every experiment Ei of DESIGN.md has one ``test_bench_*.py`` module in this
directory.  Benchmarks are run with::

    pytest benchmarks/ --benchmark-only

Each experiment prints the rows/series the corresponding paper frame shows
and also writes them to ``benchmarks/results/<experiment>.txt`` so the output
survives pytest's capture.  Set the environment variable ``REPRO_BENCH_FULL=1``
to run the full-size dataset catalogue instead of the reduced one (the
reduced catalogue keeps the default run within a few minutes while preserving
every dataset family and therefore the shape of the results).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

from repro.datasets.catalogue import DatasetCatalogue, DatasetSpec, default_catalogue
from repro.datasets import synthetic

RESULTS_DIR = Path(__file__).parent / "results"


def full_mode() -> bool:
    """Whether the full-size catalogue was requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_catalogue() -> DatasetCatalogue:
    """The catalogue used by the benchmark harness.

    In default (reduced) mode every dataset family is kept but generated with
    fewer, shorter series so the 15-method campaign completes quickly; with
    ``REPRO_BENCH_FULL=1`` the paper-scale default catalogue is used.
    """
    if full_mode():
        return default_catalogue()
    reduced = DatasetCatalogue()
    entries = [
        ("cylinder_bell_funnel", synthetic.make_cylinder_bell_funnel, "synthetic-shape", 24, 96, 3),
        ("two_patterns", synthetic.make_two_patterns, "synthetic-shape", 24, 96, 4),
        ("gun_point_like", synthetic.make_gun_point_like, "synthetic-motion", 20, 96, 2),
        ("sine_families", synthetic.make_sine_families, "synthetic-periodic", 24, 96, 3),
        ("seasonal_mixture", synthetic.make_seasonal_mixture, "synthetic-seasonal", 24, 96, 3),
        ("trend_classes", synthetic.make_trend_classes, "synthetic-trend", 20, 96, 2),
        ("random_walk_regimes", synthetic.make_random_walk_regimes, "synthetic-stochastic", 24, 96, 3),
        ("shapelet_classes", synthetic.make_shapelet_classes, "synthetic-shape", 24, 96, 3),
        ("spiky_patterns", synthetic.make_spiky_patterns, "synthetic-sensor", 20, 96, 2),
        ("mixed_bag", synthetic.make_mixed_bag, "synthetic-mixed", 24, 96, 4),
        ("noise_only", synthetic.make_noise_only, "synthetic-control", 20, 96, 2),
    ]
    for name, generator, dataset_type, n_series, length, n_classes in entries:
        reduced.register(
            DatasetSpec(
                name=name,
                generator=generator,
                dataset_type=dataset_type,
                n_series=n_series,
                length=length,
                n_classes=n_classes,
            )
        )
    return reduced


def report(experiment: str, text: str) -> None:
    """Print an experiment report and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 78}\n{experiment}\n{'=' * 78}\n"
    print(banner + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    stem = experiment.split(":")[0].strip().lower().replace(" ", "_").replace("/", "_")
    (RESULTS_DIR / f"{stem}.txt").write_text(banner + text + "\n", encoding="utf-8")


def format_table(rows, columns) -> str:
    """Minimal fixed-width table formatter for the experiment reports."""
    widths: Dict[str, int] = {}
    for column in columns:
        widths[column] = max(
            len(str(column)), *(len(_fmt(row.get(column, ""))) for row in rows)
        ) if rows else len(str(column))
    header = "  ".join(f"{column:<{widths[column]}}" for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(f"{_fmt(row.get(column, '')):<{widths[column]}}" for column in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
