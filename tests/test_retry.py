"""Tests for :class:`RetryPolicy` and the fault-tolerant ``map_jobs`` paths.

Covered here: policy validation and deterministic backoff schedules, retry
exhaustion and success-on-retry on every backend, per-job timeouts (serial,
thread, process), fan-out deadlines, and fallback-chain demotion on
:class:`WorkerPoolExhausted`.  Worker-kill scenarios live in
``tests/test_chaos.py`` — they need the chaos harness.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exceptions import ValidationError
from repro.parallel import (
    DEFAULT_MAX_POOL_REBUILDS,
    ExecutionBackend,
    FallbackBackend,
    JobOutcome,
    JobTimeoutError,
    RetryPolicy,
    SerialBackend,
    WorkerPoolExhausted,
    resolve_backend,
)

BACKENDS = ["serial", "thread", "process"]


def _square(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return value * value


def _fail_always(value: int) -> int:
    raise ValueError(f"always fails ({value})")


def _fail_below_threshold(job) -> int:
    """Fails until a sentinel file records enough attempts; cross-process.

    ``job`` is ``(value, token_path, succeed_on_attempt)``: every call
    appends a byte to the token file, and the call only succeeds once the
    file has at least ``succeed_on_attempt`` bytes.
    """
    value, token, succeed_on = job
    with open(token, "ab") as handle:
        handle.write(b"x")
    if os.path.getsize(token) < succeed_on:
        raise RuntimeError(f"flaky failure for {value}")
    return value * value


def _sleep_then_square(job) -> int:
    value, seconds = job
    time.sleep(seconds)
    return value * value


class TestRetryPolicyUnit:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValidationError):
            RetryPolicy(deadline=-2.0)
        with pytest.raises(ValidationError):
            RetryPolicy(max_pool_rebuilds=-1)

    def test_should_retry_budget_and_predicate(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(ValueError("x"), attempts=1)
        assert policy.should_retry(ValueError("x"), attempts=2)
        assert not policy.should_retry(ValueError("x"), attempts=3)

        selective = RetryPolicy(
            max_attempts=5, retryable=lambda exc: isinstance(exc, OSError)
        )
        assert selective.should_retry(OSError("io"), attempts=1)
        assert not selective.should_retry(ValueError("logic"), attempts=1)

    def test_broken_predicate_never_crashes(self):
        def broken(exc):
            raise RuntimeError("predicate bug")

        policy = RetryPolicy(max_attempts=5, retryable=broken)
        assert policy.should_retry(ValueError("x"), attempts=1) is False

    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(
            max_attempts=4, backoff=0.1, backoff_multiplier=2.0, jitter=0.5, seed=7
        )
        # Pure function of (policy, index, attempt): same inputs, same delay.
        first = [policy.backoff_seconds(attempt, index=3) for attempt in (2, 3, 4)]
        second = [policy.backoff_seconds(attempt, index=3) for attempt in (2, 3, 4)]
        assert first == second
        # Exponential base underneath the jitter: delay(a+1) >= 2x base of a.
        assert first[0] >= 0.1 and first[0] <= 0.1 * 1.5
        assert first[1] >= 0.2 and first[1] <= 0.2 * 1.5
        # Different jobs get different jitter (with overwhelming probability
        # for this seed), so retries do not stampede in lockstep.
        other = policy.backoff_seconds(2, index=4)
        assert other != first[0]

    def test_no_backoff_before_second_attempt(self):
        policy = RetryPolicy(backoff=1.0)
        assert policy.backoff_seconds(1, index=0) == 0.0

    def test_policy_is_frozen_and_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.max_pool_rebuilds == DEFAULT_MAX_POOL_REBUILDS
        with pytest.raises(Exception):
            policy.max_attempts = 5  # type: ignore[misc]

    def test_job_outcome_fault_fields_default(self):
        # Pickle/JSON compat: old-style construction still works and the new
        # fields default to the single-attempt story.
        outcome = JobOutcome(index=0, value=1, error=None, duration_seconds=0.0)
        assert outcome.attempts == 1
        assert outcome.retried is False
        assert outcome.timed_out is False


class TestRetryOnBackends:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_exhaustion_records_attempts(self, name):
        policy = RetryPolicy(max_attempts=3)
        with resolve_backend(name, 2) as backend:
            outcomes = backend.map_jobs(_fail_always, [1, 2], retry=policy)
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.attempts == 3
            assert outcome.retried is True
            assert isinstance(outcome.exception, ValueError)
        assert backend.attempts >= 6

    @pytest.mark.parametrize("name", BACKENDS)
    def test_success_on_retry(self, name, tmp_path):
        policy = RetryPolicy(max_attempts=3)
        jobs = [
            (value, str(tmp_path / f"{name}-{value}.token"), 2) for value in (2, 5)
        ]
        with resolve_backend(name, 2) as backend:
            outcomes = backend.map_jobs(_fail_below_threshold, jobs, retry=policy)
        for outcome, (value, _, _) in zip(outcomes, jobs):
            assert outcome.ok, outcome.error
            assert outcome.value == value * value
            assert outcome.attempts == 2
            assert outcome.retried is True

    @pytest.mark.parametrize("name", BACKENDS)
    def test_non_retryable_fails_once(self, name):
        policy = RetryPolicy(
            max_attempts=5, retryable=lambda exc: isinstance(exc, OSError)
        )
        with resolve_backend(name, 2) as backend:
            outcomes = backend.map_jobs(_fail_always, [1], retry=policy)
        assert outcomes[0].attempts == 1
        assert outcomes[0].retried is False

    @pytest.mark.parametrize("name", BACKENDS)
    def test_no_policy_keeps_single_attempt_contract(self, name):
        with resolve_backend(name, 2) as backend:
            outcomes = backend.map_jobs(_fail_always, [1, 2])
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.attempts == 1
            assert outcome.retried is False


class TestTimeouts:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_per_job_timeout(self, name):
        policy = RetryPolicy(max_attempts=1, timeout=0.2)
        jobs = [(1, 0.0), (2, 30.0), (3, 0.0)]
        start = time.monotonic()
        with resolve_backend(name, 2) as backend:
            outcomes = backend.map_jobs(_sleep_then_square, jobs, retry=policy)
        elapsed = time.monotonic() - start
        assert elapsed < 20.0, "watchdog failed to abandon the hung job"
        assert outcomes[0].ok and outcomes[0].value == 1
        assert outcomes[2].ok and outcomes[2].value == 9
        hung = outcomes[1]
        assert not hung.ok
        assert hung.timed_out is True
        assert isinstance(hung.exception, JobTimeoutError)
        assert backend.timeouts >= 1

    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_deadline_drains_remaining_jobs(self, name):
        policy = RetryPolicy(max_attempts=1, deadline=0.3)
        jobs = [(index, 0.25) for index in range(8)]
        start = time.monotonic()
        with resolve_backend(name, 2) as backend:
            outcomes = backend.map_jobs(_sleep_then_square, jobs, retry=policy)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0
        assert len(outcomes) == 8
        timed_out = [outcome for outcome in outcomes if outcome.timed_out]
        assert timed_out, "a 0.3 s deadline must expire over 2 s of sleeps"
        for outcome in timed_out:
            assert isinstance(outcome.exception, JobTimeoutError)


class _ExhaustedBackend(ExecutionBackend):
    """A backend whose every outcome reports an exhausted worker pool."""

    name = "exhausted"

    def __init__(self):
        self.calls = 0

    def map_jobs(self, fn, jobs, *, on_result=None, retry=None):
        self.calls += 1
        exhausted = WorkerPoolExhausted("synthetic exhaustion")
        outcomes = [
            JobOutcome(
                index=index,
                value=None,
                error=f"{type(exhausted).__name__}: {exhausted}",
                exception=exhausted,
                duration_seconds=0.0,
            )
            for index, _ in enumerate(jobs)
        ]
        for outcome in outcomes:
            if on_result is not None:
                on_result(outcome)
        return outcomes


class TestFallbackChain:
    def test_requires_two_members(self):
        with pytest.raises(ValidationError):
            FallbackBackend([SerialBackend()])

    def test_demotes_on_exhaustion_and_sticks(self):
        primary = _ExhaustedBackend()
        chain = FallbackBackend([primary, SerialBackend()])
        outcomes = chain.map_jobs(_square, [1, 2, 3])
        assert [outcome.value for outcome in outcomes] == [1, 4, 9]
        assert chain.active_index == 1
        assert len(chain.demotions) == 1
        assert chain.demotions[0]["from"] == "exhausted"
        # Demotion is sticky: the dead primary is not retried next fan-out.
        chain.map_jobs(_square, [4])
        assert primary.calls == 1

    def test_on_result_not_replayed_from_failed_member(self):
        seen = []
        chain = FallbackBackend([_ExhaustedBackend(), SerialBackend()])
        chain.map_jobs(_square, [2, 3], on_result=seen.append)
        # Only the accepted (serial) run's outcomes reach the callback, in
        # submission order — the exhausted member's outcomes are discarded.
        assert [outcome.value for outcome in seen] == [4, 9]

    def test_demotion_logs_structured_warning(self, caplog):
        import logging

        chain = FallbackBackend([_ExhaustedBackend(), SerialBackend()])
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            chain.map_jobs(_square, [1])
        assert any("demot" in record.message for record in caplog.records)

    def test_final_member_exhaustion_is_returned(self):
        chain = FallbackBackend([_ExhaustedBackend(), _ExhaustedBackend()])
        outcomes = chain.map_jobs(_square, [1])
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].exception, WorkerPoolExhausted)


class TestResolveBackendIntegration:
    def test_retry_installed_as_instance_default(self):
        policy = RetryPolicy(max_attempts=2)
        backend = resolve_backend("serial", retry=policy)
        assert backend.retry is policy
        outcomes = backend.map_jobs(_fail_always, [1])
        assert outcomes[0].attempts == 2

    def test_fallback_spec_builds_chain(self):
        backend = resolve_backend("thread", 2, fallback="serial")
        try:
            assert isinstance(backend, FallbackBackend)
            assert [member.name for member in backend.backends] == [
                "thread",
                "serial",
            ]
        finally:
            backend.close()

    def test_fallback_sequence_spec(self):
        backend = resolve_backend("process", 2, fallback=("thread", "serial"))
        try:
            assert isinstance(backend, FallbackBackend)
            assert [member.name for member in backend.backends] == [
                "process",
                "thread",
                "serial",
            ]
        finally:
            backend.close()

    def test_per_call_retry_overrides_instance_default(self):
        backend = resolve_backend("serial", retry=RetryPolicy(max_attempts=4))
        outcomes = backend.map_jobs(
            _fail_always, [1], retry=RetryPolicy(max_attempts=2)
        )
        assert outcomes[0].attempts == 2
