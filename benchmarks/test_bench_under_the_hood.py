"""E5 — Under-the-hood frame / Scenario 3 (Fig. 3, frame 4).

Regenerates the three panels of the frame for one dataset per family:

* 4.1 — the length-selection curves W_c(ℓ), W_e(ℓ), W_c·W_e and the selected
  length ¯ℓ,
* 4.2 — the dimensions and sparsity of the feature matrix of the selected
  graph,
* 4.3 — the block structure of the consensus matrix (mean co-association
  within vs across final clusters).
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_utils import bench_catalogue, format_table, report
from repro.core.kgraph import KGraph

DATASETS = ("cylinder_bell_funnel", "seasonal_mixture", "random_walk_regimes")


def _run_under_the_hood():
    catalogue = bench_catalogue()
    length_rows, matrix_rows = [], []
    for name in DATASETS:
        dataset = catalogue.get(name).generate(random_state=3)
        model = KGraph(n_clusters=dataset.n_classes, n_lengths=4, random_state=3)
        model.fit(dataset.data)
        result = model.result_

        for score in result.length_scores:
            length_rows.append(
                {
                    "dataset": name,
                    "length": score.length,
                    "W_c": score.consistency,
                    "W_e": score.interpretability,
                    "W_c*W_e": score.combined,
                    "selected": "yes" if score.length == result.optimal_length else "",
                }
            )

        partition = result.partition_for(result.optimal_length)
        features = partition.feature_matrix
        labels = result.labels
        consensus = result.consensus_matrix
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        within = float(consensus[same].mean()) if same.any() else float("nan")
        across = float(consensus[~same & ~np.eye(len(labels), dtype=bool)].mean())
        matrix_rows.append(
            {
                "dataset": name,
                "optimal_length": result.optimal_length,
                "feature_rows": features.shape[0],
                "feature_cols": features.shape[1],
                "feature_sparsity": float((features == 0).mean()),
                "consensus_within": within,
                "consensus_across": across,
            }
        )
    return length_rows, matrix_rows


@pytest.mark.benchmark(group="E5-under-the-hood")
def test_bench_under_the_hood(benchmark):
    length_rows, matrix_rows = benchmark.pedantic(_run_under_the_hood, rounds=1, iterations=1)
    sections = [
        "--- 4.1 length selection (W_c, W_e and the selected length) ---\n"
        + format_table(length_rows, ["dataset", "length", "W_c", "W_e", "W_c*W_e", "selected"]),
        "--- 4.2 feature matrix and 4.3 consensus matrix ---\n"
        + format_table(
            matrix_rows,
            [
                "dataset",
                "optimal_length",
                "feature_rows",
                "feature_cols",
                "feature_sparsity",
                "consensus_within",
                "consensus_across",
            ],
        ),
        "Paper expectation: the selected length maximises W_c*W_e and the consensus "
        "matrix shows a block structure (within-cluster co-association >> across).",
    ]
    report("E5: Under-the-hood frame", "\n\n".join(sections))
    benchmark.extra_info["datasets"] = [row["dataset"] for row in matrix_rows]
    # Shape assertions: block structure and argmax selection.
    for row in matrix_rows:
        assert row["consensus_within"] > row["consensus_across"]
    for dataset in {row["dataset"] for row in length_rows}:
        rows = [row for row in length_rows if row["dataset"] == dataset]
        best = max(rows, key=lambda r: r["W_c*W_e"])
        selected = next(row for row in rows if row["selected"] == "yes")
        assert selected["W_c*W_e"] == pytest.approx(best["W_c*W_e"])
