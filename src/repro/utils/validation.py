"""Input validation helpers shared by every estimator in the library.

The goal is to fail early with a :class:`repro.exceptions.ValidationError`
carrying a readable message, instead of letting NumPy broadcast errors
surface deep inside an algorithm.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ValidationError

ArrayLike = Union[np.ndarray, Sequence[float], Sequence[Sequence[float]]]


def check_random_state(seed: Union[None, int, np.random.Generator]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValidationError(f"random seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"random_state must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def check_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) when not inclusive)."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a float in [0, 1], got {value!r}") from exc
    if np.isnan(value):
        raise ValidationError(f"{name} must not be NaN")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must be in (0, 1), got {value}")
    return value


def _ragged_row_lengths(data) -> Optional[list]:
    """Distinct row lengths of a sequence-of-sequences, or ``None``.

    Used to turn the opaque "could not broadcast" conversion failure of a
    ragged dataset into an actionable message naming the offending lengths.
    """
    if isinstance(data, np.ndarray) or isinstance(data, (str, bytes)):
        return None
    try:
        rows = list(data)
    except TypeError:
        return None
    lengths = set()
    for row in rows:
        if isinstance(row, (str, bytes)):
            return None
        try:
            lengths.add(len(row))
        except TypeError:
            return None
    distinct = sorted(lengths)
    return distinct if len(distinct) > 1 else None


def check_array(
    data: ArrayLike,
    *,
    name: str = "X",
    ndim: Optional[int] = None,
    min_rows: int = 1,
    min_cols: int = 1,
    allow_nan: bool = False,
    dtype: type = float,
) -> np.ndarray:
    """Convert ``data`` to a contiguous ndarray and validate its shape.

    Parameters
    ----------
    data:
        Anything convertible to a numeric ndarray.
    ndim:
        Required number of dimensions (1 or 2).  ``None`` accepts both.
    min_rows, min_cols:
        Minimum size along the first / second axis (second only if 2-D).
    allow_nan:
        When ``False`` (default) any NaN or infinite value is rejected
        with a message locating the first offending value.
    """
    try:
        array = np.asarray(data, dtype=dtype)
    except (TypeError, ValueError) as exc:
        ragged = _ragged_row_lengths(data)
        if ragged is not None:
            raise ValidationError(
                f"{name} is ragged: series have differing lengths "
                f"{ragged[:8]}; every series must share one length "
                "(truncate or pad the data before fitting)"
            ) from exc
        raise ValidationError(f"{name} could not be converted to a numeric array: {exc}") from exc
    if array.dtype == object:
        # Older NumPy built an object array from ragged input instead of
        # raising; normalise both eras to the same actionable error.
        ragged = _ragged_row_lengths(data)
        if ragged is not None:
            raise ValidationError(
                f"{name} is ragged: series have differing lengths "
                f"{ragged[:8]}; every series must share one length "
                "(truncate or pad the data before fitting)"
            )
        raise ValidationError(f"{name} could not be converted to a numeric array")

    if array.ndim == 0:
        raise ValidationError(f"{name} must be at least 1-dimensional, got a scalar")
    if ndim is not None and array.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got ndim={array.ndim}")
    if array.ndim > 2:
        raise ValidationError(f"{name} must be 1- or 2-dimensional, got ndim={array.ndim}")

    if array.shape[0] < min_rows:
        raise ValidationError(
            f"{name} must have at least {min_rows} rows, got {array.shape[0]}"
        )
    if array.ndim == 2 and array.shape[1] < min_cols:
        raise ValidationError(
            f"{name} must have at least {min_cols} columns, got {array.shape[1]}"
        )

    if not allow_nan:
        finite = np.isfinite(array)
        if not finite.all():
            bad = np.argwhere(~finite)
            first = bad[0]
            where = (
                f"series {int(first[0])}, position {int(first[1])}"
                if array.ndim == 2
                else f"position {int(first[0])}"
            )
            raise ValidationError(
                f"{name} contains {int(bad.shape[0])} NaN or infinite "
                f"value(s) (first at {where}); clean or impute the data first"
            )
    return np.ascontiguousarray(array)


def check_labels(labels: Iterable, *, name: str = "labels", n_samples: Optional[int] = None) -> np.ndarray:
    """Validate a 1-D integer label vector and return it as an int ndarray."""
    array = np.asarray(list(labels) if not isinstance(labels, np.ndarray) else labels)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got ndim={array.ndim}")
    if array.shape[0] == 0:
        raise ValidationError(f"{name} must not be empty")
    if n_samples is not None and array.shape[0] != n_samples:
        raise ValidationError(
            f"{name} has {array.shape[0]} entries but {n_samples} samples were expected"
        )
    if array.dtype.kind == "f":
        if not np.all(np.isfinite(array)):
            raise ValidationError(f"{name} contains NaN or infinite values")
        if not np.all(array == np.round(array)):
            raise ValidationError(f"{name} must contain integer-valued labels")
        array = array.astype(int)
    elif array.dtype.kind in "iu":
        array = array.astype(int)
    else:
        # Map arbitrary hashable labels (strings etc.) to dense integer codes.
        _, array = np.unique(array, return_inverse=True)
    return array


def check_time_series_dataset(
    data: ArrayLike,
    *,
    name: str = "X",
    min_series: int = 2,
    min_length: int = 3,
) -> np.ndarray:
    """Validate an equal-length time series dataset of shape (n_series, length)."""
    array = check_array(data, name=name, min_rows=min_series)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.shape[0] < min_series:
        raise ValidationError(
            f"{name} must contain at least {min_series} time series, got {array.shape[0]}"
        )
    if array.shape[1] < min_length:
        raise ValidationError(
            f"time series in {name} must have length >= {min_length}, got {array.shape[1]}"
        )
    return array


def check_consistent_length(*arrays: np.ndarray) -> None:
    """Raise if the given arrays do not share the same first-axis length."""
    lengths = {np.asarray(a).shape[0] for a in arrays if a is not None}
    if len(lengths) > 1:
        raise ValidationError(f"inconsistent first-axis lengths: {sorted(lengths)}")
