"""Unit tests for the synthetic dataset generators, catalogue and UCR loader."""

import numpy as np
import pytest

from repro.datasets import (
    default_catalogue,
    generate_dataset,
    list_dataset_names,
    load_ucr_dataset,
    parse_ucr_lines,
    save_ucr_dataset,
)
from repro.datasets.catalogue import DatasetCatalogue, DatasetSpec
from repro.datasets.synthetic import (
    make_cylinder_bell_funnel,
    make_mixed_bag,
    make_noise_only,
    make_shapelet_classes,
    make_two_patterns,
)
from repro.exceptions import DatasetError
from repro.features.bank import extract_features
from repro.metrics.clustering import adjusted_rand_index


class TestSyntheticGenerators:
    @pytest.mark.parametrize("name", [
        "cylinder_bell_funnel",
        "two_patterns",
        "gun_point_like",
        "sine_families",
        "seasonal_mixture",
        "trend_classes",
        "random_walk_regimes",
        "shapelet_classes",
        "spiky_patterns",
        "mixed_bag",
        "noise_only",
    ])
    def test_every_catalogue_dataset_matches_its_spec(self, name):
        spec = default_catalogue().get(name)
        dataset = spec.generate(random_state=0)
        assert dataset.n_series == spec.n_series
        assert dataset.length == spec.length
        assert dataset.n_classes == spec.n_classes
        assert dataset.has_labels
        assert np.all(np.isfinite(dataset.data))

    def test_generators_are_deterministic(self):
        a = make_two_patterns(n_series=20, length=64, random_state=5)
        b = make_two_patterns(n_series=20, length=64, random_state=5)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_cylinder_bell_funnel(n_series=12, length=64, random_state=0)
        b = make_cylinder_bell_funnel(n_series=12, length=64, random_state=1)
        assert not np.array_equal(a.data, b.data)

    def test_classes_balanced(self):
        dataset = make_mixed_bag(n_series=82, length=64, random_state=0)
        counts = list(dataset.class_counts().values())
        assert max(counts) - min(counts) <= 1

    def test_classes_are_separable(self):
        # A nearest-centroid classifier in feature space should do far better
        # than chance on pattern datasets; this guards against degenerate
        # generators that produce indistinguishable classes.
        dataset = make_shapelet_classes(n_series=30, length=96, noise=0.2, random_state=0)
        features = extract_features(dataset.data)
        labels = dataset.labels
        centroids = np.vstack([features[labels == c].mean(axis=0) for c in np.unique(labels)])
        assigned = np.argmin(
            np.linalg.norm(features[:, None, :] - centroids[None, :, :], axis=2), axis=1
        )
        assert adjusted_rand_index(labels, assigned) > 0.3

    def test_noise_only_has_no_structure(self):
        dataset = make_noise_only(n_series=30, length=64, random_state=0)
        # Labels are random: the per-class means must be statistically identical.
        means = [dataset.series_of_class(c).mean() for c in range(dataset.n_classes)]
        assert abs(means[0] - means[1]) < 0.5

    def test_too_few_series_rejected(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            make_two_patterns(n_series=2, length=64)

    def test_negative_noise_rejected(self):
        with pytest.raises(DatasetError):
            make_cylinder_bell_funnel(n_series=12, length=64, noise=-0.1)


class TestCatalogue:
    def test_default_catalogue_size(self):
        catalogue = default_catalogue()
        assert len(catalogue) >= 10
        assert list_dataset_names() == catalogue.names()

    def test_generate_dataset_by_name(self):
        dataset = generate_dataset("trend_classes", random_state=1)
        assert dataset.name == "trend_classes"

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            generate_dataset("does_not_exist")

    def test_filtering(self):
        catalogue = default_catalogue()
        shape_only = catalogue.filter(dataset_type="synthetic-shape")
        assert all(spec.dataset_type == "synthetic-shape" for spec in shape_only)
        assert len(shape_only) >= 2
        two_class = catalogue.filter(min_classes=2, max_classes=2)
        assert all(spec.n_classes == 2 for spec in two_class)
        long_series = catalogue.filter(min_length=140)
        assert all(spec.length >= 140 for spec in long_series)

    def test_summary_rows(self):
        rows = default_catalogue().summary_rows()
        assert {"name", "type", "n_series", "length", "n_classes"} <= set(rows[0])

    def test_duplicate_registration_rejected(self):
        catalogue = DatasetCatalogue()
        spec = DatasetSpec(
            name="x",
            generator=lambda random_state=None, n_series=10, length=32: make_two_patterns(
                n_series=n_series, length=length, random_state=random_state
            ),
            dataset_type="t",
            n_series=10,
            length=32,
            n_classes=4,
        )
        catalogue.register(spec)
        with pytest.raises(DatasetError):
            catalogue.register(spec)

    def test_spec_shape_mismatch_detected(self):
        spec = DatasetSpec(
            name="broken",
            generator=lambda random_state=None, n_series=10, length=32: make_two_patterns(
                n_series=12, length=64, random_state=random_state
            ),
            dataset_type="t",
            n_series=10,
            length=32,
            n_classes=4,
        )
        with pytest.raises(DatasetError):
            spec.generate()


class TestUCRFormat:
    def test_parse_tab_separated(self):
        lines = ["1\t0.1\t0.2\t0.3\t0.4", "2\t1.0\t1.1\t1.2\t1.3"]
        dataset = parse_ucr_lines(lines, name="demo")
        assert dataset.n_series == 2
        assert dataset.length == 4
        assert dataset.n_classes == 2

    def test_parse_comma_and_whitespace(self):
        comma = parse_ucr_lines(["1,0.0,1.0,2.0,3.0"])
        space = parse_ucr_lines(["1 0.0 1.0 2.0 3.0"])
        assert np.array_equal(comma.data, space.data)

    def test_blank_lines_skipped(self):
        dataset = parse_ucr_lines(["", "1\t1\t2\t3\t4", "   ", "2\t4\t3\t2\t1"])
        assert dataset.n_series == 2

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(DatasetError):
            parse_ucr_lines(["1\t1\t2\t3\t4", "2\t1\t2\t3"])

    def test_non_numeric_rejected(self):
        with pytest.raises(DatasetError):
            parse_ucr_lines(["1\ta\tb\tc\td"])

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            parse_ucr_lines([])

    def test_roundtrip_via_files(self, tmp_path, small_dataset):
        path = tmp_path / "train.tsv"
        save_ucr_dataset(small_dataset, path)
        loaded = load_ucr_dataset(path, name="roundtrip")
        assert loaded.n_series == small_dataset.n_series
        assert loaded.length == small_dataset.length
        assert np.allclose(loaded.data, small_dataset.data, atol=1e-5)
        assert adjusted_rand_index(loaded.labels, small_dataset.labels) == pytest.approx(1.0)

    def test_train_test_concatenation(self, tmp_path, small_dataset):
        train, test = small_dataset.train_test_split(0.3, random_state=0)
        train_path = save_ucr_dataset(train, tmp_path / "d_TRAIN.tsv")
        test_path = save_ucr_dataset(test, tmp_path / "d_TEST.tsv")
        combined = load_ucr_dataset(train_path, test_path=test_path)
        assert combined.n_series == small_dataset.n_series

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_ucr_dataset(tmp_path / "missing.tsv")

    def test_save_requires_labels(self, tmp_path):
        from repro.utils.containers import TimeSeriesDataset

        unlabelled = TimeSeriesDataset(data=np.zeros((3, 8)))
        with pytest.raises(DatasetError):
            save_ucr_dataset(unlabelled, tmp_path / "x.tsv")
