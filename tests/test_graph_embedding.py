"""Unit tests for the graph-embedding step."""

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError
from repro.graph.embedding import GraphEmbedding, build_graph
from repro.utils.windows import subsequence_count


class TestGraphEmbedding:
    def test_basic_properties(self, small_dataset):
        graph = build_graph(small_dataset.data, length=16, random_state=0)
        assert graph.length == 16
        assert graph.n_series == small_dataset.n_series
        assert graph.n_nodes >= 2
        assert graph.n_edges >= 1

    def test_every_series_has_a_trajectory(self, small_dataset):
        graph = build_graph(small_dataset.data, length=16, random_state=0)
        expected_length = subsequence_count(small_dataset.length, 16)
        for series_index in range(small_dataset.n_series):
            trajectory = graph.trajectory(series_index)
            assert len(trajectory) == expected_length

    def test_total_visits_equals_total_subsequences(self, small_dataset):
        graph = build_graph(small_dataset.data, length=16, random_state=0)
        expected = small_dataset.n_series * subsequence_count(small_dataset.length, 16)
        total_visits = sum(graph.node_weight(node) for node in graph.nodes())
        assert total_visits == expected

    def test_total_transitions(self, small_dataset):
        graph = build_graph(small_dataset.data, length=16, random_state=0)
        per_series = subsequence_count(small_dataset.length, 16) - 1
        expected = small_dataset.n_series * per_series
        total = sum(graph.edge_weight(edge) for edge in graph.edges())
        assert total == expected

    def test_stride_reduces_graph_weight(self, small_dataset):
        dense = build_graph(small_dataset.data, length=16, random_state=0)
        strided = GraphEmbedding(16, stride=4, random_state=0).fit(small_dataset.data)
        dense_weight = sum(dense.node_weight(n) for n in dense.nodes())
        strided_weight = sum(strided.node_weight(n) for n in strided.nodes())
        assert strided_weight < dense_weight

    def test_node_patterns_have_window_length(self, small_dataset):
        graph = build_graph(small_dataset.data, length=12, random_state=0)
        for node in graph.nodes():
            assert graph.node_pattern(node).shape == (12,)

    def test_deterministic(self, small_dataset):
        a = build_graph(small_dataset.data, length=16, random_state=3)
        b = build_graph(small_dataset.data, length=16, random_state=3)
        assert a.n_nodes == b.n_nodes
        assert a.edges() == b.edges()
        assert np.array_equal(a.node_feature_matrix(), b.node_feature_matrix())

    def test_more_sectors_more_nodes(self, small_dataset):
        coarse = GraphEmbedding(16, n_sectors=4, random_state=0).fit(small_dataset.data)
        fine = GraphEmbedding(16, n_sectors=32, random_state=0).fit(small_dataset.data)
        assert fine.n_nodes >= coarse.n_nodes

    def test_window_too_long_rejected(self, small_dataset):
        with pytest.raises(GraphConstructionError):
            build_graph(small_dataset.data, length=small_dataset.length)

    def test_invalid_prominence(self):
        with pytest.raises(GraphConstructionError):
            GraphEmbedding(8, min_prominence_fraction=1.5)

    def test_constant_dataset_still_builds(self):
        data = np.tile(np.linspace(0, 1, 64), (6, 1))
        graph = build_graph(data, length=8, random_state=0)
        assert graph.n_nodes >= 1

    def test_different_classes_use_different_regions(self, small_dataset):
        # Series from different classes should not have identical node usage
        # patterns: the normalised node feature rows must differ across classes
        # more than within (on average).
        graph = build_graph(small_dataset.data, length=16, random_state=0)
        features = graph.node_feature_matrix()
        labels = small_dataset.labels
        within, across = [], []
        for i in range(features.shape[0]):
            for j in range(i + 1, features.shape[0]):
                distance = float(np.linalg.norm(features[i] - features[j]))
                (within if labels[i] == labels[j] else across).append(distance)
        assert np.mean(across) > np.mean(within)
