"""The :class:`Pipeline` executor: a validated DAG of cacheable stages.

``Pipeline.run`` executes its stages in declaration order (which the
constructor proves is a valid topological order of the declared
input/output dependencies), timing each stage under ``stage:<name>`` and —
when a :class:`~repro.pipeline.cache.StageCache` is supplied — replaying
checkpointed outputs instead of re-executing stages whose content-addressed
key is unchanged.  The returned :class:`PipelineReport` records, per stage,
the cache key, whether it executed or replayed, and its wall-clock seconds;
the report is what tests assert resumability against and what the serving
manifest embeds (schema v2).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import PipelineError
from repro.pipeline.cache import CacheEntryMeta, StageCache
from repro.pipeline.fingerprint import fingerprint
from repro.pipeline.stage import PipelineContext, Stage


@dataclass
class StageRecord:
    """What one stage did during one :meth:`Pipeline.run`."""

    name: str
    key: str
    cached: bool
    seconds: float
    outputs: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "key": self.key,
            "cached": self.cached,
            "seconds": float(self.seconds),
            "outputs": list(self.outputs),
        }


@dataclass
class PipelineReport:
    """Per-stage outcome of one pipeline run (the resumability ledger)."""

    records: List[StageRecord] = field(default_factory=list)
    config_hash: str = ""

    @property
    def executed(self) -> List[str]:
        """Names of the stages that actually ran."""
        return [record.name for record in self.records if not record.cached]

    @property
    def cached(self) -> List[str]:
        """Names of the stages replayed from the cache."""
        return [record.name for record in self.records if record.cached]

    @property
    def stage_keys(self) -> Dict[str, str]:
        """Mapping stage name -> content-addressed cache key."""
        return {record.name: record.key for record in self.records}

    def record_for(self, name: str) -> StageRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise PipelineError(f"no stage named {name!r} in this report")

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (embedded in the model-artifact manifest)."""
        return {
            "config_hash": self.config_hash,
            "stages": [record.as_dict() for record in self.records],
        }


class Pipeline:
    """An ordered DAG of :class:`Stage` objects with checkpoint/resume.

    The constructor validates the wiring once:

    * stage names are unique;
    * no two stages produce the same value;
    * every stage input is either a seed value (named in ``seed_inputs``)
      or the output of an *earlier* stage — i.e. the declaration order is a
      topological order of the dependency DAG.

    ``run`` then never needs to guess: a malformed pipeline fails at
    construction, not three stages into an expensive fit.
    """

    def __init__(self, stages: Sequence[Stage], *, seed_inputs: Sequence[str] = ()) -> None:
        stages = list(stages)
        if not stages:
            raise PipelineError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate stage names: {sorted(names)}")
        available = set(seed_inputs)
        for stage in stages:
            missing = [name for name in stage.inputs if name not in available]
            if missing:
                raise PipelineError(
                    f"stage {stage.name!r} consumes {missing} but no earlier "
                    f"stage or seed input produces them (available: "
                    f"{sorted(available)})"
                )
            clashes = [name for name in stage.outputs if name in available]
            if clashes:
                raise PipelineError(
                    f"stage {stage.name!r} re-produces already available "
                    f"values {clashes}; every value must have one producer"
                )
            available.update(stage.outputs)
        self.stages = stages
        self.seed_inputs = tuple(seed_inputs)
        #: Total executions per stage name across every run of this
        #: instance (cache replays are *not* counted — these are the
        #: stage-run counters the resume tests assert on).
        self.run_counts: Dict[str, int] = {name: 0 for name in names}

    # ------------------------------------------------------------------ #
    def stage_key(
        self,
        stage: Stage,
        ctx: PipelineContext,
        _fingerprint: "Callable[[object], str]" = fingerprint,
    ) -> str:
        """Content-addressed cache key of ``stage`` in the current context."""
        digest = hashlib.sha256()
        digest.update(f"stage:{stage.name}:v{stage.version};".encode())
        for key in stage.config_keys:
            digest.update(f"config:{key}=".encode())
            digest.update(fingerprint(ctx.config.get(key)).encode())
        for name in stage.inputs:
            digest.update(f"input:{name}=".encode())
            digest.update(_fingerprint(ctx.require(name)).encode())
        return digest.hexdigest()

    def run(
        self,
        ctx: PipelineContext,
        *,
        cache: Optional[StageCache] = None,
        config_hash: Optional[str] = None,
    ) -> PipelineReport:
        """Execute every stage (or replay its checkpoint) and report.

        ``config_hash`` lets the driver stamp the report (and hence serve
        manifests) with a canonical config identity — e.g. the typed
        :meth:`repro.api.EstimatorConfig.config_hash` — instead of the
        ad-hoc fingerprint of the stages' config subset used as fallback.
        """
        missing_seed = [name for name in self.seed_inputs if name not in ctx.values]
        if missing_seed:
            raise PipelineError(
                f"pipeline seed inputs {missing_seed} are missing from the context"
            )
        if config_hash is None:
            config_hash = fingerprint(
                {key: ctx.config.get(key) for stage in self.stages for key in stage.config_keys}
            )
        report = PipelineReport(config_hash=config_hash)
        # Per-run fingerprint memo: a value consumed by several stages (the
        # graphs feed graph_cluster, length_selection AND interpretability)
        # is hashed once, not once per consumer.  Keyed by object identity —
        # sound because stages treat context values as read-only and the
        # stored reference pins the id for the run's lifetime.
        memo: Dict[int, tuple] = {}

        def _memoised_fingerprint(value: object) -> str:
            entry = memo.get(id(value))
            if entry is not None and entry[0] is value:
                return entry[1]
            digest = fingerprint(value)
            memo[id(value)] = (value, digest)
            return digest

        for stage in self.stages:
            key = self.stage_key(stage, ctx, _memoised_fingerprint)
            start = time.perf_counter()
            cached_outputs = cache.get(key) if cache is not None else None
            if cached_outputs is not None:
                with ctx.watch.section(f"stage:{stage.name}"):
                    ctx.values.update(cached_outputs)
                report.records.append(
                    StageRecord(
                        name=stage.name,
                        key=key,
                        cached=True,
                        seconds=time.perf_counter() - start,
                        outputs=sorted(cached_outputs),
                    )
                )
                continue
            with ctx.watch.section(f"stage:{stage.name}"):
                outputs = dict(stage.run(ctx))
            if set(outputs) != set(stage.outputs):
                raise PipelineError(
                    f"stage {stage.name!r} returned outputs {sorted(outputs)} "
                    f"but declared {sorted(stage.outputs)}"
                )
            ctx.values.update(outputs)
            self.run_counts[stage.name] += 1
            seconds = time.perf_counter() - start
            if cache is not None:
                cache.put(
                    key,
                    outputs,
                    CacheEntryMeta(
                        key=key,
                        stage=stage.name,
                        outputs=sorted(outputs),
                        seconds=seconds,
                        created_unix=time.time(),
                    ),
                )
            report.records.append(
                StageRecord(
                    name=stage.name,
                    key=key,
                    cached=False,
                    seconds=seconds,
                    outputs=sorted(outputs),
                )
            )
        return report
