"""Time series distance measures.

Implements the distances used across the paper's method population:

* plain and z-normalised Euclidean distance (k-Means, feature spaces),
* shape-based distance (SBD) built on the normalised cross-correlation,
  which is the core of k-Shape,
* dynamic time warping with an optional Sakoe-Chiba band (used by the
  DTW-based baselines and by the interpretability quiz's "hard" mode).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array
from repro.utils.normalization import znormalize


def euclidean_distance(a, b) -> float:
    """Euclidean distance between two equal-length vectors."""
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    if x.shape[0] != y.shape[0]:
        raise ValidationError(
            f"series must have equal length, got {x.shape[0]} and {y.shape[0]}"
        )
    return float(np.sqrt(np.sum((x - y) ** 2)))


def znormalized_euclidean_distance(a, b) -> float:
    """Euclidean distance between the z-normalised versions of two series."""
    return euclidean_distance(znormalize(a), znormalize(b))


def cross_correlation(a, b) -> np.ndarray:
    """Full normalised cross-correlation sequence (NCCc) between two series.

    Returns an array of length ``2 * n - 1`` whose maximum is reached at the
    shift best aligning ``b`` to ``a``.  Values are normalised by the product
    of the L2 norms so they lie in [-1, 1].
    """
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    if x.shape[0] != y.shape[0]:
        raise ValidationError(
            f"series must have equal length, got {x.shape[0]} and {y.shape[0]}"
        )
    n = x.shape[0]
    # FFT-based correlation: pad to the next power of two >= 2n-1 for speed.
    size = 1 << int(np.ceil(np.log2(2 * n - 1)))
    fx = np.fft.rfft(x, size)
    fy = np.fft.rfft(y, size)
    cc = np.fft.irfft(fx * np.conj(fy), size)
    # Rearrange so index 0 corresponds to shift -(n-1) and 2n-2 to +(n-1).
    cc = np.concatenate([cc[-(n - 1):], cc[:n]]) if n > 1 else cc[:1]
    denom = float(np.linalg.norm(x) * np.linalg.norm(y))
    if denom < 1e-12:
        return np.zeros(2 * n - 1)
    return cc / denom


def sbd_distance(a, b, return_shift: bool = False):
    """Shape-based distance: ``1 - max(NCCc(a, b))``.

    This is the distance at the heart of k-Shape; it is shift-invariant and
    lies in [0, 2].  When ``return_shift`` is true, also return the shift (in
    samples) that maximises the cross-correlation, which k-Shape uses to align
    members before extracting a new centroid.
    """
    ncc = cross_correlation(a, b)
    best = int(np.argmax(ncc))
    distance = float(1.0 - ncc[best])
    if not return_shift:
        return distance
    n = (ncc.shape[0] + 1) // 2
    shift = best - (n - 1)
    return distance, int(shift)


def align_by_sbd(reference, series) -> np.ndarray:
    """Shift ``series`` so it best aligns with ``reference`` (zero-padded)."""
    ref = check_array(reference, name="reference", ndim=1)
    ser = check_array(series, name="series", ndim=1)
    _, shift = sbd_distance(ref, ser, return_shift=True)
    n = ser.shape[0]
    aligned = np.zeros(n)
    if shift >= 0:
        aligned[shift:] = ser[: n - shift]
    else:
        aligned[: n + shift] = ser[-shift:]
    return aligned


def dtw_distance(a, b, window: Optional[int] = None) -> float:
    """Dynamic time warping distance with an optional Sakoe-Chiba band.

    Parameters
    ----------
    window:
        Maximum allowed |i - j| misalignment.  ``None`` means unconstrained.
    """
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    n, m = x.shape[0], y.shape[0]
    if window is None:
        band = max(n, m)
    else:
        if window < 0:
            raise ValidationError(f"window must be non-negative, got {window}")
        band = max(int(window), abs(n - m))

    previous = np.full(m + 1, np.inf)
    current = np.full(m + 1, np.inf)
    previous[0] = 0.0
    for i in range(1, n + 1):
        current.fill(np.inf)
        j_start = max(1, i - band)
        j_end = min(m, i + band)
        if j_start == 1:
            current[0] = np.inf
        for j in range(j_start, j_end + 1):
            cost = (x[i - 1] - y[j - 1]) ** 2
            current[j] = cost + min(previous[j], current[j - 1], previous[j - 1])
        previous, current = current, previous
    return float(np.sqrt(previous[m]))


def dtw_path(a, b, window: Optional[int] = None) -> Tuple[float, list]:
    """DTW distance plus the optimal warping path as a list of (i, j) pairs."""
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    n, m = x.shape[0], y.shape[0]
    band = max(n, m) if window is None else max(int(window), abs(n - m))

    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(max(1, i - band), min(m, i + band) + 1):
            cost = (x[i - 1] - y[j - 1]) ** 2
            acc[i, j] = cost + min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])

    path = []
    i, j = n, m
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        step = int(np.argmin([acc[i - 1, j - 1], acc[i - 1, j], acc[i, j - 1]]))
        if step == 0:
            i, j = i - 1, j - 1
        elif step == 1:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return float(np.sqrt(acc[n, m])), path


_METRIC_FUNCTIONS: dict = {
    "euclidean": euclidean_distance,
    "zeuclidean": znormalized_euclidean_distance,
    "sbd": sbd_distance,
    "dtw": dtw_distance,
}


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Look up a distance function by name."""
    key = name.strip().lower()
    if key not in _METRIC_FUNCTIONS:
        raise ValidationError(
            f"unknown metric {name!r}; expected one of {sorted(_METRIC_FUNCTIONS)}"
        )
    return _METRIC_FUNCTIONS[key]


def pairwise_distances(data, metric: str = "euclidean", **metric_kwargs) -> np.ndarray:
    """Symmetric pairwise distance matrix for the rows of ``data``.

    ``metric`` may be ``"euclidean"`` (vectorised fast path), ``"zeuclidean"``,
    ``"sbd"`` or ``"dtw"``.
    """
    array = check_array(data, name="data", ndim=2, min_rows=1)
    n = array.shape[0]
    if metric == "euclidean" and not metric_kwargs:
        squared = np.sum(array**2, axis=1)
        gram = array @ array.T
        dist2 = np.maximum(squared[:, None] + squared[None, :] - 2.0 * gram, 0.0)
        return np.sqrt(dist2)
    func = get_metric(metric)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = func(array[i], array[j], **metric_kwargs)
            if isinstance(value, tuple):
                value = value[0]
            matrix[i, j] = matrix[j, i] = value
    return matrix
