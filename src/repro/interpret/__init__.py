"""Interpretability test (Fig. 3 frame 3 / Demonstration Scenario 1).

The Graphint demo asks a *human* to assign five randomly drawn time series to
clusters, given only each cluster's representation: the centroid for k-Means
and k-Shape, or the cluster's subgraph (graphoid) for k-Graph.  A high score
means the representation is informative, i.e. interpretable.

Without human participants we reproduce the protocol with a **simulated
user**: an agent that, like the demo participant, sees only the cluster
representations and the query series and picks the best-matching cluster.
The relative ordering of methods (does the k-Graph representation let the
user recover assignments better than centroids?) is the quantity the demo
reports, and it is preserved under this substitution (see DESIGN.md).
"""

from repro.interpret.quiz import Quiz, QuizQuestion, build_quiz
from repro.interpret.representations import (
    ClusterRepresentation,
    centroid_representation,
    graphoid_representation,
)
from repro.interpret.user_model import SimulatedUser, score_methods

__all__ = [
    "ClusterRepresentation",
    "Quiz",
    "QuizQuestion",
    "SimulatedUser",
    "build_quiz",
    "centroid_representation",
    "graphoid_representation",
    "score_methods",
]
