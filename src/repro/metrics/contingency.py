"""Contingency tables and pair-counting matrices for partition comparison."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_labels, check_consistent_length


def contingency_matrix(labels_true, labels_pred) -> np.ndarray:
    """Contingency table between two labelings.

    Entry ``(i, j)`` counts the samples with true class ``i`` and predicted
    cluster ``j`` (classes/clusters are indexed by their sorted unique values).
    """
    true = check_labels(labels_true, name="labels_true")
    pred = check_labels(labels_pred, name="labels_pred", n_samples=true.shape[0])
    classes, true_idx = np.unique(true, return_inverse=True)
    clusters, pred_idx = np.unique(pred, return_inverse=True)
    table = np.zeros((classes.size, clusters.size), dtype=np.int64)
    np.add.at(table, (true_idx, pred_idx), 1)
    return table


def pair_confusion_matrix(labels_true, labels_pred) -> np.ndarray:
    """2x2 pair confusion matrix ``[[TN, FP], [FN, TP]]`` over sample pairs.

    Counts are over ordered pairs (each unordered pair counted twice), matching
    the standard definition used to derive the (adjusted) Rand index.
    """
    true = check_labels(labels_true, name="labels_true")
    pred = check_labels(labels_pred, name="labels_pred", n_samples=true.shape[0])
    check_consistent_length(true, pred)
    n = true.shape[0]
    table = contingency_matrix(true, pred).astype(np.float64)
    sum_squares = float(np.sum(table**2))
    row_sums = table.sum(axis=1)
    col_sums = table.sum(axis=0)
    sum_rows_sq = float(np.sum(row_sums**2))
    sum_cols_sq = float(np.sum(col_sums**2))

    tp = sum_squares - n
    fp = sum_cols_sq - sum_squares
    fn = sum_rows_sq - sum_squares
    tn = n**2 - n - tp - fp - fn
    return np.array([[tn, fp], [fn, tp]], dtype=np.int64)


def pair_counts(labels_true, labels_pred) -> Tuple[int, int, int, int]:
    """Return ``(tn, fp, fn, tp)`` over unordered sample pairs."""
    matrix = pair_confusion_matrix(labels_true, labels_pred)
    return (
        int(matrix[0, 0] // 2),
        int(matrix[0, 1] // 2),
        int(matrix[1, 0] // 2),
        int(matrix[1, 1] // 2),
    )
