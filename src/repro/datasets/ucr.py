"""Loader and writer for the UCR archive tab/comma-separated format.

Each line of a UCR file is ``<label> <v1> <v2> ... <vn>`` separated by tabs,
commas or whitespace.  The loader returns a
:class:`repro.utils.TimeSeriesDataset`; the writer produces files the loader
round-trips, which is how the tests exercise this module without the real
archive.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.containers import TimeSeriesDataset


def parse_ucr_lines(lines: Iterable[str], name: str = "ucr") -> TimeSeriesDataset:
    """Parse UCR-format lines into a dataset.

    Lines may be tab-, comma- or whitespace-separated; blank lines are
    skipped.  All series must have the same length; shorter series raise a
    :class:`~repro.exceptions.DatasetError`.
    """
    labels: List[float] = []
    rows: List[np.ndarray] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if "\t" in line:
            parts = line.split("\t")
        elif "," in line:
            parts = line.split(",")
        else:
            parts = line.split()
        if len(parts) < 4:
            raise DatasetError(
                f"line {line_number}: expected a label plus at least 3 values, got {len(parts)} fields"
            )
        try:
            values = np.array([float(p) for p in parts], dtype=float)
        except ValueError as exc:
            raise DatasetError(f"line {line_number}: non-numeric value ({exc})") from exc
        labels.append(values[0])
        rows.append(values[1:])

    if not rows:
        raise DatasetError("no series found in the input")
    lengths = {row.shape[0] for row in rows}
    if len(lengths) != 1:
        raise DatasetError(
            f"series have inconsistent lengths: {sorted(lengths)}; "
            "the loader only supports equal-length UCR datasets"
        )
    data = np.vstack(rows)
    label_array = np.asarray(labels)
    return TimeSeriesDataset(
        data=data,
        labels=label_array,
        name=name,
        dataset_type="ucr",
        metadata={"source": "ucr-format"},
    )


def load_ucr_dataset(
    path: Union[str, Path],
    *,
    test_path: Optional[Union[str, Path]] = None,
    name: Optional[str] = None,
) -> TimeSeriesDataset:
    """Load a UCR-format file (optionally concatenating the TEST split).

    The Graphint tool clusters the union of train and test splits, as is
    standard for unsupervised evaluation on the UCR archive.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        dataset = parse_ucr_lines(handle, name=name or path.stem)

    if test_path is not None:
        test_path = Path(test_path)
        if not test_path.exists():
            raise DatasetError(f"test split file not found: {test_path}")
        with test_path.open("r", encoding="utf-8") as handle:
            test_dataset = parse_ucr_lines(handle, name=dataset.name)
        if test_dataset.length != dataset.length:
            raise DatasetError(
                "train and test splits have different series lengths: "
                f"{dataset.length} vs {test_dataset.length}"
            )
        data = np.vstack([dataset.data, test_dataset.data])
        labels = np.concatenate([dataset.labels, test_dataset.labels])
        dataset = TimeSeriesDataset(
            data=data,
            labels=labels,
            name=dataset.name,
            dataset_type="ucr",
            metadata={"source": "ucr-format", "splits": "train+test"},
        )
    return dataset


def save_ucr_dataset(
    dataset: TimeSeriesDataset,
    path: Union[str, Path],
    *,
    delimiter: str = "\t",
    float_format: str = "%.6f",
) -> Path:
    """Write ``dataset`` in UCR format; returns the written path."""
    if dataset.labels is None:
        raise DatasetError("cannot save a dataset without labels in UCR format")
    if delimiter not in {"\t", ","}:
        raise DatasetError(f"delimiter must be tab or comma, got {delimiter!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for label, row in zip(dataset.labels, dataset.data):
            fields = [str(int(label))] + [float_format % value for value in row]
            handle.write(delimiter.join(fields) + "\n")
    return path
