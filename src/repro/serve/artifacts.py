"""Versioned on-disk artifacts for fitted, servable estimators.

An artifact is a directory with three files:

* ``manifest.json`` — schema version, the estimator's registry name and
  typed config payload, fit metadata, per-length scores/partition
  diagnostics, graphoids, timings, and free-form user metadata.
  Everything a registry needs to *describe* the model without touching
  the heavy payloads.
* ``arrays.npz``    — every numeric array (labels, consensus matrix, node
  patterns, per-length partition labels and feature matrices for k-Graph;
  labels, centroids and cluster ids for baseline estimators), stored
  losslessly so ``load_model(save_model(m)).predict(X)`` is bit-identical
  to ``m.predict(X)``.
* ``graphs.json``   — the structural part of every per-length
  :class:`~repro.graph.structure.TimeSeriesGraph`: nodes with positions and
  visit counts, weighted edges, per-node/per-edge series multisets, and the
  node trajectory of every training series (an empty list for estimators
  without graphs).

The format deliberately avoids pickle: it is inspectable, diffable, safe to
load from untrusted sources, and guarded by the shared schema-version check
(:mod:`repro.utils.schema`) so files written by newer releases fail with an
"upgrade the library" message instead of a parser crash.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import __version__ as _library_version
from repro.api.config import KGraphConfig
from repro.core.graph_clustering import GraphPartition
from repro.core.interpretability import LengthScore
from repro.core.kgraph import KGraph, KGraphResult
from repro.exceptions import ArtifactError, ConfigError, NotFittedError, ValidationError
from repro.graph.graphoid import Graphoid
from repro.graph.structure import TimeSeriesGraph
from repro.utils.schema import check_schema_version

ARTIFACT_FORMAT = "repro-model"
#: Format names of artifacts written by earlier releases; readers accept
#: them unchanged ("kgraph-model" was the v1/v2 era, when only k-Graph
#: could be exported).
LEGACY_ARTIFACT_FORMATS = frozenset({"kgraph-model"})
#: v2 added the optional ``pipeline`` manifest field (the stage pipeline's
#: config hash plus per-stage content-addressed cache keys).  v3 makes the
#: format estimator-generic: the manifest records ``estimator`` (registry
#: name), ``config`` (the typed config payload incl. its own version) and
#: ``config_version``, so any registered estimator with a prediction state
#: can be exported and served.  Readers accept v1/v2 artifacts unchanged —
#: they are k-Graph by definition, reconstructed from the legacy ``params``
#: block (a version-1 config payload).
ARTIFACT_SCHEMA_VERSION = 3

MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.npz"
GRAPHS_FILE = "graphs.json"


# --------------------------------------------------------------------------- #
# serialisation helpers
# --------------------------------------------------------------------------- #
def _graphoid_to_payload(graphoid: Graphoid) -> Dict[str, object]:
    return {
        "cluster": int(graphoid.cluster),
        "kind": graphoid.kind,
        "threshold": float(graphoid.threshold),
        "nodes": [int(node) for node in graphoid.nodes],
        "edges": [[int(source), int(target)] for source, target in graphoid.edges],
        "node_scores": {
            str(node): float(score) for node, score in graphoid.node_scores.items()
        },
        "edge_scores": [
            [int(source), int(target), float(score)]
            for (source, target), score in graphoid.edge_scores.items()
        ],
    }


def _graphoid_from_payload(payload: Dict[str, object]) -> Graphoid:
    return Graphoid(
        cluster=int(payload["cluster"]),
        nodes=[int(node) for node in payload["nodes"]],
        edges=[(int(source), int(target)) for source, target in payload["edges"]],
        node_scores={
            int(node): float(score) for node, score in payload["node_scores"].items()
        },
        edge_scores={
            (int(source), int(target)): float(score)
            for source, target, score in payload["edge_scores"]
        },
        kind=str(payload["kind"]),
        threshold=float(payload["threshold"]),
    )


def _model_params(model: KGraph) -> Dict[str, object]:
    """The legacy flat ``params`` block, derived from the typed config.

    Kept in v3 manifests as a compatibility mirror of ``config`` (humans
    and external tooling diff it); a live Generator seed is already nulled
    by the config layer, which only records integer seeds.
    """
    payload = model.get_config().to_dict()
    payload.pop("version")
    return payload


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #
def _prepare_artifact_dir(path: Union[str, Path]) -> Path:
    """Validate and create the target artifact directory."""
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ArtifactError(f"artifact path {path} exists and is not a directory")
    if path.is_dir():
        expected = {MANIFEST_FILE, MANIFEST_FILE + ".tmp", ARRAYS_FILE, GRAPHS_FILE}
        stray = [p.name for p in path.iterdir() if p.name not in expected]
        if stray:
            raise ArtifactError(
                f"refusing to write artifact into non-empty directory {path} "
                f"(unexpected entries: {sorted(stray)[:5]})"
            )
    path.mkdir(parents=True, exist_ok=True)
    return path


def _write_artifact(
    path: Path,
    manifest: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    graph_payloads: List[Dict[str, object]],
) -> Path:
    """Write payloads first, then the manifest atomically (commit marker).

    A crash mid-save leaves a directory without ``manifest.json``, which
    the registry ignores, instead of a listed-but-unloadable (or
    half-written) model.  For the same reason an overwrite un-commits the
    old artifact first — a stale manifest must never describe
    half-replaced payloads.
    """
    manifest_path = path / MANIFEST_FILE
    if manifest_path.exists():
        manifest_path.unlink()
    with (path / ARRAYS_FILE).open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    with (path / GRAPHS_FILE).open("w", encoding="utf-8") as handle:
        json.dump({"graphs": graph_payloads}, handle, sort_keys=True)
    manifest_tmp = path / (MANIFEST_FILE + ".tmp")
    with manifest_tmp.open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    os.replace(manifest_tmp, manifest_path)
    return path


def _manifest_header(
    model, dataset: Optional[str], metadata: Optional[Dict[str, object]]
) -> Dict[str, object]:
    """The estimator-generic manifest fields every artifact carries."""
    config = model.get_config()
    return {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "library_version": _library_version,
        "created_unix": time.time(),
        "dataset": dataset,
        # Schema v3: the estimator's registry name plus its typed config
        # payload — what makes the artifact loadable (and servable) for any
        # registered estimator, not just k-Graph.
        "estimator": getattr(model, "name", None) or config.config_name,
        "config": config.to_dict(),
        "config_version": int(type(config).version),
        "metadata": dict(metadata) if metadata else {},
    }


def save_model(
    model,
    path: Union[str, Path],
    *,
    dataset: Optional[str] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Persist a fitted estimator as a versioned artifact directory.

    Parameters
    ----------
    model:
        A fitted estimator: a :class:`KGraph`, or any estimator exposing
        the serving contract (``get_config`` plus the ``artifact_arrays``
        / ``artifact_fitted`` payload hooks, e.g.
        :class:`~repro.baselines.estimator.BaselineEstimator`).
    path:
        Target directory (created if needed; existing artifact files are
        overwritten, other existing content is rejected).
    dataset:
        Optional dataset name recorded in the manifest; registries use it to
        shelve the artifact.
    metadata:
        Free-form JSON-serialisable annotations stored under
        ``manifest["metadata"]``.
    """
    if isinstance(model, KGraph):
        return _save_kgraph_model(model, path, dataset=dataset, metadata=metadata)
    if hasattr(model, "get_config") and hasattr(model, "artifact_arrays"):
        return _save_estimator_model(model, path, dataset=dataset, metadata=metadata)
    raise ArtifactError(
        f"cannot save a {type(model).__name__}: not a KGraph and not an "
        "estimator exposing the artifact payload hooks (get_config / "
        "artifact_arrays / artifact_fitted)"
    )


def _save_estimator_model(
    model,
    path: Union[str, Path],
    *,
    dataset: Optional[str] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the generic (non-KGraph) estimator artifact layout."""
    manifest = _manifest_header(model, dataset, metadata)
    # artifact_fitted/artifact_arrays raise NotFittedError on unfitted
    # estimators before anything touches the disk.
    manifest["fitted"] = model.artifact_fitted()
    arrays = model.artifact_arrays()
    path = _prepare_artifact_dir(path)
    return _write_artifact(path, manifest, arrays, graph_payloads=[])


def _save_kgraph_model(
    model: KGraph,
    path: Union[str, Path],
    *,
    dataset: Optional[str] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the full k-Graph artifact layout (graphs, partitions, scores)."""
    if model.result_ is None:
        raise NotFittedError(
            "cannot save an unfitted KGraph; call fit(data) before save_model()"
        )
    result = model.result_
    path = _prepare_artifact_dir(path)

    arrays: Dict[str, np.ndarray] = {
        "labels": result.labels,
        "consensus_matrix": result.consensus_matrix,
    }
    graph_payloads: List[Dict[str, object]] = []
    for length in sorted(result.graphs):
        graph = result.graphs[length]
        graph_payloads.append(graph.to_payload())
        nodes = graph.nodes()
        arrays[f"graph_{length}_patterns"] = (
            np.vstack([graph.node_pattern(node) for node in nodes])
            if nodes
            else np.empty((0, length))
        )
    partition_rows: List[Dict[str, object]] = []
    for partition in result.partitions:
        arrays[f"partition_{partition.length}_labels"] = partition.labels
        arrays[f"partition_{partition.length}_features"] = partition.feature_matrix
        partition_rows.append(
            {
                "length": int(partition.length),
                "inertia": float(partition.inertia),
                "n_nodes": int(partition.n_nodes),
                "n_edges": int(partition.n_edges),
            }
        )

    manifest: Dict[str, object] = {
        **_manifest_header(model, dataset, metadata),
        "params": _model_params(model),
        "fitted": {
            "n_series": int(result.labels.shape[0]),
            "n_clusters": int(result.n_clusters),
            "optimal_length": int(result.optimal_length),
            "lengths": [int(length) for length in sorted(result.graphs)],
        },
        "length_scores": [
            {
                "length": int(score.length),
                "consistency": float(score.consistency),
                "interpretability": float(score.interpretability),
            }
            for score in result.length_scores
        ],
        "partitions": partition_rows,
        "graphoids": {
            "lambda": [
                _graphoid_to_payload(g) for _, g in sorted(result.lambda_graphoids.items())
            ],
            "gamma": [
                _graphoid_to_payload(g) for _, g in sorted(result.gamma_graphoids.items())
            ],
        },
        "timings": {name: float(value) for name, value in result.timings.items()},
        # Schema v2: the provenance ledger of the pipeline-driven fit — which
        # stages ran vs replayed, their content-addressed keys, and the
        # config hash — so registries can tell two models apart (or dedup
        # them) without loading the payloads.
        "pipeline": (
            model.pipeline_report_.as_dict()
            if model.pipeline_report_ is not None
            else None
        ),
    }

    return _write_artifact(path, manifest, arrays, graph_payloads)


def read_manifest(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate the manifest of an artifact directory."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.exists():
        raise ArtifactError(f"{path} is not a model artifact: missing {MANIFEST_FILE}")
    try:
        with manifest_path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"could not read manifest of {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ArtifactError(f"manifest of {path} must be a JSON object")
    found_format = manifest.get("format")
    if found_format != ARTIFACT_FORMAT and found_format not in LEGACY_ARTIFACT_FORMATS:
        raise ArtifactError(
            f"{path} holds format {found_format!r}, expected "
            f"{ARTIFACT_FORMAT!r} (or the legacy {sorted(LEGACY_ARTIFACT_FORMATS)})"
        )
    try:
        check_schema_version(
            manifest.get("schema_version"),
            supported=ARTIFACT_SCHEMA_VERSION,
            context=f"model artifact {path}",
        )
    except ValidationError as exc:
        # The artifact layer's error contract is ArtifactError throughout.
        raise ArtifactError(str(exc)) from exc
    return manifest


def load_model(path: Union[str, Path]):
    """Reconstruct a fitted estimator from an artifact directory.

    Dispatches on the manifest's ``estimator`` field (absent in v1/v2
    artifacts, which are k-Graph by definition).  A loaded k-Graph carries
    the full :class:`KGraphResult` (graphs, partitions, consensus matrix,
    graphoids, scores), so every downstream consumer — ``predict``, the
    Graphint frames, graphoid recomputation — behaves exactly as it does
    on the in-memory original; other estimators are rebuilt from their
    typed config plus their stored prediction payloads.
    """
    path = Path(path)
    manifest = read_manifest(path)
    for required in (ARRAYS_FILE, GRAPHS_FILE):
        if not (path / required).exists():
            raise ArtifactError(f"artifact {path} is incomplete: missing {required}")

    try:
        with np.load(path / ARRAYS_FILE) as payload:
            arrays = {key: payload[key] for key in payload.files}
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"could not read arrays of {path}: {exc}") from exc
    try:
        with (path / GRAPHS_FILE).open("r", encoding="utf-8") as handle:
            graph_payloads = json.load(handle)["graphs"]
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        raise ArtifactError(f"could not read graphs of {path}: {exc}") from exc

    estimator_name = manifest.get("estimator", "kgraph")
    if estimator_name != "kgraph":
        return _load_estimator_model(path, estimator_name, manifest, arrays)
    return _load_kgraph_model(path, manifest, arrays, graph_payloads)


def _load_estimator_model(
    path: Path,
    estimator_name: str,
    manifest: Dict[str, object],
    arrays: Dict[str, np.ndarray],
):
    """Rebuild a non-KGraph estimator from its config + stored payloads.

    Dispatches through the estimator registry — the spec provides the
    config class and factory, the built estimator's ``restore_artifact``
    hook rehydrates the fitted state — so any *registered* estimator
    (including ones registered after this module shipped) loads without
    this layer naming concrete classes.
    """
    from repro.api.registry import default_registry

    for required in ("config", "fitted"):
        if required not in manifest:
            raise ArtifactError(
                f"artifact {path} manifest is missing required field {required!r}"
            )
    try:
        spec = default_registry().get(estimator_name)
    except ValidationError as exc:
        raise ArtifactError(
            f"artifact {path} names unknown estimator {estimator_name!r}: {exc}"
        ) from exc
    try:
        config = spec.config_cls.from_dict(manifest["config"])
    except ConfigError as exc:
        raise ArtifactError(
            f"artifact {path} holds an unreadable estimator config: {exc}"
        ) from exc
    config_method = getattr(config, "method", None)
    if config_method is not None and config_method != estimator_name:
        raise ArtifactError(
            f"artifact {path} names estimator {estimator_name!r} but its "
            f"config is for method {config_method!r}"
        )
    try:
        estimator = spec.build(config)
        restore = getattr(estimator, "restore_artifact", None)
        if restore is None:
            raise ArtifactError(
                f"estimator {estimator_name!r} does not expose the "
                "restore_artifact hook artifact loading needs"
            )
        return restore(manifest["fitted"], arrays)
    except ArtifactError:
        raise
    except (ValidationError, KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"artifact {path} holds a corrupt {estimator_name!r} payload: {exc}"
        ) from exc


def _kgraph_from_manifest(path: Path, manifest: Dict[str, object]) -> KGraph:
    """Build the (unfitted) KGraph shell an artifact describes.

    v3 manifests carry the typed ``config`` payload; v1/v2 manifests carry
    the flat ``params`` block, which is exactly a version-1
    :class:`KGraphConfig` payload — one migration path, no field list
    duplicated here.
    """
    if "config" in manifest:
        payload = manifest["config"]
    else:
        payload = {**manifest["params"], "version": 1}
    try:
        return KGraph(config=KGraphConfig.from_dict(payload))
    except ConfigError as exc:
        raise ArtifactError(
            f"artifact {path} holds an unreadable k-Graph config: {exc}"
        ) from exc


def _load_kgraph_model(
    path: Path,
    manifest: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    graph_payloads: List[Dict[str, object]],
) -> KGraph:
    for required in ("params", "fitted", "partitions", "length_scores"):
        if required not in manifest:
            raise ArtifactError(
                f"artifact {path} manifest is missing required field {required!r}"
            )
    for required in ("labels", "consensus_matrix"):
        if required not in arrays:
            raise ArtifactError(
                f"artifact {path} arrays are missing entry {required!r}"
            )
    model = _kgraph_from_manifest(path, manifest)

    graphs: Dict[int, TimeSeriesGraph] = {}
    for payload in graph_payloads:
        length = int(payload["length"])
        key = f"graph_{length}_patterns"
        if key not in arrays:
            raise ArtifactError(f"artifact {path} misses pattern matrix {key!r}")
        try:
            graphs[length] = TimeSeriesGraph.from_payload(payload, arrays[key])
        except ValidationError as exc:
            raise ArtifactError(f"artifact {path} holds a corrupt graph: {exc}") from exc

    # Nested-field corruption (a row or graphoid missing a key) must surface
    # as ArtifactError, like every other failure mode of this module.
    try:
        partitions: List[GraphPartition] = []
        for row in manifest["partitions"]:
            length = int(row["length"])
            labels_key = f"partition_{length}_labels"
            features_key = f"partition_{length}_features"
            if labels_key not in arrays or features_key not in arrays:
                raise ArtifactError(
                    f"artifact {path} misses partition payloads for length {length}"
                )
            partitions.append(
                GraphPartition(
                    length=length,
                    labels=arrays[labels_key],
                    feature_matrix=arrays[features_key],
                    inertia=float(row["inertia"]),
                    n_nodes=int(row["n_nodes"]),
                    n_edges=int(row["n_edges"]),
                )
            )

        graphoids = manifest.get("graphoids", {})
        lambda_graphoids = {
            int(p["cluster"]): _graphoid_from_payload(p) for p in graphoids.get("lambda", [])
        }
        gamma_graphoids = {
            int(p["cluster"]): _graphoid_from_payload(p) for p in graphoids.get("gamma", [])
        }

        model.result_ = KGraphResult(
            labels=arrays["labels"],
            graphs=graphs,
            partitions=partitions,
            consensus_matrix=arrays["consensus_matrix"],
            length_scores=[
                LengthScore(
                    length=int(row["length"]),
                    consistency=float(row["consistency"]),
                    interpretability=float(row["interpretability"]),
                )
                for row in manifest["length_scores"]
            ],
            optimal_length=int(manifest["fitted"]["optimal_length"]),
            lambda_graphoids=lambda_graphoids,
            gamma_graphoids=gamma_graphoids,
            timings={str(k): float(v) for k, v in manifest.get("timings", {}).items()},
        )
    except KeyError as exc:
        raise ArtifactError(
            f"artifact {path} manifest is missing field {exc}"
        ) from exc
    model.labels_ = model.result_.labels
    return model
