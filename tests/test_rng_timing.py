"""Unit tests for the RNG pool and timing utilities."""

import time

import numpy as np
import pytest

from repro.utils.rng import SeedSequencePool, spawn_rng
from repro.utils.timing import Stopwatch, format_duration


class TestSpawnRng:
    def test_count_and_type(self):
        children = spawn_rng(0, 4)
        assert len(children) == 4
        assert all(isinstance(child, np.random.Generator) for child in children)

    def test_deterministic(self):
        first = [g.integers(0, 100, 3).tolist() for g in spawn_rng(7, 3)]
        second = [g.integers(0, 100, 3).tolist() for g in spawn_rng(7, 3)]
        assert first == second

    def test_children_differ(self):
        children = spawn_rng(0, 2)
        a = children[0].integers(0, 10**6, 10)
        b = children[1].integers(0, 10**6, 10)
        assert not np.array_equal(a, b)


class TestSeedSequencePool:
    def test_deterministic_sequence(self):
        pool_a = SeedSequencePool(3)
        pool_b = SeedSequencePool(3)
        assert [pool_a.next_seed() for _ in range(5)] == [pool_b.next_seed() for _ in range(5)]

    def test_issued_counter(self):
        pool = SeedSequencePool(0)
        pool.next_rng()
        pool.next_seed()
        assert pool.issued == 2

    def test_iter_rngs_finite(self):
        pool = SeedSequencePool(0)
        rngs = list(pool.iter_rngs(3))
        assert len(rngs) == 3


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(5e-6).endswith("µs")

    def test_milliseconds(self):
        assert format_duration(0.25) == "250.0ms"

    def test_seconds(self):
        assert format_duration(2.5) == "2.50s"

    def test_minutes(self):
        assert format_duration(125.0).startswith("2m")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestStopwatch:
    def test_sections_accumulate(self):
        watch = Stopwatch()
        with watch.section("a"):
            time.sleep(0.01)
        with watch.section("a"):
            time.sleep(0.01)
        with watch.section("b"):
            pass
        totals = watch.totals()
        assert totals["a"] >= 0.02
        assert watch.counts() == {"a": 2, "b": 1}
        assert watch.total() == pytest.approx(sum(totals.values()))

    def test_report_mentions_sections(self):
        watch = Stopwatch()
        with watch.section("embedding"):
            pass
        report = watch.report()
        assert "embedding" in report
        assert "total" in report

    def test_exception_still_recorded(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.section("fails"):
                raise RuntimeError("boom")
        assert "fails" in watch.totals()
