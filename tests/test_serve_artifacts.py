"""Tests for the versioned model artifact format (repro.serve.artifacts)."""

import json

import numpy as np
import pytest

from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.exceptions import ArtifactError, NotFittedError
from repro.serve.artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_SCHEMA_VERSION,
    load_model,
    read_manifest,
    save_model,
)


@pytest.fixture(scope="module")
def fresh_series():
    """Out-of-sample series from the same generative classes."""
    return make_cylinder_bell_funnel(n_series=10, length=64, noise=0.2, random_state=42).data


@pytest.fixture()
def artifact_dir(fitted_kgraph, tmp_path):
    return save_model(fitted_kgraph, tmp_path / "model", dataset="cbf")


class TestRoundTrip:
    def test_predict_is_bit_identical(self, fitted_kgraph, artifact_dir, fresh_series):
        loaded = load_model(artifact_dir)
        assert np.array_equal(loaded.predict(fresh_series), fitted_kgraph.predict(fresh_series))

    def test_labels_and_matrices_round_trip_exactly(self, fitted_kgraph, artifact_dir):
        loaded = load_model(artifact_dir)
        assert np.array_equal(loaded.labels_, fitted_kgraph.labels_)
        assert np.array_equal(loaded.consensus_matrix_, fitted_kgraph.consensus_matrix_)
        for length, graph in fitted_kgraph.result_.graphs.items():
            restored = loaded.result_.graphs[length]
            assert np.array_equal(restored.feature_matrix(), graph.feature_matrix())
            assert np.array_equal(restored.adjacency_matrix(), graph.adjacency_matrix())
            assert restored.node_positions() == graph.node_positions()
            for node in graph.nodes():
                assert np.array_equal(restored.node_pattern(node), graph.node_pattern(node))
                assert restored.node_visit_counts(node) == graph.node_visit_counts(node)
            for series in range(graph.n_series):
                assert restored.trajectory(series) == graph.trajectory(series)

    def test_partitions_and_scores_round_trip(self, fitted_kgraph, artifact_dir):
        loaded = load_model(artifact_dir)
        assert loaded.optimal_length_ == fitted_kgraph.optimal_length_
        for original, restored in zip(fitted_kgraph.result_.partitions, loaded.result_.partitions):
            assert restored.length == original.length
            assert np.array_equal(restored.labels, original.labels)
            assert np.array_equal(restored.feature_matrix, original.feature_matrix)
            assert restored.inertia == original.inertia
        for original, restored in zip(fitted_kgraph.length_scores_, loaded.length_scores_):
            assert restored == original

    @pytest.mark.parametrize("kind", ["lambda", "gamma"])
    def test_graphoids_round_trip_for_every_kind(self, fitted_kgraph, artifact_dir, kind):
        loaded = load_model(artifact_dir)
        original = fitted_kgraph.graphoids(kind)
        restored = loaded.graphoids(kind)
        assert set(restored) == set(original)
        for cluster, graphoid in original.items():
            twin = restored[cluster]
            assert twin.kind == kind
            assert twin.threshold == graphoid.threshold
            assert twin.nodes == graphoid.nodes
            assert twin.edges == graphoid.edges
            assert twin.node_scores == graphoid.node_scores
            assert twin.edge_scores == graphoid.edge_scores

    def test_plain_graphoid_kind_survives_via_recompute(self, artifact_dir):
        # The third graphoid kind ("graphoid", thresholds at 0) is derived on
        # demand; a loaded model must be able to recompute all kinds.
        loaded = load_model(artifact_dir)
        recomputed = loaded.recompute_graphoids(0.0, 0.0)
        assert set(recomputed) == {"lambda", "gamma"}
        for graphoids in recomputed.values():
            assert all(not g.is_empty() for g in graphoids.values())

    def test_summary_and_node_statistics_work_on_loaded_model(self, artifact_dir):
        loaded = load_model(artifact_dir)
        summary = loaded.result_.summary()
        assert summary["optimal_length"] == loaded.optimal_length_
        statistics = loaded.node_statistics()
        assert set(statistics) == set(loaded.optimal_graph_.nodes())


class TestManifest:
    def test_manifest_contents(self, artifact_dir):
        manifest = read_manifest(artifact_dir)
        assert manifest["format"] == ARTIFACT_FORMAT
        assert manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert manifest["dataset"] == "cbf"
        assert manifest["params"]["n_clusters"] == 3
        assert manifest["fitted"]["n_series"] == 24
        assert manifest["fitted"]["optimal_length"] > 0

    def test_user_metadata_is_kept(self, fitted_kgraph, tmp_path):
        path = save_model(fitted_kgraph, tmp_path / "m", metadata={"owner": "ci"})
        assert read_manifest(path)["metadata"] == {"owner": "ci"}

    def test_generator_random_state_is_nulled(self, small_dataset, tmp_path):
        model = KGraph(
            n_clusters=3, n_lengths=2, random_state=np.random.default_rng(0)
        ).fit(small_dataset.data)
        path = save_model(model, tmp_path / "m")
        assert read_manifest(path)["params"]["random_state"] is None
        assert load_model(path).random_state is None

    def test_pipeline_provenance_recorded(self, artifact_dir, fitted_kgraph):
        # Schema v2: the manifest carries the stage pipeline's ledger.
        manifest = read_manifest(artifact_dir)
        assert manifest["schema_version"] >= 2
        pipeline = manifest["pipeline"]
        assert pipeline["config_hash"]
        assert [stage["name"] for stage in pipeline["stages"]] == [
            "embed",
            "graph_cluster",
            "consensus",
            "length_selection",
            "interpretability",
        ]
        expected = fitted_kgraph.pipeline_report_.stage_keys
        for stage in pipeline["stages"]:
            assert stage["key"] == expected[stage["name"]]
            assert isinstance(stage["cached"], bool)
            assert stage["seconds"] >= 0.0

    def test_reference_fit_records_no_pipeline(self, small_dataset, tmp_path):
        model = KGraph(n_clusters=3, n_lengths=2, random_state=0).fit_reference(
            small_dataset.data
        )
        path = save_model(model, tmp_path / "m")
        assert read_manifest(path)["pipeline"] is None

    def test_v1_artifact_without_pipeline_field_still_loads(
        self, artifact_dir, fitted_kgraph, fresh_series
    ):
        # Backward compatibility: a pre-pipeline (schema v1) artifact has no
        # "pipeline" manifest field and must load and predict identically.
        manifest = read_manifest(artifact_dir)
        manifest["schema_version"] = 1
        del manifest["pipeline"]
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_model(artifact_dir)
        assert loaded.pipeline_report_ is None
        assert np.array_equal(
            loaded.predict(fresh_series), fitted_kgraph.predict(fresh_series)
        )


class TestValidation:
    def test_unfitted_model_is_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_model(KGraph(n_clusters=2), tmp_path / "m")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ArtifactError, match="missing manifest.json"):
            load_model(tmp_path)

    def test_missing_arrays_file(self, artifact_dir):
        (artifact_dir / "arrays.npz").unlink()
        with pytest.raises(ArtifactError, match="missing arrays.npz"):
            load_model(artifact_dir)

    def test_wrong_format_name(self, artifact_dir):
        manifest = json.loads((artifact_dir / "manifest.json").read_text())
        manifest["format"] = "something-else"
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="format"):
            load_model(artifact_dir)

    def test_newer_schema_version_is_rejected(self, artifact_dir):
        manifest = json.loads((artifact_dir / "manifest.json").read_text())
        manifest["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="upgrade the library"):
            load_model(artifact_dir)

    def test_missing_manifest_fields_raise_artifact_error(self, artifact_dir):
        manifest = json.loads((artifact_dir / "manifest.json").read_text())
        del manifest["params"]
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="params"):
            load_model(artifact_dir)

    def test_refuses_nonempty_unrelated_directory(self, fitted_kgraph, tmp_path):
        target = tmp_path / "occupied"
        target.mkdir()
        (target / "notes.txt").write_text("hands off")
        with pytest.raises(ArtifactError, match="non-empty"):
            save_model(fitted_kgraph, target)

    def test_overwriting_an_existing_artifact_is_allowed(self, fitted_kgraph, artifact_dir, fresh_series):
        save_model(fitted_kgraph, artifact_dir, dataset="cbf")
        assert np.array_equal(
            load_model(artifact_dir).predict(fresh_series), fitted_kgraph.predict(fresh_series)
        )
