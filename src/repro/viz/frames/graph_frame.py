"""Graph frame — "k-Graph in action" (Fig. 3, frame 2).

Shows the graph embedding for the selected dataset with λ/γ colouring, a node
inspector (the pattern the node represents, its exclusivity/representativity
per cluster, and the subsequences it captures highlighted on sample series),
and the per-cluster graphoid summary.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.kgraph import KGraph
from repro.exceptions import VisualizationError
from repro.utils.containers import TimeSeriesDataset
from repro.utils.normalization import znormalize
from repro.viz.frames.base import Frame, Panel, html_table
from repro.viz.graph_render import render_graph
from repro.viz.plots import bar_chart, line_plot
from repro.viz.theme import color_for_cluster


def _node_highlight_ranges(model: KGraph, dataset: TimeSeriesDataset, node: int, max_series: int = 3):
    """(series_index, start, end) ranges where ``node`` captures subsequences."""
    graph = model.result_.optimal_graph
    length = graph.length
    ranges = []
    shown = 0
    for series_index in graph.series_through_node(node):
        trajectory = graph.trajectory(series_index)
        for position, visited in enumerate(trajectory):
            if visited == node:
                ranges.append((shown, position * model.stride, position * model.stride + length))
        shown += 1
        if shown >= max_series:
            break
    series_indices = graph.series_through_node(node)[:max_series]
    return series_indices, ranges


def build_graph_frame(
    model: KGraph,
    dataset: TimeSeriesDataset,
    *,
    lambda_threshold: Optional[float] = None,
    gamma_threshold: Optional[float] = None,
    selected_node: Optional[int] = None,
    layout: str = "force",
    random_state=None,
) -> Frame:
    """Build the Graph frame from a fitted model and its dataset.

    ``lambda_threshold`` / ``gamma_threshold`` default to the model's values;
    the dashboard server passes the slider values here on every request.
    """
    model._check_fitted()
    if dataset.n_series != model.result_.labels.shape[0]:
        raise VisualizationError("dataset does not match the fitted model")
    lam = model.lambda_threshold if lambda_threshold is None else float(lambda_threshold)
    gam = model.gamma_threshold if gamma_threshold is None else float(gamma_threshold)

    graph = model.result_.optimal_graph
    labels = model.result_.labels
    if selected_node is None:
        # Default to the node with the highest exclusivity*representativity product.
        statistics = model.node_statistics()
        def node_score(node_id: int) -> float:
            stats = statistics[node_id]
            return max(
                stats["exclusivity"][c] * stats["representativity"][c]
                for c in stats["exclusivity"]
            )
        selected_node = max(graph.nodes(), key=node_score)

    frame = Frame(
        frame_id="graph-frame",
        title="k-Graph in action",
        description=(
            f"Graph embedding of {dataset.name} for the selected length "
            f"ℓ = {graph.length}. Nodes and edges are coloured when their "
            f"representativity ≥ λ = {lam:.2f} and exclusivity ≥ γ = {gam:.2f}."
        ),
        metadata={
            "dataset": dataset.name,
            "optimal_length": graph.length,
            "lambda": lam,
            "gamma": gam,
            "selected_node": int(selected_node),
        },
    )

    frame.add_panel(
        Panel(
            title=f"Graph (ℓ = {graph.length}, {graph.n_nodes} nodes, {graph.n_edges} edges)",
            svg=render_graph(
                graph,
                labels,
                lambda_threshold=lam,
                gamma_threshold=gam,
                layout=layout,
                selected_node=selected_node,
                random_state=random_state,
            ),
            caption="Node size = number of captured subsequences; edge width = transition count.",
        )
    )

    # Node inspector: pattern + per-cluster exclusivity / representativity.
    statistics = model.node_statistics()[selected_node]
    pattern = znormalize(graph.node_pattern(selected_node))
    frame.add_panel(
        Panel(
            title=f"Node {selected_node}: captured pattern",
            svg=line_plot([pattern], title=f"node {selected_node} pattern (z-normalised)"),
            caption="Average of the subsequences assigned to the selected node.",
        )
    )
    exclusivity_values = {
        f"cluster {c}": value for c, value in sorted(statistics["exclusivity"].items())
    }
    representativity_values = {
        f"cluster {c}": value for c, value in sorted(statistics["representativity"].items())
    }
    colors = {
        f"cluster {c}": color_for_cluster(c) for c in sorted(statistics["exclusivity"])
    }
    frame.add_panel(
        Panel(
            title=f"Node {selected_node}: exclusivity per cluster",
            svg=bar_chart(exclusivity_values, title="exclusivity", colors=colors),
            caption="Proportion of the series crossing this node that belong to each cluster.",
        )
    )
    frame.add_panel(
        Panel(
            title=f"Node {selected_node}: representativity per cluster",
            svg=bar_chart(representativity_values, title="representativity", colors=colors),
            caption="Proportion of each cluster's series that cross this node.",
        )
    )

    # Subsequences captured by the node, highlighted on sample series.
    series_indices, ranges = _node_highlight_ranges(model, dataset, selected_node)
    if series_indices:
        sample = [dataset.data[i] for i in series_indices]
        frame.add_panel(
            Panel(
                title=f"Node {selected_node}: where it appears in the series",
                svg=line_plot(
                    sample,
                    labels=[int(labels[i]) for i in series_indices],
                    highlight=ranges,
                ),
                caption="Red segments are the subsequences of the sample series captured by the node.",
            )
        )

    # Graphoid summary table at the requested thresholds.
    graphoids = model.recompute_graphoids(lam, gam)
    rows = []
    for cluster in sorted(graphoids["gamma"]):
        rows.append(
            {
                "cluster": cluster,
                "lambda_nodes": graphoids["lambda"][cluster].n_nodes,
                "lambda_edges": graphoids["lambda"][cluster].n_edges,
                "gamma_nodes": graphoids["gamma"][cluster].n_nodes,
                "gamma_edges": graphoids["gamma"][cluster].n_edges,
            }
        )
    frame.add_panel(
        Panel(
            title="Graphoid sizes per cluster",
            html_body=html_table(rows),
            caption=(
                "λ-Graphoid: nodes/edges crossed by at least λ of the cluster's series; "
                "γ-Graphoid: nodes/edges whose crossing series belong to the cluster "
                "with proportion at least γ."
            ),
        )
    )
    return frame
