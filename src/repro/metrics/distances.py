"""Time series distance measures.

Implements the distances used across the paper's method population:

* plain and z-normalised Euclidean distance (k-Means, feature spaces),
* shape-based distance (SBD) built on the normalised cross-correlation,
  which is the core of k-Shape,
* dynamic time warping with an optional Sakoe-Chiba band (used by the
  DTW-based baselines and by the interpretability quiz's "hard" mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array
from repro.utils.normalization import znormalize


def euclidean_distance(a, b) -> float:
    """Euclidean distance between two equal-length vectors."""
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    if x.shape[0] != y.shape[0]:
        raise ValidationError(
            f"series must have equal length, got {x.shape[0]} and {y.shape[0]}"
        )
    return float(np.sqrt(np.sum((x - y) ** 2)))


def znormalized_euclidean_distance(a, b) -> float:
    """Euclidean distance between the z-normalised versions of two series."""
    return euclidean_distance(znormalize(a), znormalize(b))


def cross_correlation(a, b) -> np.ndarray:
    """Full normalised cross-correlation sequence (NCCc) between two series.

    Returns an array of length ``2 * n - 1`` whose maximum is reached at the
    shift best aligning ``b`` to ``a``.  Values are normalised by the product
    of the L2 norms so they lie in [-1, 1].
    """
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    if x.shape[0] != y.shape[0]:
        raise ValidationError(
            f"series must have equal length, got {x.shape[0]} and {y.shape[0]}"
        )
    n = x.shape[0]
    # FFT-based correlation: pad to the next power of two >= 2n-1 for speed.
    size = 1 << int(np.ceil(np.log2(2 * n - 1)))
    fx = np.fft.rfft(x, size)
    fy = np.fft.rfft(y, size)
    cc = np.fft.irfft(fx * np.conj(fy), size)
    # Rearrange so index 0 corresponds to shift -(n-1) and 2n-2 to +(n-1).
    cc = np.concatenate([cc[-(n - 1):], cc[:n]]) if n > 1 else cc[:1]
    denom = float(np.linalg.norm(x) * np.linalg.norm(y))
    if denom < 1e-12:
        return np.zeros(2 * n - 1)
    return cc / denom


def sbd_distance(a, b, return_shift: bool = False):
    """Shape-based distance: ``1 - max(NCCc(a, b))``.

    This is the distance at the heart of k-Shape; it is shift-invariant and
    lies in [0, 2].  When ``return_shift`` is true, also return the shift (in
    samples) that maximises the cross-correlation, which k-Shape uses to align
    members before extracting a new centroid.
    """
    ncc = cross_correlation(a, b)
    best = int(np.argmax(ncc))
    distance = float(1.0 - ncc[best])
    if not return_shift:
        return distance
    n = (ncc.shape[0] + 1) // 2
    shift = best - (n - 1)
    return distance, int(shift)


def align_by_sbd(reference, series) -> np.ndarray:
    """Shift ``series`` so it best aligns with ``reference`` (zero-padded)."""
    ref = check_array(reference, name="reference", ndim=1)
    ser = check_array(series, name="series", ndim=1)
    _, shift = sbd_distance(ref, ser, return_shift=True)
    n = ser.shape[0]
    aligned = np.zeros(n)
    if shift >= 0:
        aligned[shift:] = ser[: n - shift]
    else:
        aligned[: n + shift] = ser[-shift:]
    return aligned


def _dtw_band(n: int, m: int, window: Optional[int]) -> int:
    """Resolve the Sakoe-Chiba band width for series of lengths n, m."""
    if window is None:
        return max(n, m)
    if window < 0:
        raise ValidationError(f"window must be non-negative, got {window}")
    return max(int(window), abs(n - m))


def _dtw_batch(x: np.ndarray, y: np.ndarray, band: int) -> np.ndarray:
    """Banded DTW accumulated costs for a batch of pairs, vectorised.

    ``x`` has shape (P, n) and ``y`` shape (P, m); pair ``p`` is
    ``(x[p], y[p])``.  The dynamic program sweeps the n x m cost matrix by
    anti-diagonals: every cell on diagonal ``d`` (i + j == d) depends only on
    diagonals ``d - 1`` and ``d - 2``, so one NumPy slice updates a whole
    diagonal across all P pairs at once — the only Python-level loop is the
    O(n + m) sweep over diagonals.  Each cell computes exactly
    ``(x[i-1] - y[j-1])**2 + min(up, left, diag)``, the same scalar operations
    as the reference row-scan, so results are bit-identical to
    :func:`dtw_distance_reference`.

    Returns the (P,) accumulated squared costs D[n, m] (callers apply the
    final square root).
    """
    pairs, n = x.shape
    m = y.shape[1]
    # y addressed by diagonal index becomes a contiguous ascending slice of
    # the reversed series: y[j - 1] == y_reversed[m - d + i] for j = d - i.
    y_reversed = np.ascontiguousarray(y[:, ::-1])
    # Diagonal d is stored indexed by i: diag[p, i] == D[i, d - i].
    prev2 = np.full((pairs, n + 1), np.inf)  # diagonal d - 2
    prev1 = np.full((pairs, n + 1), np.inf)  # diagonal d - 1
    current = np.full((pairs, n + 1), np.inf)
    prev1[:, 0] = 0.0  # diagonal 0 holds only D[0, 0] = 0
    for d in range(1, n + m + 1):
        # Cells on this diagonal: 1 <= i <= n, 1 <= j = d - i <= m and
        # |i - j| = |2i - d| <= band.
        lo = max(1, d - m, (d - band + 1) // 2)
        hi = min(n, d - 1, (d + band) // 2)
        current.fill(np.inf)
        if lo <= hi:
            cost = (x[:, lo - 1 : hi] - y_reversed[:, m - d + lo : m - d + hi + 1]) ** 2
            best = np.minimum(prev1[:, lo - 1 : hi], prev1[:, lo : hi + 1])
            np.minimum(best, prev2[:, lo - 1 : hi], out=best)
            current[:, lo : hi + 1] = cost + best
        prev2, prev1, current = prev1, current, prev2
    return prev1[:, n].copy()


def dtw_distance(a, b, window: Optional[int] = None) -> float:
    """Dynamic time warping distance with an optional Sakoe-Chiba band.

    Vectorised anti-diagonal sweep (see :func:`_dtw_batch`); bit-identical
    to the retained :func:`dtw_distance_reference` row-scan.

    Parameters
    ----------
    window:
        Maximum allowed |i - j| misalignment.  ``None`` means unconstrained.
    """
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    band = _dtw_band(x.shape[0], y.shape[0], window)
    return float(np.sqrt(_dtw_batch(x[None, :], y[None, :], band)[0]))


def dtw_distance_reference(a, b, window: Optional[int] = None) -> float:
    """Reference O(n·m) Python row-scan DTW.

    Retained as the implementation :func:`dtw_distance` is benchmarked and
    equivalence-tested against (E13); not used on any hot path.
    """
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    n, m = x.shape[0], y.shape[0]
    band = _dtw_band(n, m, window)

    previous = np.full(m + 1, np.inf)
    current = np.full(m + 1, np.inf)
    previous[0] = 0.0
    for i in range(1, n + 1):
        current.fill(np.inf)
        j_start = max(1, i - band)
        j_end = min(m, i + band)
        for j in range(j_start, j_end + 1):
            cost = (x[i - 1] - y[j - 1]) ** 2
            current[j] = cost + min(previous[j], current[j - 1], previous[j - 1])
        previous, current = current, previous
    return float(np.sqrt(previous[m]))


def dtw_path(a, b, window: Optional[int] = None) -> Tuple[float, list]:
    """DTW distance plus the optimal warping path as a list of (i, j) pairs."""
    x = check_array(a, name="a", ndim=1)
    y = check_array(b, name="b", ndim=1)
    n, m = x.shape[0], y.shape[0]
    band = max(n, m) if window is None else max(int(window), abs(n - m))

    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(max(1, i - band), min(m, i + band) + 1):
            cost = (x[i - 1] - y[j - 1]) ** 2
            acc[i, j] = cost + min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])

    path = []
    i, j = n, m
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        step = int(np.argmin([acc[i - 1, j - 1], acc[i - 1, j], acc[i, j - 1]]))
        if step == 0:
            i, j = i - 1, j - 1
        elif step == 1:
            i -= 1
        else:
            j -= 1
    path.reverse()
    return float(np.sqrt(acc[n, m])), path


_METRIC_FUNCTIONS: dict = {
    "euclidean": euclidean_distance,
    "zeuclidean": znormalized_euclidean_distance,
    "sbd": sbd_distance,
    "dtw": dtw_distance,
}


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Look up a distance function by name."""
    key = name.strip().lower()
    if key not in _METRIC_FUNCTIONS:
        raise ValidationError(
            f"unknown metric {name!r}; expected one of {sorted(_METRIC_FUNCTIONS)}"
        )
    return _METRIC_FUNCTIONS[key]


def _euclidean_block_rows(total_rows: int, length: int) -> int:
    """Row-block size keeping the (rows, n, length) difference tensor ~32 MB."""
    per_row = max(1, total_rows * max(1, length) * 8)
    return max(1, (32 * 1024 * 1024) // per_row)


def _pairwise_euclidean_blocked(array: np.ndarray, block_size: Optional[int]) -> np.ndarray:
    """Blockwise direct-difference Euclidean distance matrix.

    Computes ``sqrt(sum((x - y)**2))`` with the exact per-element operations
    of :func:`euclidean_distance`, broadcast over row blocks so the temporary
    difference tensor stays bounded — bit-identical to the per-pair loop.
    """
    n, length = array.shape
    if block_size is None:
        block_size = _euclidean_block_rows(n, length)
    block_size = min(block_size, n)
    out = np.empty((n, n))
    # One reusable difference buffer: allocation churn, not arithmetic,
    # dominates this kernel, and out=-style updates keep the exact same
    # per-element operations (and therefore bit-identical results).
    diff = np.empty((block_size, n, length))
    for start in range(0, n, block_size):
        stop = min(n, start + block_size)
        window = diff[: stop - start]
        np.subtract(array[start:stop, None, :], array[None, :, :], out=window)
        np.multiply(window, window, out=window)
        np.sum(window, axis=-1, out=out[start:stop])
    np.sqrt(out, out=out)
    return out


def _pairwise_sbd(array: np.ndarray) -> np.ndarray:
    """FFT-batched shape-based distance matrix.

    The per-row FFTs are computed once; each row ``i`` then correlates
    against all rows ``j > i`` in one batched inverse transform, exactly
    reproducing :func:`sbd_distance` pair by pair (the 1-D FFT is applied
    per row, and ``max(cc) / denom`` equals ``max(cc / denom)`` because
    division by a positive scalar is monotone).
    """
    n, m = array.shape
    matrix = np.zeros((n, n))
    if n < 2:
        return matrix
    size = 1 << int(np.ceil(np.log2(2 * m - 1))) if m > 1 else 1
    transforms = np.fft.rfft(array, size, axis=1)
    conjugates = np.conj(transforms)
    # 1-D np.linalg.norm (BLAS dot) per row: the axis= form sums in a
    # different order and is not bit-identical to the scalar reference.
    norms = np.array([float(np.linalg.norm(row)) for row in array])
    for i in range(n - 1):
        cc = np.fft.irfft(transforms[i][None, :] * conjugates[i + 1 :], size, axis=1)
        if m > 1:
            cc = np.concatenate([cc[:, -(m - 1) :], cc[:, :m]], axis=1)
        else:
            cc = cc[:, :1]
        best = cc.max(axis=1)
        denom = norms[i] * norms[i + 1 :]
        degenerate = denom < 1e-12
        safe = np.where(degenerate, 1.0, denom)
        values = np.where(degenerate, 1.0, 1.0 - best / safe)
        matrix[i, i + 1 :] = values
        matrix[i + 1 :, i] = values
    return matrix


def _pairwise_dtw(
    array: np.ndarray, window: Optional[int], block_size: Optional[int]
) -> np.ndarray:
    """Pair-batched banded DTW distance matrix.

    All upper-triangle pairs run through the anti-diagonal sweep of
    :func:`_dtw_batch` together (in bounded blocks), so the whole matrix
    costs O(n + m) sequential NumPy steps per block instead of one Python
    DP per pair.
    """
    n, m = array.shape
    band = _dtw_band(m, m, window)
    matrix = np.zeros((n, n))
    rows, cols = np.triu_indices(n, k=1)
    if rows.size == 0:
        return matrix
    if block_size is None:
        # Three (pairs, m + 1) float64 diagonals per sweep: keep them ~48 MB.
        block_size = max(1, (2 * 1024 * 1024) // max(1, m + 1))
    for start in range(0, rows.size, block_size):
        ii = rows[start : start + block_size]
        jj = cols[start : start + block_size]
        values = np.sqrt(_dtw_batch(array[ii], array[jj], band))
        matrix[ii, jj] = values
        matrix[jj, ii] = values
    return matrix


def _pairwise_euclidean_gram(array: np.ndarray) -> np.ndarray:
    """Gram-matrix (GEMM) Euclidean distance matrix.

    ``sqrt(|x|^2 + |y|^2 - 2 x.y)`` computed with one BLAS GEMM — the
    fastest formulation and the library's long-standing default for the
    euclidean metric.  Accurate to normal floating-point rounding but *not*
    bit-identical to the direct-difference form; pass ``exact=True`` to
    :func:`pairwise_distances` when exactness matters more than speed.
    """
    squared = np.sum(array**2, axis=1)
    gram = array @ array.T
    dist2 = np.maximum(squared[:, None] + squared[None, :] - 2.0 * gram, 0.0)
    return np.sqrt(dist2)


@dataclass(frozen=True)
class _PairwiseStripJob:
    """One worker's contiguous row strip of a pairwise distance matrix."""

    array: np.ndarray
    metric: str
    start: int
    stop: int
    exact: bool
    block_size: Optional[int]
    window: Optional[int]


def _pairwise_euclidean_strip(
    array: np.ndarray, start: int, stop: int, block_size: Optional[int]
) -> np.ndarray:
    """Rows ``[start, stop)`` of the direct-difference euclidean matrix.

    Runs the per-row operations of :func:`_pairwise_euclidean_blocked`
    verbatim — each output row is a pure function of that row and the full
    array, so strip results are bit-identical to the serial kernel no
    matter how the rows are partitioned across workers.
    """
    n, length = array.shape
    rows = stop - start
    if block_size is None:
        block_size = _euclidean_block_rows(n, length)
    block_size = min(block_size, rows)
    out = np.empty((rows, n))
    diff = np.empty((block_size, n, length))
    for offset in range(0, rows, block_size):
        limit = min(rows, offset + block_size)
        window = diff[: limit - offset]
        np.subtract(
            array[start + offset : start + limit, None, :],
            array[None, :, :],
            out=window,
        )
        np.multiply(window, window, out=window)
        np.sum(window, axis=-1, out=out[offset:limit])
    np.sqrt(out, out=out)
    return out


def _pairwise_sbd_strip(array: np.ndarray, start: int, stop: int) -> np.ndarray:
    """Upper-triangle rows ``[start, stop)`` of the SBD matrix.

    Each entry ``(i, j > i)`` evaluates exactly the batched expression of
    :func:`_pairwise_sbd` for that ``i`` (entries at and below the diagonal
    stay zero); the coordinator mirrors the strip, reproducing the serial
    kernel's symmetric write.
    """
    n, m = array.shape
    strip = np.zeros((stop - start, n))
    if n < 2:
        return strip
    size = 1 << int(np.ceil(np.log2(2 * m - 1))) if m > 1 else 1
    transforms = np.fft.rfft(array, size, axis=1)
    conjugates = np.conj(transforms)
    norms = np.array([float(np.linalg.norm(row)) for row in array])
    for i in range(start, min(stop, n - 1)):
        cc = np.fft.irfft(transforms[i][None, :] * conjugates[i + 1 :], size, axis=1)
        if m > 1:
            cc = np.concatenate([cc[:, -(m - 1) :], cc[:, :m]], axis=1)
        else:
            cc = cc[:, :1]
        best = cc.max(axis=1)
        denom = norms[i] * norms[i + 1 :]
        degenerate = denom < 1e-12
        safe = np.where(degenerate, 1.0, denom)
        strip[i - start, i + 1 :] = np.where(degenerate, 1.0, 1.0 - best / safe)
    return strip


def _pairwise_dtw_strip(
    array: np.ndarray,
    start: int,
    stop: int,
    window: Optional[int],
    block_size: Optional[int],
) -> np.ndarray:
    """Upper-triangle rows ``[start, stop)`` of the DTW matrix.

    :func:`_dtw_batch` computes every pair of its batch independently
    (each batch row only ever reads its own slices), so partitioning the
    upper-triangle pairs by matrix row yields values bit-identical to the
    serial pair-blocked sweep.
    """
    n, m = array.shape
    band = _dtw_band(m, m, window)
    strip = np.zeros((stop - start, n))
    ii, jj = np.triu_indices(n, k=1)
    keep = (ii >= start) & (ii < stop)
    ii, jj = ii[keep], jj[keep]
    if ii.size == 0:
        return strip
    if block_size is None:
        block_size = max(1, (2 * 1024 * 1024) // max(1, m + 1))
    for offset in range(0, ii.size, block_size):
        bi = ii[offset : offset + block_size]
        bj = jj[offset : offset + block_size]
        strip[bi - start, bj] = np.sqrt(_dtw_batch(array[bi], array[bj], band))
    return strip


def _pairwise_strip(job: _PairwiseStripJob) -> np.ndarray:
    """Worker entry point: compute one row strip (runs in worker processes)."""
    if job.metric == "euclidean":
        if job.exact:
            return _pairwise_euclidean_strip(
                job.array, job.start, job.stop, job.block_size
            )
        squared = np.sum(job.array**2, axis=1)
        gram = job.array[job.start : job.stop] @ job.array.T
        dist2 = np.maximum(
            squared[job.start : job.stop, None] + squared[None, :] - 2.0 * gram, 0.0
        )
        return np.sqrt(dist2)
    if job.metric == "sbd":
        return _pairwise_sbd_strip(job.array, job.start, job.stop)
    if job.metric == "dtw":
        return _pairwise_dtw_strip(
            job.array, job.start, job.stop, job.window, job.block_size
        )
    raise ValidationError(f"metric {job.metric!r} has no strip kernel")


def _pairwise_distances_fanout(
    array: np.ndarray,
    metric: str,
    backend,
    *,
    exact: bool,
    block_size: Optional[int],
    window: Optional[int],
) -> np.ndarray:
    """Row-strip fan-out of a pairwise matrix over an execution backend.

    The rows are split into contiguous strips (a few per worker so the
    triangular metrics balance), each worker computes its strip with the
    serial kernels' per-row expressions, and the coordinator assembles —
    mirroring the triangular strips — so the result is bit-identical to
    the serial path for ``exact`` euclidean, zeuclidean, SBD and DTW.
    Strips are large contiguous ndarrays, which is exactly the shape
    :class:`~repro.parallel.SharedMemoryBackend` returns through shared
    memory instead of pickling.
    """
    n = array.shape[0]
    n_workers = getattr(backend, "n_workers", None) or 1
    strips = min(n, max(1, int(n_workers)) * 2)
    bounds = np.linspace(0, n, strips + 1).astype(int)
    jobs = [
        _PairwiseStripJob(
            array=array,
            metric=metric,
            start=int(lo),
            stop=int(hi),
            exact=exact,
            block_size=block_size,
            window=window,
        )
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
    matrix = np.zeros((n, n))
    triangular = metric in ("sbd", "dtw")
    for job, outcome in zip(jobs, backend.map_jobs(_pairwise_strip, jobs)):
        matrix[job.start : job.stop] = outcome.unwrap()
    if triangular:
        matrix += matrix.T
    return matrix


def pairwise_distances(
    data,
    metric: str = "euclidean",
    *,
    block_size: Optional[int] = None,
    exact: bool = False,
    backend=None,
    **metric_kwargs,
) -> np.ndarray:
    """Symmetric pairwise distance matrix for the rows of ``data``.

    ``metric`` may be ``"euclidean"``, ``"zeuclidean"``, ``"sbd"`` or
    ``"dtw"``.  All four run vectorised: the euclidean metric uses one BLAS
    GEMM (its long-standing fast path; pass ``exact=True`` for the
    blockwise direct-difference kernel that is bit-identical to
    :func:`pairwise_distances_reference` at some speed cost), while
    zeuclidean (direct-difference on z-normalised rows), SBD (batched FFT
    correlation) and DTW (pair-batched anti-diagonal sweep) are
    bit-identical to the reference loop by construction.  ``block_size``
    bounds the temporary memory per block (rows for difference-based
    metrics, pairs for DTW) and is chosen automatically when ``None``.
    Unknown metric keyword arguments fall back to the reference per-pair
    loop.

    ``backend`` fans the matrix out as contiguous row strips over an
    :class:`~repro.parallel.ExecutionBackend` (instance or spec name,
    resolved for this call).  Strip workers run the serial kernels' exact
    per-row expressions, so the assembled matrix is bit-identical to the
    serial path for every metric except the gram-formulation euclidean
    default (whose GEMM blocking is shape-dependent; combine with
    ``exact=True`` when exactness matters).  Metrics that fall back to the
    reference loop ignore ``backend``.
    """
    array = check_array(data, name="data", ndim=2, min_rows=1)
    key = metric.strip().lower() if isinstance(metric, str) else metric
    fanout = None
    if backend is not None:
        from repro.parallel import backend_scope

        def fanout(strip_array, strip_metric, **strip_kwargs):
            with backend_scope(backend) as resolved:
                return _pairwise_distances_fanout(
                    strip_array, strip_metric, resolved, **strip_kwargs
                )

    if key == "euclidean" and not metric_kwargs:
        if fanout is not None:
            return fanout(
                array, "euclidean", exact=exact, block_size=block_size, window=None
            )
        if exact:
            return _pairwise_euclidean_blocked(array, block_size)
        return _pairwise_euclidean_gram(array)
    if key == "zeuclidean" and not metric_kwargs:
        normalized = np.vstack([znormalize(row) for row in array])
        if fanout is not None:
            return fanout(
                normalized, "euclidean", exact=True, block_size=block_size, window=None
            )
        return _pairwise_euclidean_blocked(normalized, block_size)
    if key == "sbd" and not metric_kwargs:
        if fanout is not None:
            return fanout(array, "sbd", exact=False, block_size=None, window=None)
        return _pairwise_sbd(array)
    if key == "dtw" and set(metric_kwargs) <= {"window"}:
        if fanout is not None:
            return fanout(
                array,
                "dtw",
                exact=False,
                block_size=block_size,
                window=metric_kwargs.get("window"),
            )
        return _pairwise_dtw(array, metric_kwargs.get("window"), block_size)
    return pairwise_distances_reference(array, metric, **metric_kwargs)


def pairwise_distances_reference(
    data, metric: str = "euclidean", **metric_kwargs
) -> np.ndarray:
    """Reference per-pair O(n²) loop over the scalar metric functions.

    Retained as the implementation :func:`pairwise_distances` is benchmarked
    and equivalence-tested against (E13); DTW pairs run through
    :func:`dtw_distance_reference` so the loop exercises the original
    Python dynamic program end to end.
    """
    array = check_array(data, name="data", ndim=2, min_rows=1)
    n = array.shape[0]
    func = get_metric(metric)
    if func is dtw_distance:
        func = dtw_distance_reference
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = func(array[i], array[j], **metric_kwargs)
            if isinstance(value, tuple):
                value = value[0]
            matrix[i, j] = matrix[j, i] = value
    return matrix


# Registered so distributed workers can compute pairwise strips by name
# (see repro.distributed.registry).
from repro.distributed.registry import register_worker_function  # noqa: E402

register_worker_function(_pairwise_strip)
