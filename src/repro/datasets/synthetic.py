"""Synthetic labelled time series dataset generators.

Each generator returns a :class:`repro.utils.TimeSeriesDataset` whose classes
differ by the *shape of local subsequences* (pulses, oscillations, plateaus,
regime switches) rather than by global statistics alone — the same property
that makes the UCR datasets amenable to k-Graph's subsequence-pattern graph.

All generators take ``n_series`` (total), ``length``, ``noise`` and
``random_state`` and distribute the series as evenly as possible across
classes.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.containers import TimeSeriesDataset
from repro.utils.validation import check_positive_int, check_random_state


def _split_counts(n_series: int, n_classes: int) -> List[int]:
    """Distribute ``n_series`` across ``n_classes`` as evenly as possible."""
    if n_series < n_classes:
        raise DatasetError(
            f"need at least {n_classes} series to build {n_classes} classes, got {n_series}"
        )
    base = n_series // n_classes
    remainder = n_series % n_classes
    return [base + (1 if i < remainder else 0) for i in range(n_classes)]


def _assemble(
    name: str,
    dataset_type: str,
    per_class_generators: Sequence[Callable[[np.random.Generator], np.ndarray]],
    n_series: int,
    length: int,
    noise: float,
    random_state,
    metadata: dict,
) -> TimeSeriesDataset:
    """Build a dataset by calling one generator per class and adding noise."""
    n_series = check_positive_int(n_series, "n_series", minimum=len(per_class_generators))
    length = check_positive_int(length, "length", minimum=16)
    if noise < 0:
        raise DatasetError(f"noise must be non-negative, got {noise}")
    rng = check_random_state(random_state)

    counts = _split_counts(n_series, len(per_class_generators))
    rows: List[np.ndarray] = []
    labels: List[int] = []
    for class_id, (generator, count) in enumerate(zip(per_class_generators, counts)):
        for _ in range(count):
            series = generator(rng)
            if series.shape[0] != length:
                raise DatasetError(
                    f"class generator {class_id} produced length {series.shape[0]}, "
                    f"expected {length}"
                )
            rows.append(series + rng.normal(0.0, noise, size=length))
            labels.append(class_id)
    order = rng.permutation(len(rows))
    data = np.vstack(rows)[order]
    label_array = np.asarray(labels, dtype=int)[order]
    info = {"noise": noise, **metadata}
    return TimeSeriesDataset(
        data=data, labels=label_array, name=name, dataset_type=dataset_type, metadata=info
    )


# --------------------------------------------------------------------------- #
# individual pattern primitives
# --------------------------------------------------------------------------- #
def _plateau(length: int, start: int, width: int, height: float) -> np.ndarray:
    series = np.zeros(length)
    series[start: start + width] = height
    return series


def _ramp(length: int, start: int, width: int, height: float) -> np.ndarray:
    series = np.zeros(length)
    series[start: start + width] = np.linspace(0.0, height, width)
    return series


def _bump(length: int, centre: int, width: int, height: float) -> np.ndarray:
    series = np.zeros(length)
    positions = np.arange(length)
    series += height * np.exp(-0.5 * ((positions - centre) / max(width / 2.5, 1.0)) ** 2)
    return series


# --------------------------------------------------------------------------- #
# generators
# --------------------------------------------------------------------------- #
def make_cylinder_bell_funnel(
    n_series: int = 60, length: int = 128, noise: float = 0.3, random_state=None
) -> TimeSeriesDataset:
    """Classic cylinder-bell-funnel three-class benchmark.

    Cylinder: flat plateau; bell: linearly increasing ramp ending abruptly;
    funnel: abrupt start decaying linearly.  Onset and duration are random,
    so raw-alignment methods struggle while subsequence-pattern methods thrive.
    """

    def random_window(rng: np.random.Generator) -> Tuple[int, int]:
        onset = int(rng.integers(length // 8, length // 2))
        duration = int(rng.integers(length // 4, length // 2))
        duration = min(duration, length - onset - 1)
        return onset, max(duration, length // 8)

    def cylinder(rng: np.random.Generator) -> np.ndarray:
        onset, duration = random_window(rng)
        amplitude = rng.uniform(4.0, 7.0)
        return _plateau(length, onset, duration, amplitude)

    def bell(rng: np.random.Generator) -> np.ndarray:
        onset, duration = random_window(rng)
        amplitude = rng.uniform(4.0, 7.0)
        return _ramp(length, onset, duration, amplitude)

    def funnel(rng: np.random.Generator) -> np.ndarray:
        onset, duration = random_window(rng)
        amplitude = rng.uniform(4.0, 7.0)
        series = np.zeros(length)
        series[onset: onset + duration] = np.linspace(amplitude, 0.0, duration)
        return series

    return _assemble(
        "cylinder_bell_funnel",
        "synthetic-shape",
        [cylinder, bell, funnel],
        n_series,
        length,
        noise,
        random_state,
        {"classes": ["cylinder", "bell", "funnel"]},
    )


def make_two_patterns(
    n_series: int = 80, length: int = 128, noise: float = 0.2, random_state=None
) -> TimeSeriesDataset:
    """Four classes defined by the order of an up-step and a down-step."""

    def step(direction: float, position: int, width: int) -> np.ndarray:
        series = np.zeros(length)
        series[position: position + width] = direction
        return series

    def make_class(first: float, second: float):
        def generator(rng: np.random.Generator) -> np.ndarray:
            width = max(4, length // 16)
            first_pos = int(rng.integers(length // 10, length // 2 - width))
            second_pos = int(rng.integers(length // 2, length - width - 1))
            return 3.0 * (step(first, first_pos, width) + step(second, second_pos, width))

        return generator

    generators = [
        make_class(1.0, 1.0),
        make_class(1.0, -1.0),
        make_class(-1.0, 1.0),
        make_class(-1.0, -1.0),
    ]
    return _assemble(
        "two_patterns",
        "synthetic-shape",
        generators,
        n_series,
        length,
        noise,
        random_state,
        {"classes": ["up-up", "up-down", "down-up", "down-down"]},
    )


def make_gun_point_like(
    n_series: int = 50, length: int = 150, noise: float = 0.15, random_state=None
) -> TimeSeriesDataset:
    """Two classes mimicking the GunPoint motion capture benchmark.

    Class 0 ("gun") has a pronounced dip before and after the central bump
    (drawing and re-holstering); class 1 ("point") is a smooth single bump.
    """

    def gun(rng: np.random.Generator) -> np.ndarray:
        centre = length // 2 + int(rng.integers(-length // 10, length // 10))
        width = length // 4
        series = _bump(length, centre, width, rng.uniform(3.5, 4.5))
        series -= _bump(length, centre - width, width // 2, rng.uniform(1.0, 1.6))
        series -= _bump(length, centre + width, width // 2, rng.uniform(1.0, 1.6))
        return series

    def point(rng: np.random.Generator) -> np.ndarray:
        centre = length // 2 + int(rng.integers(-length // 10, length // 10))
        width = length // 3
        return _bump(length, centre, width, rng.uniform(3.5, 4.5))

    return _assemble(
        "gun_point_like",
        "synthetic-motion",
        [gun, point],
        n_series,
        length,
        noise,
        random_state,
        {"classes": ["gun", "point"]},
    )


def make_sine_families(
    n_series: int = 60,
    length: int = 128,
    noise: float = 0.25,
    n_classes: int = 3,
    random_state=None,
) -> TimeSeriesDataset:
    """Classes are sinusoids with distinct frequencies and random phases."""
    n_classes = check_positive_int(n_classes, "n_classes", minimum=2)

    def make_class(frequency: float):
        def generator(rng: np.random.Generator) -> np.ndarray:
            phase = rng.uniform(0.0, 2.0 * np.pi)
            amplitude = rng.uniform(1.5, 2.5)
            t = np.linspace(0.0, 2.0 * np.pi, length)
            return amplitude * np.sin(frequency * t + phase)

        return generator

    frequencies = [2.0 + 3.0 * i for i in range(n_classes)]
    return _assemble(
        "sine_families",
        "synthetic-periodic",
        [make_class(f) for f in frequencies],
        n_series,
        length,
        noise,
        random_state,
        {"frequencies": frequencies},
    )


def make_seasonal_mixture(
    n_series: int = 60, length: int = 160, noise: float = 0.3, random_state=None
) -> TimeSeriesDataset:
    """Three classes: pure seasonality, seasonality + trend, seasonality + level shifts."""

    def seasonal(rng: np.random.Generator) -> np.ndarray:
        t = np.linspace(0.0, 4.0 * np.pi, length)
        return 2.0 * np.sin(t * rng.uniform(1.8, 2.2))

    def seasonal_trend(rng: np.random.Generator) -> np.ndarray:
        t = np.linspace(0.0, 4.0 * np.pi, length)
        slope = rng.uniform(1.5, 2.5)
        return 2.0 * np.sin(t * rng.uniform(1.8, 2.2)) + np.linspace(0.0, slope * 2.0, length)

    def seasonal_shift(rng: np.random.Generator) -> np.ndarray:
        t = np.linspace(0.0, 4.0 * np.pi, length)
        series = 2.0 * np.sin(t * rng.uniform(1.8, 2.2))
        shift_at = int(rng.integers(length // 3, 2 * length // 3))
        series[shift_at:] += rng.uniform(2.5, 3.5)
        return series

    return _assemble(
        "seasonal_mixture",
        "synthetic-seasonal",
        [seasonal, seasonal_trend, seasonal_shift],
        n_series,
        length,
        noise,
        random_state,
        {"classes": ["seasonal", "seasonal+trend", "seasonal+shift"]},
    )


def make_trend_classes(
    n_series: int = 40, length: int = 96, noise: float = 0.3, random_state=None
) -> TimeSeriesDataset:
    """Two classes separated by trend direction (up vs down) with AR(1) noise."""

    def make_class(direction: float):
        def generator(rng: np.random.Generator) -> np.ndarray:
            slope = direction * rng.uniform(2.0, 3.0)
            ar = np.zeros(length)
            for i in range(1, length):
                ar[i] = 0.6 * ar[i - 1] + rng.normal(0.0, 0.3)
            return np.linspace(0.0, slope, length) + ar

        return generator

    return _assemble(
        "trend_classes",
        "synthetic-trend",
        [make_class(1.0), make_class(-1.0)],
        n_series,
        length,
        noise,
        random_state,
        {"classes": ["up", "down"]},
    )


def make_random_walk_regimes(
    n_series: int = 60, length: int = 128, noise: float = 0.1, random_state=None
) -> TimeSeriesDataset:
    """Three classes of random walks with different volatility / drift regimes."""

    def walk(drift: float, volatility: float):
        def generator(rng: np.random.Generator) -> np.ndarray:
            steps = rng.normal(drift, volatility, size=length)
            return np.cumsum(steps)

        return generator

    return _assemble(
        "random_walk_regimes",
        "synthetic-stochastic",
        [walk(0.0, 0.2), walk(0.15, 0.2), walk(0.0, 0.9)],
        n_series,
        length,
        noise,
        random_state,
        {"classes": ["flat-low-vol", "drift", "high-vol"]},
    )


def make_shapelet_classes(
    n_series: int = 60,
    length: int = 128,
    noise: float = 0.3,
    n_classes: int = 3,
    random_state=None,
) -> TimeSeriesDataset:
    """Each class is defined by a planted class-specific shapelet at a random offset."""
    n_classes = check_positive_int(n_classes, "n_classes", minimum=2)
    shapelet_length = max(8, length // 8)

    def make_class(class_id: int):
        # Deterministic shapelet per class (independent of the noise RNG).
        shapelet_rng = np.random.default_rng(1_000 + class_id)
        shapelet = np.cumsum(shapelet_rng.normal(0.0, 1.0, size=shapelet_length))
        shapelet = 3.0 * (shapelet - shapelet.mean()) / (shapelet.std() + 1e-12)

        def generator(rng: np.random.Generator) -> np.ndarray:
            series = rng.normal(0.0, 0.2, size=length)
            offset = int(rng.integers(0, length - shapelet_length))
            series[offset: offset + shapelet_length] += shapelet
            return series

        return generator

    return _assemble(
        "shapelet_classes",
        "synthetic-shape",
        [make_class(i) for i in range(n_classes)],
        n_series,
        length,
        noise,
        random_state,
        {"shapelet_length": shapelet_length},
    )


def make_spiky_patterns(
    n_series: int = 50, length: int = 128, noise: float = 0.2, random_state=None
) -> TimeSeriesDataset:
    """Two classes: sparse positive spikes vs dense low spikes (sensor-like)."""

    def sparse(rng: np.random.Generator) -> np.ndarray:
        series = np.zeros(length)
        for _ in range(int(rng.integers(2, 4))):
            series += _bump(length, int(rng.integers(5, length - 5)), 4, rng.uniform(4.0, 6.0))
        return series

    def dense(rng: np.random.Generator) -> np.ndarray:
        series = np.zeros(length)
        for _ in range(int(rng.integers(8, 14))):
            series += _bump(length, int(rng.integers(5, length - 5)), 4, rng.uniform(1.0, 2.0))
        return series

    return _assemble(
        "spiky_patterns",
        "synthetic-sensor",
        [sparse, dense],
        n_series,
        length,
        noise,
        random_state,
        {"classes": ["sparse-high", "dense-low"]},
    )


def make_noise_only(
    n_series: int = 40, length: int = 96, noise: float = 1.0, random_state=None
) -> TimeSeriesDataset:
    """A control dataset with no class structure (labels are random).

    Useful for sanity checks: every clustering method should score an ARI
    close to zero here, and the benchmark harness asserts that k-Graph does
    not hallucinate structure.
    """
    rng = check_random_state(random_state)

    def white(rng_inner: np.random.Generator) -> np.ndarray:
        return rng_inner.normal(0.0, 1.0, size=length)

    dataset = _assemble(
        "noise_only",
        "synthetic-control",
        [white, white],
        n_series,
        length,
        noise,
        rng,
        {"control": True},
    )
    # Shuffle the labels so they carry no information at all.
    shuffled = check_random_state(rng).permutation(dataset.labels)
    return dataset.with_labels(shuffled)


def make_mixed_bag(
    n_series: int = 80, length: int = 128, noise: float = 0.25, random_state=None
) -> TimeSeriesDataset:
    """Four heterogeneous classes (plateau, oscillation, ramp, spike train)."""

    def plateau(rng: np.random.Generator) -> np.ndarray:
        return _plateau(length, int(rng.integers(10, length // 2)), length // 4, rng.uniform(3, 5))

    def oscillation(rng: np.random.Generator) -> np.ndarray:
        t = np.linspace(0.0, 6.0 * np.pi, length)
        return 2.0 * np.sin(t + rng.uniform(0, 2 * np.pi))

    def ramp(rng: np.random.Generator) -> np.ndarray:
        return np.linspace(0.0, rng.uniform(3.0, 5.0), length)

    def spikes(rng: np.random.Generator) -> np.ndarray:
        series = np.zeros(length)
        for _ in range(5):
            series += _bump(length, int(rng.integers(5, length - 5)), 3, rng.uniform(2.5, 4.0))
        return series

    return _assemble(
        "mixed_bag",
        "synthetic-mixed",
        [plateau, oscillation, ramp, spikes],
        n_series,
        length,
        noise,
        random_state,
        {"classes": ["plateau", "oscillation", "ramp", "spikes"]},
    )
