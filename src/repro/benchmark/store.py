"""Persistence of benchmark results as JSON (and CSV export).

The Benchmark frame reads a pre-computed result file when available so the
GUI loads instantly; the benchmark harness writes these files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.benchmark.runner import BenchmarkResult
from repro.exceptions import BenchmarkError


def save_results(
    results: Sequence[BenchmarkResult], path: Union[str, Path], *, fmt: str = "json"
) -> Path:
    """Write results to ``path`` in JSON (default) or CSV format."""
    if not results:
        raise BenchmarkError("cannot save an empty result set")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = [result.to_dict() for result in results]
    if fmt == "json":
        with path.open("w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2, sort_keys=True)
    elif fmt == "csv":
        fieldnames = sorted({key for row in rows for key in row})
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
    else:
        raise BenchmarkError(f"unknown format {fmt!r}; use 'json' or 'csv'")
    return path


def load_results(path: Union[str, Path]) -> List[BenchmarkResult]:
    """Load results previously written by :func:`save_results` (JSON only)."""
    path = Path(path)
    if not path.exists():
        raise BenchmarkError(f"result file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        rows = json.load(handle)
    if not isinstance(rows, list):
        raise BenchmarkError("result file must contain a JSON list")
    return [BenchmarkResult.from_dict(row) for row in rows]
