"""Unit tests for time series distance measures."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.distances import (
    align_by_sbd,
    cross_correlation,
    dtw_distance,
    dtw_path,
    euclidean_distance,
    get_metric,
    pairwise_distances,
    sbd_distance,
    znormalized_euclidean_distance,
)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_identity(self, rng):
        series = rng.normal(size=20)
        assert euclidean_distance(series, series) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        a, b = rng.normal(size=20), rng.normal(size=20)
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            euclidean_distance([1, 2], [1, 2, 3])

    def test_znormalized_ignores_scale_and_offset(self, rng):
        a = rng.normal(size=50)
        b = 3.0 * a + 10.0
        assert znormalized_euclidean_distance(a, b) == pytest.approx(0.0, abs=1e-8)


class TestCrossCorrelationAndSBD:
    def test_ncc_length(self, rng):
        a, b = rng.normal(size=32), rng.normal(size=32)
        assert cross_correlation(a, b).shape == (63,)

    def test_ncc_self_peak_is_one_at_zero_shift(self, rng):
        a = rng.normal(size=64)
        ncc = cross_correlation(a, a)
        assert ncc[63] == pytest.approx(1.0, abs=1e-8)
        assert np.argmax(ncc) == 63

    def test_sbd_identity_and_bounds(self, rng):
        a = rng.normal(size=40)
        assert sbd_distance(a, a) == pytest.approx(0.0, abs=1e-8)
        b = rng.normal(size=40)
        assert 0.0 <= sbd_distance(a, b) <= 2.0

    def test_sbd_tolerates_small_shifts(self):
        # SBD normalises by the full-length norms, so a shift of s out of n
        # points costs at most about s/n; it must stay far below the distance
        # to an uncorrelated series.
        t = np.linspace(0, 4 * np.pi, 100)
        a = np.sin(t)
        shifted = np.roll(a, 5)
        unrelated = np.cos(7.3 * t + 1.0)
        assert sbd_distance(a, shifted) < 0.12
        assert sbd_distance(a, shifted) < sbd_distance(a, unrelated)

    def test_sbd_returns_shift(self):
        a = np.zeros(50)
        a[10:20] = 1.0
        b = np.roll(a, 7)
        _, shift = sbd_distance(a, b, return_shift=True)
        assert abs(shift) == 7

    def test_sbd_zero_series(self):
        assert sbd_distance(np.zeros(10), np.zeros(10)) == pytest.approx(1.0)

    def test_align_by_sbd_reduces_distance(self):
        a = np.zeros(60)
        a[10:25] = 1.0
        b = np.roll(a, 9)
        aligned = align_by_sbd(a, b)
        assert euclidean_distance(a, aligned) < euclidean_distance(a, b)


class TestDTW:
    def test_identity(self, rng):
        series = rng.normal(size=30)
        assert dtw_distance(series, series) == pytest.approx(0.0)

    def test_upper_bounded_by_euclidean(self, rng):
        a, b = rng.normal(size=30), rng.normal(size=30)
        assert dtw_distance(a, b) <= euclidean_distance(a, b) + 1e-9

    def test_handles_warping(self):
        a = np.sin(np.linspace(0, 2 * np.pi, 50))
        b = np.sin(np.linspace(0, 2 * np.pi, 70))
        assert dtw_distance(a, b) < 1.0

    def test_window_constraint_increases_distance(self):
        a = np.sin(np.linspace(0, 2 * np.pi, 50))
        b = np.roll(a, 10)
        unconstrained = dtw_distance(a, b)
        constrained = dtw_distance(a, b, window=1)
        assert constrained >= unconstrained

    def test_negative_window_rejected(self):
        with pytest.raises(ValidationError):
            dtw_distance([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], window=-1)

    def test_path_endpoints(self):
        distance, path = dtw_path(np.arange(5.0), np.arange(7.0))
        assert path[0] == (0, 0)
        assert path[-1] == (4, 6)
        assert distance >= 0


class TestPairwise:
    def test_euclidean_fast_path_matches_loop(self, rng):
        data = rng.normal(size=(8, 12))
        fast = pairwise_distances(data, metric="euclidean")
        slow = np.array(
            [[euclidean_distance(a, b) for b in data] for a in data]
        )
        assert np.allclose(fast, slow, atol=1e-6)

    def test_symmetric_zero_diagonal(self, rng):
        data = rng.normal(size=(6, 20))
        for metric in ("euclidean", "sbd", "dtw"):
            matrix = pairwise_distances(data, metric=metric)
            assert np.allclose(matrix, matrix.T, atol=1e-10)
            assert np.allclose(np.diag(matrix), 0.0, atol=1e-6)

    def test_unknown_metric(self):
        with pytest.raises(ValidationError):
            get_metric("manhattan-ish")


class TestPairwiseBackendFanout:
    """Row-strip fan-out of pairwise_distances over execution backends."""

    @pytest.mark.parametrize(
        ("metric", "kwargs"),
        [
            ("euclidean", {"exact": True}),
            ("zeuclidean", {}),
            ("sbd", {}),
            ("dtw", {}),
            ("dtw", {"window": 5}),
        ],
    )
    def test_fanout_is_bit_identical_to_serial(self, rng, metric, kwargs):
        data = rng.normal(size=(24, 32))
        serial = pairwise_distances(data, metric=metric, **kwargs)
        fanned = pairwise_distances(data, metric=metric, backend="thread", **kwargs)
        assert np.array_equal(serial, fanned)

    def test_fanout_over_process_backend(self, rng):
        from repro.parallel import ProcessBackend

        data = rng.normal(size=(20, 16))
        serial = pairwise_distances(data, metric="sbd")
        with ProcessBackend(2) as backend:
            fanned = pairwise_distances(data, metric="sbd", backend=backend)
        assert np.array_equal(serial, fanned)

    def test_gram_fanout_matches_to_float_tolerance(self, rng):
        # The gram formulation is documented as not bit-identical (GEMM
        # blocking is shape-dependent); off-diagonal values still agree.
        data = rng.normal(size=(16, 16))
        serial = pairwise_distances(data, metric="euclidean")
        fanned = pairwise_distances(data, metric="euclidean", backend="thread")
        off = ~np.eye(16, dtype=bool)
        assert np.allclose(serial[off], fanned[off], atol=1e-9)

    def test_single_row_and_reference_fallback(self, rng):
        one = rng.normal(size=(1, 8))
        assert pairwise_distances(one, backend="thread").shape == (1, 1)
        # Unknown metric kwargs fall back to the reference loop (backend
        # ignored there) instead of failing.
        data = rng.normal(size=(4, 8))
        result = pairwise_distances(
            data, metric="sbd", backend="thread", return_shift=False
        )
        assert result.shape == (4, 4)
