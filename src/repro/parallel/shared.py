"""Zero-copy shared-memory dataset plans for process backends.

A :class:`~repro.parallel.backends.ProcessBackend` pickles every job — and a
fan-out like ``KGraph.fit`` embeds the *same* dataset array in every
per-length job, so the dataset crosses the process boundary once per job.
This module removes that cost:

* :class:`SharedArrayPlan` writes each distinct array into a POSIX
  shared-memory segment **once** and hands out tiny picklable references;
* unpickling a reference in a worker attaches to the segment and yields a
  read-only NumPy **view** of the same physical pages — no copy, no
  per-job serialisation of the data;
* :class:`SharedMemoryBackend` applies this transparently: before
  submitting, it walks each job (dataclass fields, dict values, tuple/list
  elements) and swaps every large ``ndarray`` for a reference, de-duplicated
  by object identity, so callers and job functions keep working with plain
  arrays and nothing else in the codebase changes.

Large *results* travel the same road in the opposite direction: the
backend wraps the job function so workers park every big result ndarray in
a fresh segment and ship back a tiny :class:`_SharedResultRef`
(:func:`publish_result_arrays`).  The coordinator's
:class:`SharedResultPlan` attaches each segment, **copies** the array out
(copy-on-detach: results must outlive the segment) and unlinks it
immediately, so result segments live only for the attach-copy window and
every one is accounted for.  Sharing results is on by default
(``share_results=True``) and degrades to plain pickling per result if a
worker cannot create segments.

Worker-side views are marked read-only: jobs receive the caller's dataset
by reference, and silently mutating it from several workers would be a
correctness bug, not a feature.  Segments are unlinked by the parent as
soon as ``map_jobs`` returns; attached workers keep their mappings valid
until they drop them (POSIX keeps the pages alive while mapped).

When shared memory is unavailable (exotic platforms, exhausted
``/dev/shm``), the backend degrades gracefully to plain pickling.
"""

from __future__ import annotations

import dataclasses
import traceback as traceback_module
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

from repro.exceptions import ParallelExecutionError, ValidationError
from repro.parallel.backends import JobOutcome, OnResult, ProcessBackend
from repro.parallel.retry import RetryPolicy

#: Arrays smaller than this travel as plain pickles: a shared-memory
#: segment costs a file descriptor and an mmap per worker, which only pays
#: off once the array itself is non-trivial.
DEFAULT_MIN_SHARE_BYTES = 64 * 1024

# Worker-side cache of attached segments: segment name -> SharedMemory.
# Keeping the handle referenced keeps the mapping (and therefore every
# ndarray view handed to jobs) valid; entries are pruned opportunistically
# once views are garbage and the cache grows past _ATTACH_CACHE_LIMIT.
# The limit is deliberately tiny: a fan-out rarely shares more than one or
# two distinct arrays, and every cached segment pins dataset-sized pages
# in the worker even after the parent unlinked the name.
_ATTACHED: "OrderedDict[str, Any]" = OrderedDict()
_ATTACH_CACHE_LIMIT = 2

def _tracker_disown(shm: Any) -> None:
    """Drop the resource-tracker registration for a segment we will not unlink.

    On Python < 3.13 ``SharedMemory(create=True)`` (and plain attach)
    register the name with the resource tracker.  Result segments are
    created in a worker but unlinked by the coordinator, so the worker
    balances its own registration immediately after creating — otherwise
    the registration dangles and, if the worker's tracker is private (it
    forked before any tracker existed), warns about "leaked shared_memory
    objects" at shutdown.  :meth:`ProcessBackend._executor` starts the
    tracker before the pool so workers normally share the coordinator's
    tracker, making this a balanced add/remove on one shared set.
    """
    try:  # pragma: no cover - exercised only on Python < 3.13
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - bookkeeping must never fail a job
        pass


def _tracker_adopt(shm: Any) -> None:
    """Re-register a disowned segment so ``unlink`` can unregister it."""
    try:  # pragma: no cover - exercised only on Python < 3.13
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001
        pass


def _prune_attached() -> None:
    """Drop attached segments whose views are gone, oldest first."""
    while len(_ATTACHED) > _ATTACH_CACHE_LIMIT:
        name, shm = next(iter(_ATTACHED.items()))
        try:
            shm.close()
        except BufferError:
            # A live view still exports the buffer: keep the segment and
            # stop pruning (younger entries are even more likely in use).
            _ATTACHED.move_to_end(name)
            return
        except Exception:  # noqa: BLE001 - any other failure means the
            # handle is already unusable (torn mapping, double close):
            # keeping it would pin the cache forever and stop all future
            # pruning, leaking every segment attached after it.  Drop it —
            # the mapping, if any survives, is released with the process.
            pass
        del _ATTACHED[name]


def _attach_shared_array(name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
    """Worker-side reconstructor: attach to a segment, return a read-only view.

    This is what a pickled :class:`_SharedArrayRef` unpickles *into* — job
    functions receive an ordinary ``ndarray`` and never see the plumbing.
    """
    shm = _ATTACHED.get(name)
    if shm is None:
        try:
            shm = _shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - track= needs Python >= 3.13
            # < 3.13 also registers the attach with the resource tracker.
            # Workers share the coordinator's tracker (started before the
            # pool, see ProcessBackend._executor), so this is an idempotent
            # re-add of a name the coordinator's unlink removes exactly once.
            shm = _shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
        _prune_attached()
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view


class _SharedArrayRef:
    """Tiny picklable stand-in for an array living in shared memory.

    Pickling one of these costs ~100 bytes regardless of the array size;
    unpickling yields the attached ndarray view itself (see
    :func:`_attach_shared_array`), so the substitution is invisible to job
    functions.
    """

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str) -> None:
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __reduce__(self):
        return (_attach_shared_array, (self.name, self.shape, self.dtype))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_SharedArrayRef(name={self.name!r}, shape={self.shape}, dtype={self.dtype})"


class SharedArrayPlan:
    """Parent-side owner of the shared segments for one fan-out.

    ``share`` copies an array into shared memory the first time it sees it
    (identity-deduplicated, so the dataset embedded in M per-length jobs is
    written once) and returns the reference to embed in the job instead.
    ``close`` unlinks every segment; call it once all results are in.
    """

    def __init__(self) -> None:
        self._segments: List[Any] = []
        self._refs_by_id: Dict[int, _SharedArrayRef] = {}
        # Shared arrays must stay alive while their id() keys are in use —
        # a recycled id would alias a different array to a stale segment.
        self._keepalive: List[np.ndarray] = []

    @property
    def n_segments(self) -> int:
        """Number of distinct segments created so far."""
        return len(self._segments)

    def share(self, array: np.ndarray) -> _SharedArrayRef:
        """Return the shared-memory reference for ``array``, creating it once."""
        if _shared_memory is None:  # pragma: no cover - platform dependent
            raise ValidationError("shared memory is not available on this platform")
        existing = self._refs_by_id.get(id(array))
        if existing is not None:
            return existing
        contiguous = np.ascontiguousarray(array)
        shm = _shared_memory.SharedMemory(create=True, size=max(1, contiguous.nbytes))
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf)
        view[...] = contiguous
        ref = _SharedArrayRef(shm.name, contiguous.shape, contiguous.dtype.str)
        self._segments.append(shm)
        self._refs_by_id[id(array)] = ref
        self._keepalive.append(array)
        return ref

    def close(self) -> None:
        """Unlink every segment created by this plan (idempotent)."""
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            try:
                shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()
        self._refs_by_id.clear()
        self._keepalive.clear()

    def __enter__(self) -> "SharedArrayPlan":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


#: Containers are walked to this fixed depth (payload containers, not
#: arbitrary object graphs) by every array-swapping traversal below.
_PAYLOAD_DEPTH = 3


def _swap_leaves(value: Any, swap: Callable[[Any], Any], _depth: int) -> Any:
    """Rebuild ``value`` with ``swap`` applied to every non-container leaf.

    Walks dataclass fields, dict values and tuple/list elements up to a
    small fixed depth and rebuilds each container only when something
    actually changed, so payloads without matching leaves pass through
    untouched (by identity).  Shared by job substitution
    (ndarray -> :class:`_SharedArrayRef`) and the two result directions
    (ndarray -> :class:`_SharedResultRef` worker-side, ref -> ndarray
    coordinator-side).
    """
    if not isinstance(value, (dict, tuple, list)) and not (
        dataclasses.is_dataclass(value) and not isinstance(value, type)
    ):
        return swap(value)
    if _depth <= 0:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        changes = {}
        for field in dataclasses.fields(value):
            item = getattr(value, field.name)
            replaced = _swap_leaves(item, swap, _depth - 1)
            if replaced is not item:
                changes[field.name] = replaced
        return dataclasses.replace(value, **changes) if changes else value
    if isinstance(value, dict):
        replaced_items = {
            key: _swap_leaves(item, swap, _depth - 1) for key, item in value.items()
        }
        if all(replaced_items[key] is value[key] for key in value):
            return value
        return replaced_items
    replaced_seq = [_swap_leaves(item, swap, _depth - 1) for item in value]
    if all(new is old for new, old in zip(replaced_seq, value)):
        return value
    if isinstance(value, tuple):
        # Preserve namedtuples (their constructor takes positional args).
        cls = type(value)
        return cls(*replaced_seq) if hasattr(cls, "_fields") else tuple(replaced_seq)
    return replaced_seq


def substitute_shared_arrays(
    job: Any,
    plan: SharedArrayPlan,
    min_bytes: int = DEFAULT_MIN_SHARE_BYTES,
    _depth: int = _PAYLOAD_DEPTH,
) -> Any:
    """Return ``job`` with every large ndarray swapped for a shared reference."""

    def swap(leaf: Any) -> Any:
        if isinstance(leaf, np.ndarray) and leaf.nbytes >= min_bytes:
            return plan.share(leaf)
        return leaf

    return _swap_leaves(job, swap, _depth)


# --------------------------------------------------------------------------- #
# zero-copy result return (worker writes, coordinator attaches + unlinks)
# --------------------------------------------------------------------------- #
class _SharedResultRef:
    """Picklable descriptor of a result array a worker parked in a segment.

    Unlike :class:`_SharedArrayRef` it does **not** auto-attach on
    unpickling: the coordinator resolves refs explicitly through a
    :class:`SharedResultPlan` so every segment's attach/copy/unlink is
    accounted for exactly once.
    """

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str) -> None:
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __reduce__(self):
        return (_SharedResultRef, (self.name, self.shape, self.dtype))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_SharedResultRef(name={self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype})"
        )


def _create_segment(nbytes: int):
    """Create an untracked segment (the creator is never the unlinker here).

    Result segments are created in a worker but unlinked by the
    coordinator, so the creating process must not hold a resource-tracker
    registration: on < 3.13 (no ``track=``) the registration is dropped
    right after creation and the segment is marked disowned, which
    :func:`_destroy_segment` undoes if the worker has to roll back.
    """
    try:
        return _shared_memory.SharedMemory(create=True, size=max(1, nbytes), track=False)
    except TypeError:  # pragma: no cover - track= needs Python >= 3.13
        shm = _shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        _tracker_disown(shm)
        shm._repro_disowned = True
        return shm


def _destroy_segment(shm: Any) -> None:
    """Best-effort close + unlink of a segment this process created."""
    try:
        shm.close()
    except Exception:  # noqa: BLE001 - best-effort rollback
        pass
    if getattr(shm, "_repro_disowned", False):
        # unlink() unregisters on < 3.13; restore the registration first so
        # the tracker is not asked to remove a name it no longer holds.
        _tracker_adopt(shm)
    try:
        shm.unlink()
    except Exception:  # noqa: BLE001
        pass


def publish_result_arrays(
    value: Any, min_bytes: int = DEFAULT_MIN_SHARE_BYTES
) -> Any:
    """Worker-side: park every large result ndarray in shared memory.

    Returns ``value`` with each ndarray of at least ``min_bytes`` replaced
    by a :class:`_SharedResultRef`; the worker's own handles are closed
    before returning (the segment stays alive under its name until the
    coordinator unlinks it).  Any failure — shared memory unavailable,
    ``/dev/shm`` exhausted mid-walk — unlinks whatever this call already
    created and returns the original ``value`` untouched, degrading that
    one result to plain pickling.
    """
    if _shared_memory is None:  # pragma: no cover - platform dependent
        return value
    created: List[Any] = []

    def swap(leaf: Any) -> Any:
        if not isinstance(leaf, np.ndarray) or leaf.nbytes < min_bytes:
            return leaf
        contiguous = np.ascontiguousarray(leaf)
        shm = _create_segment(contiguous.nbytes)
        created.append(shm)
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf)
        view[...] = contiguous
        return _SharedResultRef(shm.name, contiguous.shape, contiguous.dtype.str)

    try:
        replaced = _swap_leaves(value, swap, _PAYLOAD_DEPTH)
    except Exception:  # noqa: BLE001 - degrade this result to plain pickling
        for shm in created:
            _destroy_segment(shm)
        return value
    for shm in created:
        try:
            shm.close()
        except Exception:  # pragma: no cover - buffer still exported
            pass
    return replaced


class SharedResultPlan:
    """Coordinator-side resolver for worker-published result segments.

    ``resolve`` walks a job result, attaches every
    :class:`_SharedResultRef`, **copies** the array out (copy-on-detach:
    the result must stay valid after the segment is gone) and closes +
    unlinks the segment immediately, keeping per-plan accounting of
    segments and bytes recovered.  A segment that cannot be attached
    raises — the backend converts that outcome into a per-job error, it
    never silently hands back a ref.
    """

    def __init__(self) -> None:
        self.segments_resolved = 0
        self.bytes_resolved = 0

    def resolve(self, value: Any) -> Any:
        def swap(leaf: Any) -> Any:
            if not isinstance(leaf, _SharedResultRef):
                return leaf
            try:
                try:
                    shm = _shared_memory.SharedMemory(name=leaf.name, track=False)
                except TypeError:  # pragma: no cover - Python < 3.13
                    shm = _shared_memory.SharedMemory(name=leaf.name)
            except Exception as exc:
                raise ParallelExecutionError(
                    f"result segment {leaf.name!r} could not be attached: {exc}"
                ) from exc
            try:
                view = np.ndarray(leaf.shape, dtype=np.dtype(leaf.dtype), buffer=shm.buf)
                array = np.array(view)
                del view
            finally:
                try:
                    shm.close()
                except Exception:  # pragma: no cover - best-effort teardown
                    pass
                try:
                    shm.unlink()
                except Exception:  # pragma: no cover - already unlinked
                    pass
            self.segments_resolved += 1
            self.bytes_resolved += array.nbytes
            return array

        return _swap_leaves(value, swap, _PAYLOAD_DEPTH)


class _PublishingRunner:
    """Picklable wrapper: run the job function, then park large results."""

    def __init__(self, fn: Callable[[Any], Any], min_bytes: int) -> None:
        self.fn = fn
        self.min_bytes = min_bytes

    def __call__(self, job: Any) -> Any:
        return publish_result_arrays(self.fn(job), self.min_bytes)


class SharedMemoryBackend(ProcessBackend):
    """Process pool that ships large job arrays through shared memory.

    Behaves exactly like :class:`ProcessBackend` (same ordered results,
    per-job error capture, chunking) but, before submitting, swaps every
    ndarray of at least ``min_share_bytes`` embedded in a job for a
    zero-copy shared-memory reference — de-duplicated across jobs, so a
    dataset repeated in every job of a fan-out crosses the process boundary
    once instead of once per job.  Worker-side views are read-only; see the
    module docstring for lifecycle details.

    With ``share_results=True`` (the default) the reverse direction is
    zero-pickle too: workers park every result ndarray of at least
    ``min_result_bytes`` in a fresh segment and the coordinator copies it
    out and unlinks before the caller (or its ``on_result`` callback) ever
    sees the outcome — callers always receive plain arrays.  Cumulative
    recovery counters live on :attr:`result_segments` /
    :attr:`result_bytes`.

    Select it anywhere a backend is accepted with ``backend="shared"``
    (aliases ``"shared_memory"``) or by passing an instance.
    """

    name = "shared_memory"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        *,
        chunk_size: int = 1,
        min_share_bytes: int = DEFAULT_MIN_SHARE_BYTES,
        share_results: bool = True,
        min_result_bytes: int = DEFAULT_MIN_SHARE_BYTES,
    ) -> None:
        super().__init__(n_workers, chunk_size=chunk_size)
        if int(min_share_bytes) < 0:
            raise ValidationError(
                f"min_share_bytes must be >= 0, got {min_share_bytes}"
            )
        if int(min_result_bytes) < 0:
            raise ValidationError(
                f"min_result_bytes must be >= 0, got {min_result_bytes}"
            )
        self.min_share_bytes = int(min_share_bytes)
        self.share_results = bool(share_results)
        self.min_result_bytes = int(min_result_bytes)
        #: Cumulative count / bytes of result arrays recovered from
        #: worker-published segments across every ``map_jobs`` call.
        self.result_segments = 0
        self.result_bytes = 0

    def _resolve_outcome(self, outcome: JobOutcome, plan: SharedResultPlan) -> None:
        """Swap any published refs in ``outcome.value`` for copied arrays.

        A resolution failure (the segment vanished, attach denied) becomes
        a per-job error on the outcome — same isolation contract as a
        raising job.
        """
        if not outcome.ok or outcome.value is None:
            return
        try:
            outcome.value = plan.resolve(outcome.value)
        except Exception as exc:  # noqa: BLE001 - per-job isolation
            outcome.value = None
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.exception = exc
            outcome.traceback = traceback_module.format_exc()

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        plan = SharedArrayPlan()
        publishing = self.share_results and _shared_memory is not None
        submit_fn = _PublishingRunner(fn, self.min_result_bytes) if publishing else fn
        result_plan = SharedResultPlan()
        resolved_ids = set()

        def resolve_refs(outcome: JobOutcome) -> None:
            # Runs inside ProcessBackend's settle step, *before* its retry
            # decision and before on_result observes the outcome (still on
            # the calling thread, per the map_jobs contract) — so a vanished
            # result segment is a retryable per-job failure, and refs never
            # leak to the caller.
            self._resolve_outcome(outcome, result_plan)
            resolved_ids.add(id(outcome))

        try:
            try:
                submitted = [
                    substitute_shared_arrays(job, plan, self.min_share_bytes)
                    for job in jobs
                ]
            except Exception:
                # Shared memory unavailable or exhausted: degrade to plain
                # pickling rather than failing the fan-out.
                plan.close()
                plan = SharedArrayPlan()
                submitted = jobs
            outcomes = super().map_jobs(
                submit_fn,
                submitted,
                on_result=on_result,
                retry=retry,
                _finalize=resolve_refs if publishing else None,
            )
            if publishing:
                # Belt and braces: every settled outcome already passed
                # through the finalize hook; anything that somehow did not
                # is resolved here so a ref can never escape.
                for outcome in outcomes:
                    if id(outcome) not in resolved_ids:
                        self._resolve_outcome(outcome, result_plan)
                self.result_segments += result_plan.segments_resolved
                self.result_bytes += result_plan.bytes_resolved
            return outcomes
        finally:
            # Results are all in (or the pool broke): the segments have done
            # their job either way.  Workers that are still attached keep
            # their mappings; unlinking only removes the name.
            plan.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedMemoryBackend(n_workers={self.n_workers}, "
            f"chunk_size={self.chunk_size}, min_share_bytes={self.min_share_bytes}, "
            f"share_results={self.share_results})"
        )
