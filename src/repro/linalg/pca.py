"""Principal Component Analysis via singular value decomposition.

Used by the k-Graph embedding to project all subsequences of a given length
into a low-dimensional space (two or three components) while keeping the
dominant shape information, exactly as described in Section II-A of the
paper ("For each graph, PCA is applied, allowing us to project the
subsequences into a two-dimensional space while retaining their essential
shapes").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array, check_positive_int


class PCA:
    """Exact PCA with the scikit-learn ``fit`` / ``transform`` API.

    Parameters
    ----------
    n_components:
        Number of principal directions to keep.  Must not exceed
        ``min(n_samples, n_features)`` at fit time.
    whiten:
        When true, scale projected coordinates to unit variance per component.

    Attributes
    ----------
    components_:
        Array of shape ``(n_components, n_features)``; rows are principal axes.
    explained_variance_:
        Variance captured by each component.
    explained_variance_ratio_:
        Fraction of the total variance captured by each component.
    mean_:
        Per-feature mean removed before projection.
    """

    def __init__(self, n_components: int = 2, whiten: bool = False) -> None:
        self.n_components = check_positive_int(n_components, "n_components")
        self.whiten = bool(whiten)
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None
        self.singular_values_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None
        self.n_samples_: int = 0
        self.n_features_: int = 0

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "PCA":
        """Estimate the principal axes of ``data`` (shape n_samples x n_features)."""
        array = check_array(data, name="data", ndim=2, min_rows=2)
        n_samples, n_features = array.shape
        if self.n_components > min(n_samples, n_features):
            raise ValidationError(
                f"n_components={self.n_components} exceeds min(n_samples, n_features)="
                f"{min(n_samples, n_features)}"
            )
        self.mean_ = array.mean(axis=0)
        centered = array - self.mean_
        # Economy SVD: centered = U S Vt, principal axes are rows of Vt.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        explained_variance = (singular_values**2) / (n_samples - 1)
        total_variance = float(explained_variance.sum())

        self.components_ = vt[: self.n_components]
        self.singular_values_ = singular_values[: self.n_components]
        self.explained_variance_ = explained_variance[: self.n_components]
        if total_variance > 0:
            self.explained_variance_ratio_ = self.explained_variance_ / total_variance
        else:
            self.explained_variance_ratio_ = np.zeros(self.n_components)
        self.n_samples_ = n_samples
        self.n_features_ = n_features
        return self

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise NotFittedError("PCA instance is not fitted yet; call fit() first")

    def transform(self, data) -> np.ndarray:
        """Project ``data`` onto the fitted principal axes."""
        self._check_fitted()
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if array.shape[1] != self.n_features_:
            raise ValidationError(
                f"data has {array.shape[1]} features, PCA was fitted with {self.n_features_}"
            )
        projected = (array - self.mean_) @ self.components_.T
        if self.whiten:
            scale = np.sqrt(self.explained_variance_)
            scale = np.where(scale < 1e-12, 1.0, scale)
            projected = projected / scale
        return projected

    def fit_transform(self, data) -> np.ndarray:
        """Fit the model on ``data`` and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected) -> np.ndarray:
        """Map projected coordinates back to the original feature space."""
        self._check_fitted()
        array = check_array(projected, name="projected", ndim=2, min_rows=1)
        if array.shape[1] != self.components_.shape[0]:
            raise ValidationError(
                f"projected data has {array.shape[1]} components, expected "
                f"{self.components_.shape[0]}"
            )
        if self.whiten:
            scale = np.sqrt(self.explained_variance_)
            array = array * scale
        return array @ self.components_ + self.mean_
