"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while still letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters are invalid."""


class ConfigError(ValidationError):
    """Raised when an estimator config payload is malformed.

    Covers schema-level problems of :mod:`repro.api` config objects —
    unknown or missing keys, unsupported config versions, failed version
    migrations — as opposed to *value* problems (an out-of-range field),
    which surface as plain :class:`ValidationError` from the shared
    validation helpers.  A subclass of :class:`ValidationError` so callers
    that treat "bad parameters" uniformly keep working.
    """


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model method requiring a prior ``fit`` is called too early."""


class ConvergenceWarningError(ReproError, RuntimeError):
    """Raised when an iterative solver cannot make progress at all.

    Most solvers in this library return their best effort instead of raising;
    this error is reserved for situations where no usable result exists
    (for example an empty eigen-decomposition).
    """


class DatasetError(ReproError, ValueError):
    """Raised when a dataset cannot be generated, loaded, or parsed."""


class GraphConstructionError(ReproError, RuntimeError):
    """Raised when the graph embedding cannot be built for a dataset."""


class BenchmarkError(ReproError, RuntimeError):
    """Raised when a benchmark run is misconfigured or produced no results."""


class VisualizationError(ReproError, RuntimeError):
    """Raised when a frame or dashboard cannot be rendered."""


class ParallelExecutionError(ReproError, RuntimeError):
    """Raised when a parallel job fails and its original exception is lost.

    Backends keep the worker's exception object whenever it survives the
    trip back (always for serial/thread execution); this error is the
    fallback wrapper when only the formatted message is available.
    """


class PipelineError(ReproError, RuntimeError):
    """Raised when a stage pipeline is malformed or a stage misbehaves.

    Covers wiring problems detected before execution (a stage consuming a
    value no earlier stage produces, two stages producing the same value)
    and contract violations detected at run time (a stage returning outputs
    it did not declare).
    """


class ArtifactError(ReproError, RuntimeError):
    """Raised when a model artifact cannot be saved, loaded, or validated.

    Covers both on-disk format problems (missing files, corrupted payloads,
    unsupported schema versions) and registry-level failures (unknown
    dataset/model identifiers, publishing conflicts).
    """


class ModelNotFoundError(ArtifactError):
    """Raised when a requested (dataset, model) pair is not in a registry.

    A subclass of :class:`ArtifactError` so existing handlers keep working,
    but distinct so the HTTP layer can answer 404 for a genuinely absent
    model while reporting a *corrupt* stored artifact as a server-side 500.
    """


class ServiceError(ReproError, RuntimeError):
    """Raised when the online inference service cannot fulfil a request.

    Used for serving-side failures that are not the caller's fault —
    a closed engine, a dispatch timeout, a worker that died mid-batch.
    Client-side problems (malformed series, unknown models) surface as
    :class:`ValidationError` / :class:`ArtifactError` instead, so the HTTP
    layer can map them to 4xx responses.
    """


class ServiceOverloadError(ServiceError):
    """The service is alive but shedding load (queue full, dispatch timeout).

    Distinct from a real fault: the request is expected to succeed if
    retried after :attr:`retry_after` seconds, so the HTTP layer answers
    503 with a ``Retry-After`` header instead of a 500.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: Suggested client back-off in seconds (the ``Retry-After`` value).
        self.retry_after = float(retry_after)


class ServiceFaultError(ServiceError):
    """A real serving-side fault (a worker died, a dispatch broke mid-batch).

    Unlike :class:`ServiceOverloadError`, retrying without operator
    attention is unlikely to help — the HTTP layer answers 500.
    """
