"""Dashboard assembly: all five frames in one self-contained HTML page.

This replaces the Streamlit multi-page app with a static artifact that can be
opened in any browser (or served by :mod:`repro.viz.server` for widget-style
interactivity via query parameters).
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.benchmark.runner import BenchmarkResult
from repro.exceptions import VisualizationError
from repro.viz.frames import (
    build_benchmark_frame,
    build_clustering_comparison_frame,
    build_graph_frame,
    build_interpretability_frame,
    build_under_the_hood_frame,
)
from repro.viz.session import GraphintSession

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 0; background: #f4f5f7; color: #222; }
header { background: #1f2a44; color: #fff; padding: 18px 28px; }
header h1 { margin: 0; font-size: 22px; }
header p { margin: 4px 0 0; color: #c7d0e0; font-size: 13px; }
nav { background: #2b3a5e; padding: 8px 28px; }
nav a { color: #dce4f5; margin-right: 18px; text-decoration: none; font-size: 13px; }
main { padding: 20px 28px; }
section.frame { background: #fff; border-radius: 8px; padding: 16px 20px; margin-bottom: 26px;
                box-shadow: 0 1px 3px rgba(0,0,0,0.12); }
section.frame h2 { margin-top: 0; font-size: 18px; color: #1f2a44; }
p.frame-description { color: #555; font-size: 13px; }
div.panel-grid { display: flex; flex-wrap: wrap; gap: 16px; }
div.panel { border: 1px solid #e3e6ec; border-radius: 6px; padding: 10px; background: #fcfcfd; }
div.panel h3 { margin: 0 0 6px; font-size: 14px; color: #33415c; }
p.caption { color: #777; font-size: 11px; margin: 6px 0 0; max-width: 460px; }
table.data-table { border-collapse: collapse; font-size: 12px; }
table.data-table th, table.data-table td { border: 1px solid #d8dce4; padding: 4px 8px; text-align: left; }
table.data-table th { background: #eef1f6; }
footer { padding: 14px 28px; color: #888; font-size: 12px; }
"""


def _page(title: str, subtitle: str, body: str, nav_items: Sequence[str]) -> str:
    nav = "".join(
        f'<a href="#{item}">{html.escape(item.replace("-", " ").title())}</a>' for item in nav_items
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<header><h1>{html.escape(title)}</h1><p>{html.escape(subtitle)}</p></header>"
        f"<nav>{nav}</nav>"
        f"<main>{body}</main>"
        "<footer>Graphint reproduction — graph-based interpretable time series clustering "
        "(k-Graph). Generated offline; all plots are self-contained SVG.</footer>"
        "</body></html>"
    )


def build_dashboard(
    session: GraphintSession,
    *,
    benchmark_results: Optional[Sequence[BenchmarkResult]] = None,
    measure: str = "ari",
    lambda_threshold: Optional[float] = None,
    gamma_threshold: Optional[float] = None,
    selected_node: Optional[int] = None,
    output_path: Optional[Union[str, Path]] = None,
) -> str:
    """Render the full dashboard for one fitted session.

    Parameters
    ----------
    session:
        A fitted :class:`GraphintSession` (``fit()`` is called if needed).
    benchmark_results:
        Optional pre-computed benchmark campaign; when omitted the Benchmark
        frame is skipped (it is the only frame needing multi-dataset data).
    measure, lambda_threshold, gamma_threshold, selected_node:
        Widget values forwarded to the frames.
    output_path:
        When given, the HTML is also written to this file.

    Returns
    -------
    The dashboard HTML as a string.
    """
    session.fit()
    session.build_quizzes()

    frames = []
    frames.append(
        build_clustering_comparison_frame(session.dataset, session.method_labels)
    )
    if benchmark_results:
        frames.append(build_benchmark_frame(benchmark_results, measure=measure))
    frames.append(
        build_graph_frame(
            session.kgraph,
            session.dataset,
            lambda_threshold=lambda_threshold,
            gamma_threshold=gamma_threshold,
            selected_node=selected_node,
        )
    )
    frames.append(build_interpretability_frame(session.quizzes, session.quiz_scores))
    frames.append(build_under_the_hood_frame(session.kgraph))

    body = "\n".join(frame.to_html() for frame in frames)
    summary = session.summary()
    subtitle = (
        f"dataset: {session.dataset.name} | {session.dataset.n_series} series x "
        f"{session.dataset.length} points | k = {session.n_clusters} | "
        f"k-Graph ARI = {summary['ari']['kgraph']:.3f}"
    )
    page = _page("Graphint", subtitle, body, [frame.frame_id for frame in frames])

    if output_path is not None:
        path = Path(output_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(page, encoding="utf-8")
    if not page.strip():
        raise VisualizationError("dashboard rendering produced an empty page")
    return page
