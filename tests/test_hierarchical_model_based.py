"""Unit tests for agglomerative, k-medoids, BIRCH, GMM and SOM clusterers."""

import numpy as np
import pytest

from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.birch import Birch
from repro.cluster.gaussian_mixture import GaussianMixture
from repro.cluster.kmedoids import KMedoids
from repro.cluster.som import SelfOrganizingMap
from repro.exceptions import ValidationError
from repro.metrics.clustering import adjusted_rand_index
from repro.metrics.distances import pairwise_distances


class TestAgglomerative:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
    def test_recovers_blobs_all_linkages(self, blob_data, linkage):
        points, truth = blob_data
        labels = AgglomerativeClustering(n_clusters=3, linkage=linkage).fit_predict(points)
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_precomputed_distances(self, blob_data):
        points, truth = blob_data
        matrix = pairwise_distances(points)
        labels = AgglomerativeClustering(
            n_clusters=3, linkage="average", metric="precomputed"
        ).fit_predict(matrix)
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_merge_history_length(self, blob_data):
        points, _ = blob_data
        model = AgglomerativeClustering(n_clusters=3, linkage="average").fit(points)
        assert len(model.merge_history_) == points.shape[0] - 3

    def test_n_clusters_equals_n_samples(self):
        points = np.arange(10, dtype=float).reshape(5, 2)
        labels = AgglomerativeClustering(n_clusters=5).fit_predict(points)
        assert np.unique(labels).size == 5

    def test_invalid_linkage(self):
        with pytest.raises(ValidationError):
            AgglomerativeClustering(2, linkage="centroid")

    def test_ward_requires_euclidean(self):
        with pytest.raises(ValidationError):
            AgglomerativeClustering(2, linkage="ward", metric="sbd")


class TestKMedoids:
    def test_recovers_blobs(self, blob_data):
        points, truth = blob_data
        labels = KMedoids(n_clusters=3, random_state=0).fit_predict(points)
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_medoids_are_sample_indices(self, blob_data):
        points, _ = blob_data
        model = KMedoids(n_clusters=3, random_state=0).fit(points)
        assert model.medoid_indices_.shape == (3,)
        assert np.all(model.medoid_indices_ < points.shape[0])

    def test_precomputed(self, blob_data):
        points, truth = blob_data
        matrix = pairwise_distances(points)
        labels = KMedoids(n_clusters=3, metric="precomputed", random_state=0).fit_predict(matrix)
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_inertia_positive(self, blob_data):
        points, _ = blob_data
        model = KMedoids(n_clusters=3, random_state=0).fit(points)
        assert model.inertia_ > 0

    def test_too_many_clusters(self, blob_data):
        points, _ = blob_data
        with pytest.raises(ValidationError):
            KMedoids(n_clusters=points.shape[0] + 1).fit(points)


class TestBirch:
    def test_recovers_blobs(self, blob_data):
        points, truth = blob_data
        labels = Birch(n_clusters=3, threshold=1.0).fit_predict(points)
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_subclusters_fewer_than_samples(self, blob_data):
        points, _ = blob_data
        model = Birch(n_clusters=3, threshold=1.5).fit(points)
        assert 3 <= model.subcluster_centers_.shape[0] <= points.shape[0]

    def test_tiny_threshold_still_works(self, blob_data):
        # Exceeding the branching factor doubles the threshold until it fits.
        points, truth = blob_data
        labels = Birch(n_clusters=3, threshold=1e-4, branching_factor=10).fit_predict(points)
        assert adjusted_rand_index(truth, labels) > 0.5

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            Birch(threshold=0.0)


class TestGaussianMixture:
    def test_recovers_blobs(self, blob_data):
        points, truth = blob_data
        labels = GaussianMixture(n_components=3, random_state=0).fit_predict(points)
        assert adjusted_rand_index(truth, labels) > 0.9

    def test_parameters_shapes(self, blob_data):
        points, _ = blob_data
        model = GaussianMixture(n_components=3, random_state=0).fit(points)
        assert model.weights_.shape == (3,)
        assert model.means_.shape == (3, 2)
        assert model.variances_.shape == (3, 2)
        assert model.weights_.sum() == pytest.approx(1.0)
        assert np.all(model.variances_ > 0)

    def test_predict_proba_rows_sum_to_one(self, blob_data):
        points, _ = blob_data
        model = GaussianMixture(n_components=3, random_state=0).fit(points)
        proba = model.predict_proba(points[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.array_equal(np.argmax(proba, axis=1), model.predict(points[:10]))

    def test_loglikelihood_finite(self, blob_data):
        points, _ = blob_data
        model = GaussianMixture(n_components=2, random_state=0).fit(points)
        assert np.isfinite(model.log_likelihood_)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            GaussianMixture(n_components=0)
        with pytest.raises(ValidationError):
            GaussianMixture(2, tol=0.0)
        with pytest.raises(ValidationError):
            GaussianMixture(2, reg_covar=-1.0)


class TestSelfOrganizingMap:
    def test_recovers_blobs(self, blob_data):
        points, truth = blob_data
        labels = SelfOrganizingMap(
            grid_shape=(3, 3), n_clusters=3, n_epochs=15, random_state=0
        ).fit_predict(points)
        assert adjusted_rand_index(truth, labels) > 0.8

    def test_unit_count_and_weights(self, blob_data):
        points, _ = blob_data
        model = SelfOrganizingMap(grid_shape=(2, 4), n_epochs=5, random_state=0).fit(points)
        assert model.n_units == 8
        assert model.weights_.shape == (8, 2)

    def test_labels_without_merging(self, blob_data):
        points, _ = blob_data
        model = SelfOrganizingMap(grid_shape=(2, 2), n_epochs=5, random_state=0).fit(points)
        assert model.labels_.max() < 4

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            SelfOrganizingMap(grid_shape=(0, 3))
        with pytest.raises(ValidationError):
            SelfOrganizingMap(learning_rate=0.0)
