"""Clustering algorithms implemented from scratch on NumPy.

These estimators serve two purposes:

* **substrates** for k-Graph itself (k-Means in the graph-clustering step,
  spectral clustering in the consensus step), and
* **baselines** for the Benchmark frame, which compares k-Graph against a
  population of raw-based, feature-based and model-based methods.

All estimators share the small API defined in :class:`repro.cluster.base.BaseClusterer`:
``fit(X)``, ``fit_predict(X)`` and a ``labels_`` attribute.
"""

from repro.cluster.base import BaseClusterer
from repro.cluster.kmeans import KMeans, kmeans_plus_plus_init
from repro.cluster.kmedoids import KMedoids
from repro.cluster.kshape import KShape
from repro.cluster.spectral import SpectralClustering
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.dbscan import DBSCAN
from repro.cluster.optics import OPTICS
from repro.cluster.gaussian_mixture import GaussianMixture
from repro.cluster.meanshift import MeanShift
from repro.cluster.birch import Birch
from repro.cluster.som import SelfOrganizingMap

__all__ = [
    "AgglomerativeClustering",
    "BaseClusterer",
    "Birch",
    "DBSCAN",
    "GaussianMixture",
    "KMeans",
    "KMedoids",
    "KShape",
    "MeanShift",
    "OPTICS",
    "SelfOrganizingMap",
    "SpectralClustering",
    "kmeans_plus_plus_init",
]
