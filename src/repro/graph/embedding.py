"""Graph Embedding — step (b) of the k-Graph pipeline (Fig. 1).

For one subsequence length ℓ the embedding:

1. extracts every overlapping subsequence of length ℓ from every series and
   z-normalises it (shape, not level, defines a pattern);
2. projects the subsequences to two dimensions with PCA, "retaining their
   essential shapes";
3. extracts nodes as dense regions of the projection using a **radial scan**:
   the projected cloud is swept by angular sectors around its centre and, in
   every sector, the kernel density estimate of the radial coordinate is
   searched for local maxima — each maximum becomes a node (this is the
   Series2Graph-inspired node-creation rule described in the paper);
4. assigns every subsequence to its nearest node and connects consecutive
   subsequences of the same series with directed edges, yielding the
   transition graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphConstructionError
from repro.graph.structure import TimeSeriesGraph
from repro.linalg.kde import KernelDensityEstimator, local_maxima_1d
from repro.linalg.pca import PCA
from repro.utils.normalization import znormalize_dataset
from repro.utils.validation import (
    check_array,
    check_positive_int,
    check_random_state,
)
from repro.utils.windows import subsequences_of_dataset


class GraphEmbedding:
    """Builds a :class:`TimeSeriesGraph` for one subsequence length.

    Parameters
    ----------
    length:
        Subsequence length ℓ.
    stride:
        Step between consecutive subsequences (1 keeps every subsequence; a
        larger stride trades resolution for speed on long series).
    n_sectors:
        Number of angular sectors of the radial scan.
    max_nodes_per_sector:
        Upper bound on KDE local maxima kept per sector (highest-density first).
    density_grid:
        Number of radial grid points at which the KDE is evaluated.
    min_prominence_fraction:
        Minimum prominence of a density maximum, as a fraction of the sector's
        density range, for it to become a node (filters spurious maxima).
    random_state:
        Present for API symmetry; the embedding itself is deterministic.
    vectorized:
        When true (the default) the graph is assembled with bulk NumPy
        accumulation (:meth:`TimeSeriesGraph.add_visits` /
        :meth:`TimeSeriesGraph.add_transitions`); when false the original
        per-subsequence recording loop runs instead.  Both paths build
        bit-identical graphs — the reference loop is retained for the
        equivalence tests and the hot-path benchmark (E13).
    """

    def __init__(
        self,
        length: int,
        *,
        stride: int = 1,
        n_sectors: int = 24,
        max_nodes_per_sector: int = 4,
        density_grid: int = 64,
        min_prominence_fraction: float = 0.05,
        random_state=None,
        vectorized: bool = True,
    ) -> None:
        self.length = check_positive_int(length, "length", minimum=2)
        self.stride = check_positive_int(stride, "stride")
        self.n_sectors = check_positive_int(n_sectors, "n_sectors", minimum=2)
        self.max_nodes_per_sector = check_positive_int(max_nodes_per_sector, "max_nodes_per_sector")
        self.density_grid = check_positive_int(density_grid, "density_grid", minimum=8)
        if not 0.0 <= min_prominence_fraction < 1.0:
            raise GraphConstructionError(
                f"min_prominence_fraction must be in [0, 1), got {min_prominence_fraction}"
            )
        self.min_prominence_fraction = float(min_prominence_fraction)
        self.random_state = check_random_state(random_state)
        self.vectorized = bool(vectorized)

        self.pca_: Optional[PCA] = None
        self.projection_: Optional[np.ndarray] = None
        self.node_positions_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def _extract_nodes(self, projection: np.ndarray) -> List[Tuple[float, float]]:
        """Radial-scan + KDE node extraction; returns node positions."""
        centre = projection.mean(axis=0)
        offsets = projection - centre
        radii = np.linalg.norm(offsets, axis=1)
        angles = np.arctan2(offsets[:, 1], offsets[:, 0])  # [-pi, pi]

        positions: List[Tuple[float, float]] = []
        sector_edges = np.linspace(-np.pi, np.pi, self.n_sectors + 1)
        for sector in range(self.n_sectors):
            low, high = sector_edges[sector], sector_edges[sector + 1]
            mask = (angles >= low) & (angles < high)
            if sector == self.n_sectors - 1:
                mask |= angles == high
            sector_radii = radii[mask]
            if sector_radii.size == 0:
                continue
            angle_centre = 0.5 * (low + high)
            if sector_radii.size < 3 or float(sector_radii.std()) < 1e-9:
                # Too few points for a KDE: one node at the median radius.
                radius = float(np.median(sector_radii))
                positions.append(
                    (
                        centre[0] + radius * np.cos(angle_centre),
                        centre[1] + radius * np.sin(angle_centre),
                    )
                )
                continue
            kde = KernelDensityEstimator(bandwidth="scott").fit(sector_radii.reshape(-1, 1))
            grid, density = kde.evaluate_grid_1d(
                float(sector_radii.min()), float(sector_radii.max()), self.density_grid
            )
            density_range = float(density.max() - density.min())
            prominence = self.min_prominence_fraction * density_range
            maxima = local_maxima_1d(density, min_prominence=prominence)
            if not maxima:
                maxima = [int(np.argmax(density))]
            # Keep the densest maxima first.
            maxima = sorted(maxima, key=lambda idx: -density[idx])[: self.max_nodes_per_sector]
            for idx in maxima:
                radius = float(grid[idx])
                positions.append(
                    (
                        centre[0] + radius * np.cos(angle_centre),
                        centre[1] + radius * np.sin(angle_centre),
                    )
                )
        if not positions:
            raise GraphConstructionError("radial scan produced no nodes")
        return positions

    # ------------------------------------------------------------------ #
    def fit(self, data) -> TimeSeriesGraph:
        """Build and return the transition graph for the dataset ``data``."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if self.length >= array.shape[1]:
            raise GraphConstructionError(
                f"subsequence length ({self.length}) must be smaller than the series "
                f"length ({array.shape[1]})"
            )
        subsequences, series_index, _ = subsequences_of_dataset(
            array, self.length, self.stride
        )
        subsequences = znormalize_dataset(subsequences)

        n_components = 2 if subsequences.shape[1] >= 2 else 1
        self.pca_ = PCA(n_components=n_components)
        projection = self.pca_.fit_transform(subsequences)
        if projection.shape[1] == 1:
            projection = np.hstack([projection, np.zeros_like(projection)])
        self.projection_ = projection

        node_positions = np.asarray(self._extract_nodes(projection))
        self.node_positions_ = node_positions

        # Assign every subsequence to its nearest node.
        distances = (
            np.sum(projection**2, axis=1)[:, None]
            - 2.0 * projection @ node_positions.T
            + np.sum(node_positions**2, axis=1)[None, :]
        )
        assignments = np.argmin(distances, axis=1)

        # Drop nodes that attract no subsequence and re-index densely.
        used_nodes = np.unique(assignments)
        if self.vectorized:
            # used_nodes is sorted, so searchsorted is an O(n log k) dense
            # re-index with no Python-level dict round-trip.
            assignments = np.searchsorted(used_nodes, assignments)
        else:
            remap: Dict[int, int] = {old: new for new, old in enumerate(used_nodes)}
            assignments = np.array([remap[a] for a in assignments])
        node_positions = node_positions[used_nodes]

        graph = TimeSeriesGraph(length=self.length, n_series=array.shape[0])
        if self.vectorized:
            self._assemble_vectorized(
                graph, subsequences, assignments, series_index, node_positions
            )
        else:
            self._assemble_reference(
                graph, subsequences, assignments, series_index, node_positions
            )
        return graph

    def _assemble_vectorized(
        self,
        graph: TimeSeriesGraph,
        subsequences: np.ndarray,
        assignments: np.ndarray,
        series_index: np.ndarray,
        node_positions: np.ndarray,
    ) -> None:
        """Bulk NumPy graph assembly (bit-identical to the reference loop)."""
        n_nodes = node_positions.shape[0]
        # Node patterns: grouped mean via a single scatter-add.  np.add.at
        # accumulates rows in subsequence order, matching the sequential
        # row-reduction of members.mean(axis=0) bit for bit.
        counts = np.bincount(assignments, minlength=n_nodes)
        sums = np.zeros((n_nodes, subsequences.shape[1]))
        np.add.at(sums, assignments, subsequences)
        patterns = sums / counts[:, None]
        for new_id in range(n_nodes):
            graph.add_node(new_id, node_positions[new_id], patterns[new_id])

        graph.add_visits(assignments, series_index)
        # Consecutive subsequences of the same series form transitions.
        same_series = series_index[1:] == series_index[:-1]
        graph.add_transitions(
            assignments[:-1][same_series],
            assignments[1:][same_series],
            series_index[1:][same_series],
        )

    def _assemble_reference(
        self,
        graph: TimeSeriesGraph,
        subsequences: np.ndarray,
        assignments: np.ndarray,
        series_index: np.ndarray,
        node_positions: np.ndarray,
    ) -> None:
        """Original per-subsequence recording loop.

        Retained as the reference implementation the vectorized assembly is
        benchmarked and equivalence-tested against (E13).
        """
        for new_id in range(node_positions.shape[0]):
            members = subsequences[assignments == new_id]
            pattern = members.mean(axis=0) if members.shape[0] else np.zeros(self.length)
            graph.add_node(new_id, node_positions[new_id], pattern)

        previous_series = -1
        previous_node = -1
        for subseq_idx in range(subsequences.shape[0]):
            series = int(series_index[subseq_idx])
            node = int(assignments[subseq_idx])
            graph.record_visit(node, series)
            if series == previous_series:
                graph.record_transition(previous_node, node, series)
            previous_series = series
            previous_node = node


def build_graph(
    data,
    length: int,
    *,
    stride: int = 1,
    n_sectors: int = 24,
    random_state=None,
) -> TimeSeriesGraph:
    """One-call helper: build the transition graph of ``data`` for ``length``."""
    embedding = GraphEmbedding(
        length,
        stride=stride,
        n_sectors=n_sectors,
        random_state=random_state,
    )
    return embedding.fit(data)
