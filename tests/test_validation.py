"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_labels,
    check_positive_int,
    check_probability,
    check_random_state,
    check_time_series_dataset,
)


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).integers(0, 1000, 5)
        b = check_random_state(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            check_random_state(-1)

    def test_invalid_type_rejected(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(3, "x") == 3

    def test_numpy_int_accepted(self):
        assert check_positive_int(np.int64(4), "x") == 4

    def test_below_minimum_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(1, "x", minimum=2)

    def test_bool_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_float_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, "x")


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValidationError):
            check_probability(0.0, "p", inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_probability(float("nan"), "p")


class TestCheckArray:
    def test_list_converted(self):
        array = check_array([[1, 2], [3, 4]])
        assert array.shape == (2, 2)
        assert array.dtype == float

    def test_ndim_enforced(self):
        with pytest.raises(ValidationError):
            check_array([1.0, 2.0], ndim=2)

    def test_scalar_rejected(self):
        with pytest.raises(ValidationError):
            check_array(3.0)

    def test_3d_rejected(self):
        with pytest.raises(ValidationError):
            check_array(np.zeros((2, 2, 2)))

    def test_nan_rejected_by_default(self):
        with pytest.raises(ValidationError):
            check_array([1.0, np.nan])

    def test_nan_allowed_when_requested(self):
        array = check_array([1.0, np.nan], allow_nan=True)
        assert np.isnan(array[1])

    def test_min_rows(self):
        with pytest.raises(ValidationError):
            check_array([[1.0, 2.0]], min_rows=2)

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            check_array([["a", "b"]])


class TestCheckLabels:
    def test_integer_labels(self):
        labels = check_labels([0, 1, 1, 2])
        assert labels.dtype.kind == "i"

    def test_string_labels_encoded(self):
        labels = check_labels(["a", "b", "a"])
        assert set(labels.tolist()) == {0, 1}
        assert labels[0] == labels[2]

    def test_float_integerish_accepted(self):
        labels = check_labels([0.0, 1.0, 2.0])
        assert labels.tolist() == [0, 1, 2]

    def test_non_integer_float_rejected(self):
        with pytest.raises(ValidationError):
            check_labels([0.5, 1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            check_labels([0, 1], n_samples=3)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            check_labels([])

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            check_labels(np.zeros((2, 2)))


class TestCheckTimeSeriesDataset:
    def test_basic(self):
        data = check_time_series_dataset(np.zeros((3, 10)))
        assert data.shape == (3, 10)

    def test_1d_promoted(self):
        data = check_time_series_dataset(np.zeros(10), min_series=1)
        assert data.shape == (1, 10)

    def test_too_short_series(self):
        with pytest.raises(ValidationError):
            check_time_series_dataset(np.zeros((3, 2)))

    def test_too_few_series(self):
        with pytest.raises(ValidationError):
            check_time_series_dataset(np.zeros((1, 10)), min_series=2)


class TestCheckConsistentLength:
    def test_consistent(self):
        check_consistent_length(np.zeros(3), np.ones(3))

    def test_inconsistent(self):
        with pytest.raises(ValidationError):
            check_consistent_length(np.zeros(3), np.ones(4))
