"""Benchmark runner: methods x datasets x measures.

One :class:`BenchmarkResult` is produced per (method, dataset) pair and
carries every evaluation measure plus the dataset attributes the Benchmark
frame filters on.  Failures of individual methods are recorded (not raised)
so a single brittle baseline cannot take down a whole campaign — mirroring
how published benchmark harnesses handle method errors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.registry import all_baseline_names, get_method
from repro.datasets.catalogue import DatasetCatalogue, default_catalogue
from repro.exceptions import BenchmarkError
from repro.metrics.clustering import clustering_report
from repro.utils.containers import TimeSeriesDataset
from repro.utils.rng import SeedSequencePool
from repro.utils.validation import check_positive_int


@dataclass
class BenchmarkResult:
    """Outcome of one (method, dataset) benchmark run."""

    method: str
    family: str
    dataset: str
    dataset_type: str
    n_series: int
    length: int
    n_classes: int
    measures: Dict[str, float] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Whether the method raised instead of producing labels."""
        return self.error is not None

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-serialisable representation."""
        row: Dict[str, object] = {
            "method": self.method,
            "family": self.family,
            "dataset": self.dataset,
            "dataset_type": self.dataset_type,
            "n_series": self.n_series,
            "length": self.length,
            "n_classes": self.n_classes,
            "runtime_seconds": self.runtime_seconds,
            "error": self.error,
        }
        row.update(self.measures)
        return row

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "BenchmarkResult":
        """Inverse of :meth:`to_dict`."""
        known = {
            "method",
            "family",
            "dataset",
            "dataset_type",
            "n_series",
            "length",
            "n_classes",
            "runtime_seconds",
            "error",
        }
        measures = {
            key: float(value)
            for key, value in row.items()
            if key not in known and isinstance(value, (int, float))
        }
        return cls(
            method=str(row["method"]),
            family=str(row.get("family", "")),
            dataset=str(row["dataset"]),
            dataset_type=str(row.get("dataset_type", "")),
            n_series=int(row.get("n_series", 0)),
            length=int(row.get("length", 0)),
            n_classes=int(row.get("n_classes", 0)),
            measures=measures,
            runtime_seconds=float(row.get("runtime_seconds", 0.0)),
            error=row.get("error"),
        )


class BenchmarkRunner:
    """Runs a set of methods over a set of datasets.

    Parameters
    ----------
    methods:
        Method names from the baseline registry; defaults to the 14
        Benchmark-frame baselines plus ``"kgraph"``.
    catalogue:
        Dataset catalogue; defaults to :func:`repro.datasets.default_catalogue`.
    n_runs:
        Repetitions per (method, dataset) pair with different seeds; measures
        are averaged over runs (the Benchmark frame shows one point per pair).
    random_state:
        Seed pool controlling dataset generation and method seeds.
    """

    def __init__(
        self,
        methods: Optional[Sequence[str]] = None,
        *,
        catalogue: Optional[DatasetCatalogue] = None,
        n_runs: int = 1,
        random_state=None,
    ) -> None:
        if methods is None:
            methods = all_baseline_names() + ["kgraph"]
        if not methods:
            raise BenchmarkError("at least one method is required")
        self.methods = [get_method(name).name for name in methods]
        self.catalogue = catalogue if catalogue is not None else default_catalogue()
        self.n_runs = check_positive_int(n_runs, "n_runs")
        self._seed_pool = SeedSequencePool(random_state)

    # ------------------------------------------------------------------ #
    def run_single(
        self, method_name: str, dataset: TimeSeriesDataset, random_state=None
    ) -> BenchmarkResult:
        """Run one method on one (already materialised) dataset."""
        method = get_method(method_name)
        n_clusters = dataset.n_classes if dataset.n_classes >= 2 else 3
        result = BenchmarkResult(
            method=method.name,
            family=method.family,
            dataset=dataset.name,
            dataset_type=dataset.dataset_type,
            n_series=dataset.n_series,
            length=dataset.length,
            n_classes=dataset.n_classes,
        )
        start = time.perf_counter()
        try:
            labels = method.fit_predict(dataset, n_clusters, random_state=random_state)
            result.runtime_seconds = time.perf_counter() - start
            if dataset.labels is not None:
                result.measures = clustering_report(dataset.labels, labels)
        except Exception as exc:  # noqa: BLE001 - a failing baseline must not stop the campaign
            result.runtime_seconds = time.perf_counter() - start
            result.error = f"{type(exc).__name__}: {exc}"
        return result

    def run(
        self,
        dataset_names: Optional[Sequence[str]] = None,
        *,
        progress: Optional[callable] = None,
    ) -> List[BenchmarkResult]:
        """Run the full campaign and return one averaged result per pair.

        Parameters
        ----------
        dataset_names:
            Subset of catalogue names; ``None`` runs the whole catalogue.
        progress:
            Optional callback ``(method, dataset, result)`` invoked after each
            individual run (used by the CLI to stream progress).
        """
        names = list(dataset_names) if dataset_names is not None else self.catalogue.names()
        results: List[BenchmarkResult] = []
        for dataset_name in names:
            spec = self.catalogue.get(dataset_name)
            for method_name in self.methods:
                per_run: List[BenchmarkResult] = []
                for _ in range(self.n_runs):
                    dataset = spec.generate(random_state=self._seed_pool.next_seed())
                    run_result = self.run_single(
                        method_name, dataset, random_state=self._seed_pool.next_seed()
                    )
                    per_run.append(run_result)
                    if progress is not None:
                        progress(method_name, dataset_name, run_result)
                results.append(self._average(per_run))
        if not results:
            raise BenchmarkError("the benchmark campaign produced no results")
        return results

    @staticmethod
    def _average(runs: List[BenchmarkResult]) -> BenchmarkResult:
        """Average measures/runtime over repeated runs of the same pair."""
        successful = [run for run in runs if not run.failed]
        template = successful[0] if successful else runs[0]
        if not successful:
            return template
        measures: Dict[str, float] = {}
        for key in successful[0].measures:
            measures[key] = float(np.mean([run.measures[key] for run in successful]))
        return BenchmarkResult(
            method=template.method,
            family=template.family,
            dataset=template.dataset,
            dataset_type=template.dataset_type,
            n_series=template.n_series,
            length=template.length,
            n_classes=template.n_classes,
            measures=measures,
            runtime_seconds=float(np.mean([run.runtime_seconds for run in successful])),
            error=None,
        )


def run_benchmark(
    methods: Optional[Sequence[str]] = None,
    dataset_names: Optional[Sequence[str]] = None,
    *,
    n_runs: int = 1,
    random_state=None,
) -> List[BenchmarkResult]:
    """Convenience one-call benchmark campaign."""
    runner = BenchmarkRunner(methods, n_runs=n_runs, random_state=random_state)
    return runner.run(dataset_names)
