"""Graph rendering for the Graph frame.

Draws a :class:`~repro.graph.structure.TimeSeriesGraph` with the paper's
colouring rule: nodes and edges are coloured by the cluster for which they
are sufficiently representative (λ) *and* exclusive (γ); everything below the
thresholds is drawn in a neutral grey.  Node radius encodes how many
subsequences the node captures, edge width encodes the transition weight.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import VisualizationError
from repro.graph.graphoid import (
    edge_exclusivity,
    edge_representativity,
    node_exclusivity,
    node_representativity,
)
from repro.graph.layout import force_directed_layout, pca_layout
from repro.graph.structure import TimeSeriesGraph
from repro.utils.validation import check_labels, check_probability
from repro.viz.svg import SVGCanvas
from repro.viz.theme import DEFAULT_THEME, NEUTRAL_COLOR, color_for_cluster


def _dominant_cluster(
    scores_by_cluster: Dict[int, Dict], key, lambda_scores: Dict[int, Dict], gamma: float, lam: float
) -> Optional[int]:
    """Cluster for which ``key`` passes both thresholds with the best product."""
    best_cluster = None
    best_value = 0.0
    for cluster in scores_by_cluster:
        exclusivity = scores_by_cluster[cluster].get(key, 0.0)
        representativity = lambda_scores[cluster].get(key, 0.0)
        if exclusivity >= gamma and representativity >= lam:
            value = exclusivity * representativity
            if value > best_value:
                best_value = value
                best_cluster = cluster
    return best_cluster


def render_graph(
    graph: TimeSeriesGraph,
    labels,
    *,
    lambda_threshold: float = 0.5,
    gamma_threshold: float = 0.5,
    layout: str = "force",
    width: int = 640,
    height: int = 480,
    selected_node: Optional[int] = None,
    title: str = "",
    random_state=None,
) -> str:
    """Render the graph as SVG with λ/γ cluster colouring.

    Parameters
    ----------
    graph:
        The transition graph to draw (usually the optimal-length graph).
    labels:
        Final cluster labels (used to compute representativity/exclusivity).
    lambda_threshold, gamma_threshold:
        The colouring thresholds exposed as sliders in the Graph frame.
    layout:
        ``"force"`` (force-directed, default) or ``"pca"`` (embedding positions).
    selected_node:
        Node to highlight with a red ring (the node-inspector selection).
    """
    labels = check_labels(labels, n_samples=graph.n_series)
    lambda_threshold = check_probability(lambda_threshold, "lambda_threshold")
    gamma_threshold = check_probability(gamma_threshold, "gamma_threshold")
    if layout == "force":
        positions = force_directed_layout(graph, random_state=random_state)
    elif layout == "pca":
        positions = pca_layout(graph)
    else:
        raise VisualizationError(f"unknown layout {layout!r}; use 'force' or 'pca'")

    exclusivity = node_exclusivity(graph, labels)
    representativity = node_representativity(graph, labels)
    edge_excl = edge_exclusivity(graph, labels)
    edge_repr = edge_representativity(graph, labels)

    margin = 40.0
    canvas = SVGCanvas(width, height, background=DEFAULT_THEME.background)
    if title:
        canvas.text(width / 2, 20, title, size=DEFAULT_THEME.title_size, anchor="middle", bold=True)

    def to_pixels(position: Tuple[float, float]) -> Tuple[float, float]:
        x_value, y_value = position
        return (
            margin + x_value * (width - 2 * margin),
            margin + (1.0 - y_value) * (height - 2 * margin),
        )

    # Edges first so nodes draw on top.
    max_weight = max((graph.edge_weight(edge) for edge in graph.edges()), default=1)
    for edge in graph.edges():
        source, target = edge
        if source not in positions or target not in positions:
            continue
        x1, y1 = to_pixels(positions[source])
        x2, y2 = to_pixels(positions[target])
        cluster = _dominant_cluster(edge_excl, edge, edge_repr, gamma_threshold, lambda_threshold)
        color = color_for_cluster(cluster) if cluster is not None else NEUTRAL_COLOR
        weight = graph.edge_weight(edge)
        stroke_width = 0.5 + 2.5 * weight / max_weight
        canvas.arrow(x1, y1, x2, y2, stroke=color, stroke_width=stroke_width, opacity=0.55)

    max_node_weight = max((graph.node_weight(node) for node in graph.nodes()), default=1)
    for node in graph.nodes():
        if node not in positions:
            continue
        x_pixel, y_pixel = to_pixels(positions[node])
        cluster = _dominant_cluster(exclusivity, node, representativity, gamma_threshold, lambda_threshold)
        color = color_for_cluster(cluster) if cluster is not None else NEUTRAL_COLOR
        radius = 4.0 + 10.0 * np.sqrt(graph.node_weight(node) / max_node_weight)
        best_exclusivity = max(exclusivity[c].get(node, 0.0) for c in exclusivity)
        best_representativity = max(representativity[c].get(node, 0.0) for c in representativity)
        tooltip = (
            f"node {node} | weight {graph.node_weight(node)} | "
            f"max exclusivity {best_exclusivity:.2f} | max representativity {best_representativity:.2f}"
        )
        canvas.circle(x_pixel, y_pixel, radius, fill=color, stroke="#333333", stroke_width=0.8, opacity=0.9, tooltip=tooltip)
        if selected_node is not None and node == selected_node:
            canvas.circle(x_pixel, y_pixel, radius + 4.0, fill="none", stroke="#d62728", stroke_width=2.5)
        canvas.text(x_pixel, y_pixel - radius - 3, str(node), size=9, anchor="middle", fill="#444444")

    # Legend: one swatch per cluster plus the neutral colour.
    legend_y = height - 16
    legend_x = margin
    for cluster in sorted(np.unique(labels).tolist()):
        canvas.circle(legend_x, legend_y, 5, fill=color_for_cluster(cluster))
        canvas.text(legend_x + 9, legend_y + 4, f"cluster {cluster}", size=10)
        legend_x += 90
    canvas.circle(legend_x, legend_y, 5, fill=NEUTRAL_COLOR)
    canvas.text(legend_x + 9, legend_y + 4, "below λ/γ", size=10)
    return canvas.to_svg()
