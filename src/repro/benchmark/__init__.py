"""Benchmark harness backing the Benchmark frame (Fig. 2 / Fig. 3 frame 1.2).

The harness runs a population of clustering methods over the dataset
catalogue, evaluates each run with the four Benchmark-frame measures
(ARI, RI, NMI, AMI), stores results as plain dictionaries (JSON-serialisable)
and provides the filtering + aggregation operations the GUI exposes
(filter by dataset type / length / number of classes / number of series,
box-plot summaries per method, mean-rank tables).
"""

from repro.benchmark.runner import BenchmarkRunner, BenchmarkResult, run_benchmark
from repro.benchmark.aggregate import (
    boxplot_summary,
    filter_results,
    mean_rank_table,
    results_to_rows,
    summarize_by_method,
)
from repro.benchmark.store import load_results, save_results

__all__ = [
    "BenchmarkResult",
    "BenchmarkRunner",
    "boxplot_summary",
    "filter_results",
    "load_results",
    "mean_rank_table",
    "results_to_rows",
    "run_benchmark",
    "save_results",
    "summarize_by_method",
]
