"""Tests for the model registry and its LRU cache (repro.serve.registry)."""

import numpy as np
import pytest

from repro.core.kgraph import KGraph
from repro.exceptions import ArtifactError, ValidationError
from repro.serve.artifacts import save_model
from repro.serve.registry import ModelRegistry


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry", cache_size=2)


class TestPublish:
    def test_publish_assigns_sequential_versions(self, registry, fitted_kgraph):
        first = registry.publish(fitted_kgraph, "cbf")
        second = registry.publish(fitted_kgraph, "cbf")
        assert first.model_id == "v1"
        assert second.model_id == "v2"
        assert registry.latest_model_id("cbf") == "v2"

    def test_publish_custom_id_and_conflict(self, registry, fitted_kgraph):
        registry.publish(fitted_kgraph, "cbf", model_id="prod")
        with pytest.raises(ArtifactError, match="already exists"):
            registry.publish(fitted_kgraph, "cbf", model_id="prod")

    def test_unsafe_names_are_rejected(self, registry, fitted_kgraph):
        with pytest.raises(ValidationError):
            registry.publish(fitted_kgraph, "../escape")
        with pytest.raises(ValidationError):
            registry.publish(fitted_kgraph, "cbf", model_id="a/b")

    def test_list_models_and_records(self, registry, fitted_kgraph):
        registry.publish(fitted_kgraph, "cbf")
        registry.publish(fitted_kgraph, "sines")
        records = registry.list_models()
        assert [(r.dataset, r.model_id) for r in records] == [("cbf", "v1"), ("sines", "v1")]
        row = records[0].to_dict()
        assert row["n_series"] == 24
        assert row["n_clusters"] == 3
        assert registry.datasets() == ["cbf", "sines"]

    def test_corrupt_manifest_does_not_hide_healthy_models(self, registry, fitted_kgraph):
        registry.publish(fitted_kgraph, "cbf")
        registry.publish(fitted_kgraph, "cbf")
        # Truncate one manifest mid-"write": the listing must skip it.
        (registry.model_path("cbf", "v1") / "manifest.json").write_text('{"form')
        assert [r.model_id for r in registry.list_models("cbf")] == ["v2"]

    def test_stray_directories_in_registry_root_are_ignored(self, registry, fitted_kgraph):
        registry.publish(fitted_kgraph, "cbf")
        (registry.root / "__pycache__").mkdir()
        (registry.root / "cbf" / "__pycache__").mkdir()
        assert registry.datasets() == ["cbf"]
        assert [r.model_id for r in registry.list_models("cbf")] == ["v1"]

    def test_import_artifact_uses_manifest_dataset(self, registry, fitted_kgraph, tmp_path):
        artifact = save_model(fitted_kgraph, tmp_path / "art", dataset="cbf")
        record = registry.import_artifact(artifact)
        assert (record.dataset, record.model_id) == ("cbf", "v1")
        fetched = registry.fetch("cbf")
        assert np.array_equal(fetched.labels_, fitted_kgraph.labels_)

    def test_import_rejects_incomplete_artifact(self, registry, fitted_kgraph, tmp_path):
        artifact = save_model(fitted_kgraph, tmp_path / "art", dataset="cbf")
        (artifact / "arrays.npz").unlink()
        with pytest.raises(ArtifactError, match="incomplete"):
            registry.import_artifact(artifact)
        assert registry.list_models() == []

    def test_import_with_dataset_override_rewrites_manifest(self, registry, fitted_kgraph, tmp_path):
        from repro.serve.artifacts import read_manifest

        artifact = save_model(fitted_kgraph, tmp_path / "art", dataset="original")
        record = registry.import_artifact(artifact, dataset="renamed")
        assert read_manifest(record.path)["dataset"] == "renamed"

    def test_import_artifact_without_dataset_name(self, registry, fitted_kgraph, tmp_path):
        artifact = save_model(fitted_kgraph, tmp_path / "art")  # no dataset recorded
        with pytest.raises(ArtifactError, match="dataset"):
            registry.import_artifact(artifact)
        record = registry.import_artifact(artifact, dataset="explicit")
        assert record.dataset == "explicit"


class TestFetchCache:
    def test_fetch_round_trips_predictions(self, registry, fitted_kgraph, small_dataset):
        registry.publish(fitted_kgraph, "cbf")
        registry._cache.clear()  # force a cold read from disk
        fetched = registry.fetch("cbf")
        assert np.array_equal(
            fetched.predict(small_dataset.data), fitted_kgraph.predict(small_dataset.data)
        )

    def test_fetch_unknown_model(self, registry):
        with pytest.raises(ArtifactError, match="no models"):
            registry.fetch("ghost")

    def test_repeated_fetch_hits_cache(self, registry, fitted_kgraph):
        registry.publish(fitted_kgraph, "cbf")
        first = registry.fetch("cbf")   # miss: cold load from disk
        second = registry.fetch("cbf")  # hit: same object served
        assert first is second
        stats = registry.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_publish_does_not_cache_the_live_model(self, registry, fitted_kgraph):
        # The caller may refit their object after publishing; fetch must serve
        # what the artifact holds, never the caller's live instance.
        registry.publish(fitted_kgraph, "cbf")
        assert registry.cache_stats()["size"] == 0
        assert registry.fetch("cbf") is not fitted_kgraph

    def test_lru_eviction_order_and_stats(self, registry, fitted_kgraph):
        # capacity 2: fetching three datasets must evict the oldest entry.
        for dataset in ("a", "b", "c"):
            registry.publish(fitted_kgraph, dataset)
            registry.fetch(dataset)
        stats = registry.cache_stats()
        assert stats["evictions"] == 1
        assert stats["cached"] == ["b/v1", "c/v1"]

        # Touching "b" makes "c" the least recently used entry.
        registry.fetch("b")
        registry.fetch("a")  # miss: reload from disk, evicting "c"
        stats = registry.cache_stats()
        assert stats["evictions"] == 2
        assert stats["cached"] == ["b/v1", "a/v1"]
        assert stats["misses"] == 4

    def test_cache_size_validated(self, tmp_path):
        with pytest.raises(ValidationError):
            ModelRegistry(tmp_path, cache_size=0)


class TestDescribe:
    def test_describe_latest_includes_manifest(self, registry, fitted_kgraph):
        registry.publish(fitted_kgraph, "cbf")
        registry.publish(fitted_kgraph, "cbf")
        description = registry.describe("cbf")
        assert description["model_id"] == "v2"
        assert description["manifest"]["fitted"]["n_series"] == 24

    def test_describe_unknown_version(self, registry, fitted_kgraph):
        registry.publish(fitted_kgraph, "cbf")
        with pytest.raises(ArtifactError, match="not in the registry"):
            registry.describe("cbf", "v9")

    def test_inflight_reservation_reads_as_not_found(self, registry, fitted_kgraph):
        from repro.exceptions import ModelNotFoundError

        registry.publish(fitted_kgraph, "cbf")
        # A crashed/in-flight publish: directory exists, no manifest yet.
        (registry.root / "cbf" / "v2").mkdir()
        with pytest.raises(ModelNotFoundError):
            registry.describe("cbf", "v2")
        with pytest.raises(ModelNotFoundError):
            registry.fetch("cbf", "v2")
        assert [r.model_id for r in registry.list_models("cbf")] == ["v1"]
