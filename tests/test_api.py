"""Tests for repro.api: configs, protocols, registry, and the layers using them."""

import json
import warnings

import numpy as np
import pytest

from repro.api import (
    BaselineConfig,
    ConfigError,
    Estimator,
    KGraphConfig,
    SupportsServing,
    default_registry,
)
from repro.baselines.estimator import BaselineEstimator
from repro.benchmark.runner import BenchmarkRunner, run_single_benchmark
from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.exceptions import BenchmarkError, ValidationError

#: Committed digests: config_hash must be stable across processes, machines
#: and sessions — these change only when the config schema itself changes
#: (which is a deliberate, versioned event).
KGRAPH_DEFAULT_HASH = "7ffc9a5492dbe61b4c4880d504513e7ac99dc1efa2ad3e95a0e9e31bbc40e2bf"
KMEANS_DEFAULT_HASH = "c1a1fbebd3000e7d7785005ef96d129d24570c57e1e38781be4f4d4a1a45277c"

#: Estimators whose fits take whole seconds even on the tiny dataset; the
#: cheap shape checks still cover them, the double-fit equivalence check
#: runs on the representative subset below.
REFIT_CHECK_NAMES = ["kgraph", "kmeans", "gmm", "kshape", "dbscan", "featts_like"]


@pytest.fixture(scope="module")
def tiny_dataset():
    return make_cylinder_bell_funnel(n_series=12, length=32, noise=0.2, random_state=3)


def _spec_params(name):
    """Small, fast parameters per estimator for conformance tests."""
    params = {"n_clusters": 3, "random_state": 0}
    if name == "kgraph":
        params["n_lengths"] = 2
    return params


class TestConfigRoundTrip:
    def test_json_round_trip_is_identity(self):
        config = KGraphConfig(
            n_clusters=4, lengths=[20, 10], n_sectors=16, random_state=7
        )
        assert KGraphConfig.from_json(config.to_json()) == config

    def test_to_dict_carries_every_field_and_version(self):
        payload = KGraphConfig().to_dict()
        assert payload["version"] == KGraphConfig.version
        assert set(payload) == set(KGraphConfig.field_names()) | {"version"}

    def test_unknown_key_is_named(self):
        payload = {**KGraphConfig().to_dict(), "n_neighbours": 5}
        with pytest.raises(ConfigError, match="n_neighbours"):
            KGraphConfig.from_dict(payload)

    def test_missing_key_is_named_at_current_version(self):
        payload = KGraphConfig().to_dict()
        del payload["stride"]
        with pytest.raises(ConfigError, match="stride"):
            KGraphConfig.from_dict(payload)

    def test_newer_version_rejected_with_upgrade_message(self):
        payload = {**KGraphConfig().to_dict(), "version": KGraphConfig.version + 1}
        with pytest.raises(ConfigError, match="upgrade the library"):
            KGraphConfig.from_dict(payload)

    def test_malformed_version_rejected(self):
        with pytest.raises(ConfigError, match="version"):
            KGraphConfig.from_dict({"version": "two"})

    def test_baseline_config_round_trip(self):
        config = BaselineConfig(method="KMeans", n_clusters=4, random_state=1)
        assert config.method == "kmeans"  # canonicalised
        assert BaselineConfig.from_json(config.to_json()) == config

    def test_lengths_canonicalised_to_sorted_unique_tuple(self):
        config = KGraphConfig(lengths=[20, 10, 20])
        assert config.lengths == (10, 20)

    def test_from_options_accepts_sparse_input(self):
        config = KGraphConfig.from_options({"n_clusters": 5}, {"stride": 2})
        assert (config.n_clusters, config.stride, config.n_sectors) == (5, 2, 24)
        with pytest.raises(ConfigError, match="striide"):
            KGraphConfig.from_options(overrides={"striide": 2})


class TestMigration:
    def test_version_1_payload_fills_defaults(self):
        # v1 = the legacy manifest-params layout: flat, no version key,
        # default-valued fields may be absent.
        config = KGraphConfig.from_dict({"n_clusters": 4, "stride": 2})
        assert config.n_clusters == 4
        assert config.stride == 2
        assert config.n_sectors == 24  # filled by the v1 -> v2 migration

    def test_explicit_version_1_is_migrated_too(self):
        config = KGraphConfig.from_dict({"version": 1, "feature_mode": "edges"})
        assert config.feature_mode == "edges"

    def test_unregistered_migration_step_fails_loudly(self):
        class FutureConfig(KGraphConfig):
            version = 4

        with pytest.raises(ConfigError, match="no migration"):
            FutureConfig.from_dict({"version": 3, **KGraphConfig().to_dict()})


class TestConfigHash:
    def test_hash_is_process_stable(self):
        # Committed digests: equality across processes/machines/sessions is
        # the whole point of a canonical hash.
        assert KGraphConfig().config_hash() == KGRAPH_DEFAULT_HASH
        assert BaselineConfig(method="kmeans").config_hash() == KMEANS_DEFAULT_HASH

    def test_equal_configs_hash_equally(self):
        a = KGraphConfig(lengths=[10, 20])
        b = KGraphConfig(lengths=(20, 10))  # different declaration order
        assert a == b
        assert a.config_hash() == b.config_hash()

    def test_different_configs_hash_differently(self):
        assert KGraphConfig().config_hash() != KGraphConfig(stride=2).config_hash()

    def test_pipeline_report_uses_canonical_hash(self, tiny_dataset):
        model = KGraph(n_clusters=3, n_lengths=2, random_state=0).fit(tiny_dataset.data)
        assert model.pipeline_report_.config_hash == model.get_config().config_hash()


class TestExpandGrid:
    def test_deterministic_and_ordered(self):
        grid = {"n_clusters": [2, 3], "feature_mode": ["both", "edges"]}
        first = KGraphConfig.expand_grid(grid)
        second = KGraphConfig.expand_grid(grid)
        assert first == second
        # Keys sorted (feature_mode before n_clusters), rightmost fastest.
        combos = [(c.feature_mode, c.n_clusters) for c in first]
        assert combos == [("both", 2), ("both", 3), ("edges", 2), ("edges", 3)]

    def test_base_config_applied(self):
        base = KGraphConfig(n_sectors=8, random_state=5)
        configs = KGraphConfig.expand_grid({"stride": [1, 2]}, base=base)
        assert all(c.n_sectors == 8 and c.random_state == 5 for c in configs)
        assert [c.stride for c in configs] == [1, 2]

    def test_invalid_value_fails_at_expansion_naming_field(self):
        with pytest.raises(ValidationError, match="feature_mode"):
            KGraphConfig.expand_grid({"feature_mode": ["both", "magic"]})

    def test_unknown_grid_key_is_named(self):
        with pytest.raises(ConfigError, match="n_neighbours"):
            KGraphConfig.expand_grid({"n_neighbours": [1, 2]})

    def test_empty_value_list_rejected(self):
        with pytest.raises(ConfigError, match="stride"):
            KGraphConfig.expand_grid({"stride": []})


class TestOneValidationCodePath:
    """KGraph constructor validation and KGraphConfig validation are one path."""

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"n_clusters": 1}, "n_clusters"),
            ({"feature_mode": "magic"}, "feature_mode"),
            ({"lambda_threshold": 1.5}, "lambda_threshold"),
            ({"lengths": []}, "lengths"),
            ({"stride": 0}, "stride"),
            ({"n_sectors": 1}, "n_sectors"),
            ({"random_state": -1}, "random_state"),
        ],
    )
    def test_config_and_constructor_raise_identically(self, kwargs, match):
        with pytest.raises(ValidationError, match=match) as config_error:
            KGraphConfig(**kwargs)
        with pytest.raises(ValidationError, match=match) as constructor_error:
            KGraph(**kwargs)
        assert str(config_error.value) == str(constructor_error.value)

    def test_grid_sweep_fails_at_config_construction(self, tiny_dataset):
        runner = BenchmarkRunner(["kgraph"])
        with pytest.raises(ValidationError, match="lengths"):
            runner.run_estimator_grid(tiny_dataset, "kgraph", {"lengths": [[]]})


class TestKwargsShim:
    def test_plain_kwargs_still_work_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            model = KGraph(n_clusters=4, n_lengths=2, feature_mode="edges")
        assert model.get_config() == KGraphConfig(
            n_clusters=4, n_lengths=2, feature_mode="edges"
        )

    def test_conflicting_kwarg_warns_and_wins(self):
        config = KGraphConfig(n_clusters=3, stride=2)
        with pytest.warns(DeprecationWarning, match="n_clusters"):
            model = KGraph(config=config, n_clusters=5)
        assert model.n_clusters == 5
        assert model.stride == 2  # non-conflicting config fields kept

    def test_agreeing_kwarg_does_not_warn(self):
        config = KGraphConfig(n_clusters=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            model = KGraph(config=config, n_clusters=3)
        assert model.get_config() == config

    def test_generator_seed_stays_on_instance_not_in_config(self):
        rng = np.random.default_rng(0)
        model = KGraph(n_clusters=3, random_state=rng)
        assert model.random_state is rng
        assert model.get_config().random_state is None

    def test_parameter_attributes_are_read_only_views(self):
        model = KGraph(n_clusters=3)
        with pytest.raises(AttributeError):
            model.n_clusters = 5


class TestRegistry:
    def test_registry_covers_every_method_name(self):
        from repro.baselines.registry import available_methods

        assert default_registry().names() == available_methods()

    def test_unknown_estimator_lists_available(self):
        with pytest.raises(ValidationError, match="kgraph"):
            default_registry().get("mystery")

    def test_describe_lists_config_fields(self):
        info = default_registry().get("kgraph").describe()
        assert info["config"] == "KGraphConfig"
        assert info["config_version"] == KGraphConfig.version
        field_names = [row["name"] for row in info["fields"]]
        assert field_names == list(KGraphConfig.field_names())

    def test_baseline_config_method_injected(self):
        spec = default_registry().get("gmm")
        config = spec.make_config(n_clusters=2)
        assert config.method == "gmm"

    def test_wrong_config_class_rejected(self):
        with pytest.raises(ValidationError, match="KGraphConfig"):
            default_registry().get("kgraph").build(BaselineConfig(method="kmeans"))


class TestProtocolConformance:
    @pytest.mark.parametrize("name", default_registry().names())
    def test_fit_predict_shape_dtype_and_protocols(self, name, tiny_dataset):
        spec = default_registry().get(name)
        estimator = spec.build(spec.make_config(**_spec_params(name)))
        assert isinstance(estimator, Estimator)
        assert isinstance(estimator, SupportsServing)
        labels = estimator.fit_predict(tiny_dataset.data)
        assert labels.shape == (tiny_dataset.n_series,)
        assert labels.dtype.kind in "iu"
        summary = estimator.summary()
        json.dumps(summary)  # must be JSON-serialisable
        assert summary["estimator"] == name
        state = estimator.prediction_state()
        assert np.array_equal(
            state.predict_batch(tiny_dataset.data),
            estimator.predict(tiny_dataset.data),
        )

    @pytest.mark.parametrize("name", REFIT_CHECK_NAMES)
    def test_from_config_refits_bit_identically(self, name, tiny_dataset):
        spec = default_registry().get(name)
        first = spec.build(spec.make_config(**_spec_params(name)))
        labels = first.fit_predict(tiny_dataset.data)
        twin = type(first).from_config(first.get_config())
        assert np.array_equal(twin.fit_predict(tiny_dataset.data), labels)


class TestBaselineValidation:
    def test_ragged_input_raises_actionable_error(self):
        estimator = BaselineEstimator(BaselineConfig(method="kmeans", n_clusters=2))
        with pytest.raises(ValidationError, match="ragged"):
            estimator.fit([[1.0, 2.0, 3.0], [1.0, 2.0]])

    def test_nan_input_is_located(self):
        estimator = BaselineEstimator(BaselineConfig(method="kmeans", n_clusters=2))
        data = np.zeros((4, 8))
        data[2, 5] = np.nan
        with pytest.raises(ValidationError, match=r"series 2, position 5"):
            estimator.fit(data)

    def test_run_method_validates_raw_arrays(self):
        from repro.baselines.registry import run_method

        with pytest.raises(ValidationError, match="ragged"):
            run_method("kmeans", [[1.0, 2.0, 3.0], [1.0, 2.0]], n_clusters=2)

    def test_fit_predict_validates_raw_arrays(self):
        from repro.baselines.registry import get_method

        data = np.zeros((4, 8))
        data[1, 0] = np.inf
        with pytest.raises(ValidationError, match=r"series 1, position 0"):
            get_method("gmm").fit_predict(data, 2)

    def test_unknown_method_fails_at_config_build_time(self):
        with pytest.raises(ValidationError, match="not_a_method"):
            BaselineEstimator(BaselineConfig(method="not_a_method"))

    def test_predict_length_mismatch_is_actionable(self, tiny_dataset):
        estimator = BaselineEstimator(
            BaselineConfig(method="kmeans", n_clusters=3, random_state=0)
        ).fit(tiny_dataset.data)
        with pytest.raises(ValidationError, match="32"):
            estimator.predict(np.zeros((2, 16)))


class TestRunEstimatorGrid:
    def test_kgraph_grid_shares_stage_cache(self, tiny_dataset):
        runner = BenchmarkRunner(["kgraph"])
        results = runner.run_estimator_grid(
            tiny_dataset,
            "kgraph",
            [{}, {"feature_mode": "edges"}],
            base={"n_lengths": 2},
            random_state=0,
        )
        assert [r.error for r in results] == [None, None]
        assert results[0].measures["stages_cached"] == 0.0
        assert results[1].measures["stages_cached"] >= 1.0
        assert results[1].method == "kgraph[feature_mode=edges]"

    @pytest.mark.parametrize("name", ["kmeans", "gmm"])
    def test_baseline_grids_accept_any_registry_name(self, name, tiny_dataset):
        runner = BenchmarkRunner([name])
        results = runner.run_estimator_grid(
            tiny_dataset, name, {"n_clusters": [2, 3]}, random_state=0
        )
        assert [r.method for r in results] == [
            f"{name}[n_clusters=2]",
            f"{name}[n_clusters=3]",
        ]
        assert all(not r.failed for r in results)
        assert all("ari" in r.measures for r in results)

    def test_grid_results_match_direct_estimator_fits(self, tiny_dataset):
        from repro.metrics.clustering import adjusted_rand_index

        runner = BenchmarkRunner(["kmeans"])
        results = runner.run_estimator_grid(
            tiny_dataset, "kmeans", [{"n_clusters": 2}], random_state=0
        )
        spec = default_registry().get("kmeans")
        direct = spec.build(
            spec.make_config(n_clusters=2, random_state=0)
        ).fit_predict(tiny_dataset.data)
        assert results[0].measures["ari"] == pytest.approx(
            adjusted_rand_index(tiny_dataset.labels, direct)
        )

    def test_explicit_combo_errors_are_isolated(self, tiny_dataset):
        runner = BenchmarkRunner(["kmeans"])
        results = runner.run_estimator_grid(
            tiny_dataset, "kmeans", [{"n_clusters": 0}, {"n_clusters": 2}]
        )
        assert results[0].failed and "n_clusters" in results[0].error
        assert not results[1].failed

    def test_empty_grid_rejected(self, tiny_dataset):
        runner = BenchmarkRunner(["kmeans"])
        with pytest.raises(BenchmarkError):
            runner.run_estimator_grid(tiny_dataset, "kmeans", [])


class TestReviewRegressions:
    def test_config_base_keeps_the_shared_grid_seed(self, tiny_dataset):
        # A base *config* carries random_state=None for "unset"; the grid
        # must still apply the shared seed so stage checkpoints hit.
        runner = BenchmarkRunner(["kgraph"])
        results = runner.run_estimator_grid(
            tiny_dataset,
            "kgraph",
            [{"feature_mode": "nodes"}, {"feature_mode": "nodes"}],
            base=KGraphConfig(n_clusters=3, n_lengths=2),
            random_state=7,
        )
        assert results[0].measures["stages_cached"] == 0.0
        assert results[1].measures["stages_cached"] == 5.0  # full replay

    def test_campaign_overrides_cannot_rebind_method(self, tiny_dataset):
        rebound = run_single_benchmark(
            "kmeans", tiny_dataset, 0, config_overrides={"method": "gmm"}
        )
        plain = run_single_benchmark("kmeans", tiny_dataset, 0)
        assert rebound.method == "kmeans"
        assert rebound.measures["ari"] == plain.measures["ari"]

    def test_grid_cannot_rebind_method(self, tiny_dataset):
        runner = BenchmarkRunner(["kmeans"])
        with pytest.raises(BenchmarkError, match="rebind"):
            runner.run_estimator_grid(tiny_dataset, "kmeans", {"method": ["gmm"]})
        results = runner.run_estimator_grid(
            tiny_dataset, "kmeans", [{"method": "gmm"}]
        )
        assert results[0].failed and "rebind" in results[0].error

    def test_generator_random_state_still_benchmarks(self, tiny_dataset):
        # Exotic seeds cannot live in a config; the harness forwards them
        # through the legacy method shim instead of recording error rows.
        for name in ("kmeans", "kgraph"):
            result = run_single_benchmark(
                name, tiny_dataset, np.random.default_rng(0)
            )
            assert not result.failed, result.error

    def test_custom_registered_estimator_artifacts_round_trip(
        self, tiny_dataset, tmp_path
    ):
        # Artifact loading dispatches through the registry, so estimators
        # registered after the serve layer shipped still load.
        from repro.api.registry import EstimatorRegistry, EstimatorSpec
        from repro.api import registry as registry_module
        from repro.serve import load_model, save_model

        class AliasedKMeans(BaselineEstimator):
            """k-Means under a new registry name (a third-party estimator)."""

            def __init__(self, config):
                super().__init__(BaselineConfig(
                    method="kmeans",
                    n_clusters=config.n_clusters,
                    random_state=config.random_state,
                ))
                self.config = config  # the aliased config is the identity

            @property
            def name(self):
                return "aliased_kmeans"

        fresh = EstimatorRegistry()
        for spec in default_registry().specs():
            fresh.register(spec)
        fresh.register(
            EstimatorSpec(
                name="aliased_kmeans",
                family="raw",
                description="registry-dispatch regression probe",
                config_cls=BaselineConfig,
                _builder=lambda config, **_: AliasedKMeans(config),
            )
        )
        original = registry_module._default_registry
        registry_module._default_registry = fresh
        try:
            spec = fresh.get("aliased_kmeans")
            estimator = spec.build(
                spec.make_config(n_clusters=3, random_state=0)
            ).fit(tiny_dataset.data)
            path = save_model(estimator, tmp_path / "aliased")
            from repro.serve.artifacts import read_manifest

            assert read_manifest(path)["estimator"] == "aliased_kmeans"
            loaded = load_model(path)
            assert isinstance(loaded, AliasedKMeans)
            assert np.array_equal(
                loaded.predict(tiny_dataset.data),
                estimator.predict(tiny_dataset.data),
            )
        finally:
            registry_module._default_registry = original


class TestBenchmarkOverrides:
    def test_overrides_reach_declaring_estimators_only(self, tiny_dataset):
        # n_lengths exists on KGraphConfig but not BaselineConfig: the same
        # override set must configure kgraph and leave kmeans untouched.
        for name in ("kgraph", "kmeans"):
            result = run_single_benchmark(
                name, tiny_dataset, 0, config_overrides={"n_lengths": 2}
            )
            assert not result.failed, result.error

    def test_any_registry_name_benchmarks(self, tiny_dataset):
        result = run_single_benchmark("dtc", tiny_dataset, 0)
        assert result.family == "deep"
        assert not result.failed
