"""Tests for the session, dashboard assembly, HTTP server routing and CLI."""

import json

import numpy as np
import pytest

from repro.datasets.catalogue import DatasetCatalogue, DatasetSpec
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.exceptions import ValidationError
from repro.viz.cli import main as cli_main
from repro.viz.dashboard import build_dashboard
from repro.viz.server import DashboardApplication
from repro.viz.session import GraphintSession


def _small_catalogue() -> DatasetCatalogue:
    catalogue = DatasetCatalogue()
    catalogue.register(
        DatasetSpec(
            name="cbf_small",
            generator=lambda random_state=None, n_series=18, length=64, **kw: make_cylinder_bell_funnel(
                n_series=n_series, length=length, noise=0.2, random_state=random_state
            ),
            dataset_type="synthetic-shape",
            n_series=18,
            length=64,
            n_classes=3,
        )
    )
    return catalogue


@pytest.fixture(scope="module")
def session():
    dataset = make_cylinder_bell_funnel(n_series=18, length=64, noise=0.2, random_state=0)
    fitted = GraphintSession(dataset, n_lengths=2, random_state=0).fit()
    fitted.build_quizzes(n_users=2)
    return fitted


class TestSession:
    def test_fit_produces_three_methods(self, session):
        assert set(session.method_labels) == {"kgraph", "kmeans", "kshape"}
        for labels in session.method_labels.values():
            assert labels.shape == (session.dataset.n_series,)

    def test_summary_contents(self, session):
        summary = session.summary()
        assert set(summary["ari"]) == {"kgraph", "kmeans", "kshape"}
        assert summary["optimal_length"] == session.kgraph.optimal_length_
        assert set(summary["quiz_scores"]) == {"kgraph", "kmeans", "kshape"}

    def test_quizzes_cached(self, session):
        first = session.build_quizzes()
        second = session.build_quizzes()
        assert first is second

    def test_fit_idempotent(self, session):
        labels_before = session.method_labels["kgraph"].copy()
        session.fit()
        assert np.array_equal(session.method_labels["kgraph"], labels_before)

    def test_requires_labels(self):
        from repro.utils.containers import TimeSeriesDataset

        with pytest.raises(ValidationError):
            GraphintSession(TimeSeriesDataset(data=np.zeros((10, 32))))


class TestDashboard:
    def test_full_page(self, session, tmp_path):
        output = tmp_path / "dash.html"
        page = build_dashboard(session, output_path=output)
        assert page.startswith("<!DOCTYPE html>")
        for frame_id in ("clustering-comparison", "graph-frame", "interpretability-test", "under-the-hood"):
            assert f'id="{frame_id}"' in page
        assert output.exists()
        assert output.read_text(encoding="utf-8") == page

    def test_benchmark_frame_included_when_results_given(self, session):
        from tests.test_viz_frames import _fake_results

        page = build_dashboard(session, benchmark_results=_fake_results())
        assert 'id="benchmark"' in page

    def test_widget_values_forwarded(self, session):
        node = session.kgraph.optimal_graph_.nodes()[0]
        page = build_dashboard(
            session, lambda_threshold=0.3, gamma_threshold=0.3, selected_node=node
        )
        assert "λ = 0.30" in page and "γ = 0.30" in page


class TestServerRouting:
    @pytest.fixture(scope="class")
    def application(self):
        return DashboardApplication(catalogue=_small_catalogue(), random_state=0, n_lengths=2)

    def test_datasets_route(self, application):
        status, content_type, body = application.handle("/datasets")
        assert status == 200
        assert content_type == "application/json"
        rows = json.loads(body)
        assert rows[0]["name"] == "cbf_small"

    def test_dashboard_route(self, application):
        status, content_type, body = application.handle("/?dataset=cbf_small&lam=0.4&gam=0.4")
        assert status == 200
        assert content_type == "text/html"
        assert "Graphint" in body

    def test_summary_route(self, application):
        status, _, body = application.handle("/summary?dataset=cbf_small")
        assert status == 200
        summary = json.loads(body)
        assert "ari" in summary

    def test_unknown_dataset_404(self, application):
        status, content_type, body = application.handle("/?dataset=nope")
        assert status == 404
        assert content_type == "application/json"
        error = json.loads(body)["error"]
        assert error["status"] == 404
        assert "cbf_small" in error["datasets"]

    def test_unknown_route_404_is_structured_json(self, application):
        status, content_type, body = application.handle("/wat")
        assert status == 404
        assert content_type == "application/json"
        error = json.loads(body)["error"]
        assert error["status"] == 404
        assert "'/wat'" in error["message"]
        assert "/datasets" in error["routes"]

    def test_post_to_dashboard_is_405(self, application):
        status, _, body = application.handle_request("POST", "/", b"{}")
        assert status == 405
        assert json.loads(body)["error"]["allow"] == ["GET"]

    def test_bad_parameters_400(self, application):
        status, _, _ = application.handle("/?dataset=cbf_small&lam=high")
        assert status == 400

    def test_sessions_are_cached(self, application):
        application.handle("/?dataset=cbf_small")
        first = application.session_for("cbf_small")
        second = application.session_for("cbf_small")
        assert first is second


class TestCLI:
    def test_datasets_command(self, capsys):
        assert cli_main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "cylinder_bell_funnel" in output

    def test_quiz_and_cluster_commands_run(self, capsys, monkeypatch):
        # Patch the default catalogue used by the CLI to the small one so the
        # commands stay fast.
        import repro.viz.cli as cli

        monkeypatch.setattr(cli, "default_catalogue", _small_catalogue)
        assert cli.main(["cluster", "--dataset", "cbf_small", "--lengths", "2"]) == 0
        output = capsys.readouterr().out
        assert "ARI kgraph" in output

        assert cli.main(["quiz", "--dataset", "cbf_small", "--users", "2"]) == 0
        output = capsys.readouterr().out
        assert "most interpretable representation" in output

    def test_benchmark_and_dashboard_commands(self, capsys, monkeypatch, tmp_path):
        import repro.viz.cli as cli

        monkeypatch.setattr(cli, "default_catalogue", _small_catalogue)
        results_path = tmp_path / "results.json"
        assert (
            cli.main(
                ["benchmark", "--methods", "kmeans", "gmm", "--output", str(results_path)]
            )
            == 0
        )
        assert results_path.exists()
        capsys.readouterr()

        dashboard_path = tmp_path / "dash.html"
        assert (
            cli.main(
                [
                    "dashboard",
                    "--dataset",
                    "cbf_small",
                    "--output",
                    str(dashboard_path),
                    "--benchmark-file",
                    str(results_path),
                ]
            )
            == 0
        )
        assert dashboard_path.exists()
        assert "Graphint" in dashboard_path.read_text(encoding="utf-8")

    def test_export_import_and_serve_model_commands(self, capsys, monkeypatch, tmp_path):
        import repro.viz.cli as cli

        monkeypatch.setattr(cli, "default_catalogue", _small_catalogue)
        artifact = tmp_path / "artifact"
        assert (
            cli.main(
                ["export-model", "--dataset", "cbf_small", "--lengths", "2", "-o", str(artifact)]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "model artifact written" in output
        assert (artifact / "manifest.json").exists()

        registry_dir = tmp_path / "registry"
        assert (
            cli.main(["import-model", str(artifact), "--registry", str(registry_dir)]) == 0
        )
        output = capsys.readouterr().out
        assert "imported cbf_small/v1" in output

        # The serve command mounts the model API next to the dashboard.
        from repro.serve import ModelRegistry, ServeApplication
        from repro.viz.server import DashboardApplication
        from repro.serve.service import CombinedApplication

        combined = CombinedApplication(
            DashboardApplication(catalogue=_small_catalogue(), n_lengths=2),
            ServeApplication(ModelRegistry(registry_dir), flush_interval=0.001),
        )
        status, _, body = combined.handle_request("GET", "/models")
        assert status == 200
        assert json.loads(body)["models"][0]["dataset"] == "cbf_small"
        status, _, body = combined.handle_request("GET", "/datasets")
        assert status == 200
        combined.close()

    def test_export_model_requires_one_destination(self, monkeypatch, capsys):
        import repro.viz.cli as cli

        monkeypatch.setattr(cli, "default_catalogue", _small_catalogue)
        assert cli.main(["export-model", "--dataset", "cbf_small"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_pipeline_run_and_inspect_commands(self, capsys, monkeypatch, tmp_path):
        import repro.viz.cli as cli

        monkeypatch.setattr(cli, "default_catalogue", _small_catalogue)
        cache_dir = tmp_path / "stage-cache"
        base = [
            "pipeline", "run",
            "--dataset", "cbf_small",
            "--lengths", "2",
            "--cache", str(cache_dir),
        ]
        assert cli.main(base) == 0
        output = capsys.readouterr().out
        assert "embed" in output and "ran" in output
        assert "re-run with --resume" in output

        # Resuming replays every stage from the checkpoints.
        assert cli.main(base + ["--resume"]) == 0
        output = capsys.readouterr().out
        assert "cached" in output and "ran" not in output.split("status")[1]

        assert cli.main(["pipeline", "inspect", "--cache", str(cache_dir)]) == 0
        output = capsys.readouterr().out
        assert "graph_cluster" in output and "5 checkpoint(s)" in output

    def test_pipeline_run_stage_backend_validation(self, capsys, monkeypatch):
        import repro.viz.cli as cli

        monkeypatch.setattr(cli, "default_catalogue", _small_catalogue)
        assert (
            cli.main(
                ["pipeline", "run", "--dataset", "cbf_small", "--stage-backend", "bogus=thread"]
            )
            == 2
        )
        assert "unknown stage" in capsys.readouterr().err
        assert (
            cli.main(["pipeline", "run", "--dataset", "cbf_small", "--stage-backend", "embed"])
            == 2
        )
        assert "STAGE=BACKEND" in capsys.readouterr().err

    def test_pipeline_resume_requires_cache(self, capsys, monkeypatch):
        import repro.viz.cli as cli

        monkeypatch.setattr(cli, "default_catalogue", _small_catalogue)
        assert cli.main(["pipeline", "run", "--dataset", "cbf_small", "--resume"]) == 2
        assert "--resume requires --cache" in capsys.readouterr().err

    def test_pipeline_inspect_missing_directory(self, capsys, tmp_path):
        assert cli_main(["pipeline", "inspect", "--cache", str(tmp_path / "nope")]) == 2
        assert "no pipeline cache" in capsys.readouterr().err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["unknown-command"])
