"""Unsupervised feature selection used by the feature-based baselines.

FeatTS selects a subset of discriminative features before clustering; without
labels we approximate this with a variance ranking followed by a redundancy
(correlation) filter, a standard unsupervised proxy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_positive_int


def variance_ranking(matrix) -> np.ndarray:
    """Return feature indices sorted by decreasing variance."""
    array = check_array(matrix, name="matrix", ndim=2, min_rows=2)
    variances = array.var(axis=0)
    return np.argsort(variances)[::-1]


def select_features(
    matrix,
    n_features: int,
    *,
    correlation_threshold: float = 0.95,
    feature_names: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, List[int]]:
    """Select up to ``n_features`` high-variance, low-redundancy columns.

    Returns the reduced matrix and the list of selected column indices (or
    names when ``feature_names`` is given the indices still refer to columns).
    Features are visited in decreasing variance order and kept only when their
    absolute Pearson correlation with every already-kept feature is below
    ``correlation_threshold``.
    """
    array = check_array(matrix, name="matrix", ndim=2, min_rows=2)
    n_features = check_positive_int(n_features, "n_features")
    if not 0.0 < correlation_threshold <= 1.0:
        raise ValidationError(
            f"correlation_threshold must be in (0, 1], got {correlation_threshold}"
        )
    if feature_names is not None and len(feature_names) != array.shape[1]:
        raise ValidationError("feature_names length does not match the number of columns")

    order = variance_ranking(array)
    selected: List[int] = []
    for idx in order:
        if len(selected) >= n_features:
            break
        column = array[:, idx]
        if column.std() < 1e-12:
            continue
        redundant = False
        for kept in selected:
            other = array[:, kept]
            if other.std() < 1e-12:
                continue
            correlation = float(np.corrcoef(column, other)[0, 1])
            if abs(correlation) >= correlation_threshold:
                redundant = True
                break
        if not redundant:
            selected.append(int(idx))

    if not selected:
        # Degenerate case: all columns constant or perfectly correlated.
        selected = [int(order[0])]
    return array[:, selected], selected
