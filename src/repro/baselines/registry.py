"""Registry of benchmark methods (14 baselines + k-Graph).

Every method is wrapped as a :class:`BaselineMethod` exposing the same call
signature so the benchmark runner, the Clustering-comparison frame and the
Interpretability test can swap methods freely.

The 14 baselines (matching the families discussed in the paper):

raw-based           : kmeans, kshape, kmedoids-sbd, kdba-like (kmeans on
                      z-normalised raw), agglomerative-ward, birch
feature-based       : featts-like, time2feat-like
density-based       : dbscan, optics, meanshift
model/spectral      : gmm, spectral-rbf, som
deep-learning-style : dae, dtc, somvae

(That is 16 wrappers in total; `all_baseline_names()` exposes the canonical
14 used by the Benchmark frame, the extras remain available by name.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster import (
    DBSCAN,
    OPTICS,
    AgglomerativeClustering,
    Birch,
    GaussianMixture,
    KMeans,
    KMedoids,
    KShape,
    MeanShift,
    SelfOrganizingMap,
    SpectralClustering,
)
from repro.baselines.deep import DAEClustering, DTCClustering, SOMVAEClustering
from repro.cluster.base import relabel_consecutive
from repro.exceptions import ValidationError
from repro.features.bank import extract_features
from repro.features.selection import select_features
from repro.metrics.distances import pairwise_distances
from repro.utils.containers import TimeSeriesDataset
from repro.utils.normalization import znormalize_dataset
from repro.utils.validation import check_positive_int, check_time_series_dataset


@dataclass(frozen=True)
class BaselineMethod:
    """A named clustering method usable by the benchmark harness.

    Attributes
    ----------
    name:
        Registry key (lower-case, hyphen-free).
    family:
        One of ``"raw"``, ``"feature"``, ``"density"``, ``"model"``, ``"deep"``,
        ``"graph"``; the Benchmark frame groups box plots by family.
    runner:
        Callable ``(dataset, n_clusters, random_state) -> labels``.
    description:
        One-line description shown in the GUI.
    """

    name: str
    family: str
    runner: Callable[[TimeSeriesDataset, int, Optional[int]], np.ndarray]
    description: str = ""

    def fit_predict(
        self, dataset: TimeSeriesDataset, n_clusters: int, random_state=None
    ) -> np.ndarray:
        """Run the method and return cleaned (consecutive, non-negative) labels.

        ``dataset`` may also be a raw ``(n_series, length)`` array-like.
        Either way the training data goes through the same shared checks
        :meth:`KGraph.validate_fit_input` applies, so ragged or NaN inputs
        raise an actionable :class:`ValidationError` naming the offending
        series instead of failing deep inside a clustering routine.
        """
        n_clusters = check_positive_int(n_clusters, "n_clusters")
        if isinstance(dataset, TimeSeriesDataset):
            # The container already ran the full shared checks (shape, dtype,
            # NaN location) at construction and is immutable; only the
            # stricter series-count floor needs asserting here — no second
            # O(n_series x length) scan.
            if dataset.n_series < 2:
                raise ValidationError(
                    f"training data must contain at least 2 time series, got "
                    f"{dataset.n_series}"
                )
        else:
            array = check_time_series_dataset(
                dataset, name="training data", min_series=2
            )
            dataset = TimeSeriesDataset(array, name="adhoc")
        labels = np.asarray(self.runner(dataset, n_clusters, random_state))
        if labels.shape[0] != dataset.n_series:
            raise ValidationError(
                f"method {self.name!r} returned {labels.shape[0]} labels for "
                f"{dataset.n_series} series"
            )
        # Noise points (-1) become singleton clusters so external measures are defined.
        labels = labels.copy()
        noise = labels < 0
        if np.any(noise):
            next_label = labels.max() + 1 if labels.max() >= 0 else 0
            for index in np.flatnonzero(noise):
                labels[index] = next_label
                next_label += 1
        return relabel_consecutive(labels)


# --------------------------------------------------------------------------- #
# individual runners
# --------------------------------------------------------------------------- #
def _run_kmeans(dataset, n_clusters, random_state):
    return KMeans(n_clusters=n_clusters, n_init=5, random_state=random_state).fit_predict(
        dataset.data
    )


def _run_kmeans_znorm(dataset, n_clusters, random_state):
    return KMeans(n_clusters=n_clusters, n_init=5, random_state=random_state).fit_predict(
        znormalize_dataset(dataset.data)
    )


def _run_kshape(dataset, n_clusters, random_state):
    return KShape(n_clusters=n_clusters, n_init=2, random_state=random_state).fit_predict(
        dataset.data
    )


def _run_kmedoids_sbd(dataset, n_clusters, random_state):
    distances = pairwise_distances(znormalize_dataset(dataset.data), metric="sbd")
    return KMedoids(
        n_clusters=n_clusters, metric="precomputed", random_state=random_state
    ).fit_predict(distances)


def _run_agglomerative(dataset, n_clusters, random_state):
    return AgglomerativeClustering(n_clusters=n_clusters, linkage="ward").fit_predict(
        znormalize_dataset(dataset.data)
    )


def _run_birch(dataset, n_clusters, random_state):
    data = znormalize_dataset(dataset.data)
    threshold = 0.5 * float(np.sqrt(data.shape[1]))
    return Birch(n_clusters=n_clusters, threshold=threshold).fit_predict(data)


def _run_featts_like(dataset, n_clusters, random_state):
    features = extract_features(dataset.data)
    reduced, _ = select_features(features, n_features=10)
    return KMeans(n_clusters=n_clusters, n_init=5, random_state=random_state).fit_predict(reduced)


def _run_time2feat_like(dataset, n_clusters, random_state):
    features = extract_features(dataset.data)
    return AgglomerativeClustering(n_clusters=n_clusters, linkage="average").fit_predict(features)


def _run_dbscan(dataset, n_clusters, random_state):
    data = znormalize_dataset(dataset.data)
    distances = pairwise_distances(data)
    upper = distances[np.triu_indices_from(distances, k=1)]
    eps = float(np.quantile(upper, 0.1)) if upper.size else 1.0
    eps = eps if eps > 0 else float(upper[upper > 0].min(initial=1.0))
    return DBSCAN(eps=eps, min_samples=3, metric="precomputed").fit_predict(distances)


def _run_optics(dataset, n_clusters, random_state):
    data = znormalize_dataset(dataset.data)
    return OPTICS(min_samples=3).fit_predict(data)


def _run_meanshift(dataset, n_clusters, random_state):
    return MeanShift().fit_predict(znormalize_dataset(dataset.data))


def _run_gmm(dataset, n_clusters, random_state):
    data = znormalize_dataset(dataset.data)
    return GaussianMixture(
        n_components=n_clusters, random_state=random_state
    ).fit_predict(data)


def _run_spectral(dataset, n_clusters, random_state):
    return SpectralClustering(
        n_clusters=n_clusters, affinity="rbf", random_state=random_state
    ).fit_predict(znormalize_dataset(dataset.data))


def _run_som(dataset, n_clusters, random_state):
    return SelfOrganizingMap(
        grid_shape=(3, 3), n_clusters=n_clusters, n_epochs=10, random_state=random_state
    ).fit_predict(znormalize_dataset(dataset.data))


def _run_dae(dataset, n_clusters, random_state):
    return DAEClustering(
        n_clusters=n_clusters, n_epochs=40, random_state=random_state
    ).fit_predict(dataset.data)


def _run_dtc(dataset, n_clusters, random_state):
    return DTCClustering(
        n_clusters=n_clusters, n_epochs=40, random_state=random_state
    ).fit_predict(dataset.data)


def _run_somvae(dataset, n_clusters, random_state):
    return SOMVAEClustering(
        n_clusters=n_clusters, n_epochs=40, random_state=random_state
    ).fit_predict(dataset.data)


def _run_kgraph(dataset, n_clusters, random_state):
    from repro.core.kgraph import KGraph

    model = KGraph(n_clusters=n_clusters, random_state=random_state)
    return model.fit_predict(dataset.data)


_REGISTRY: Dict[str, BaselineMethod] = {}


def _register(name, family, runner, description):
    _REGISTRY[name] = BaselineMethod(name=name, family=family, runner=runner, description=description)


_register("kmeans", "raw", _run_kmeans, "k-Means on raw series (Euclidean)")
_register("kmeans_znorm", "raw", _run_kmeans_znorm, "k-Means on z-normalised series")
_register("kshape", "raw", _run_kshape, "k-Shape (shape-based distance)")
_register("kmedoids_sbd", "raw", _run_kmedoids_sbd, "k-Medoids on SBD distances")
_register("agglomerative", "raw", _run_agglomerative, "Ward agglomerative on z-normalised series")
_register("birch", "raw", _run_birch, "BIRCH-style CF summarisation + ward refinement")
_register("featts_like", "feature", _run_featts_like, "Feature extraction + selection + k-Means (FeatTS-like)")
_register("time2feat_like", "feature", _run_time2feat_like, "Feature extraction + agglomerative (Time2Feat-like)")
_register("dbscan", "density", _run_dbscan, "DBSCAN on z-normalised series")
_register("optics", "density", _run_optics, "OPTICS with median-reachability extraction")
_register("meanshift", "density", _run_meanshift, "Mean shift with estimated bandwidth")
_register("gmm", "model", _run_gmm, "Diagonal Gaussian mixture (EM)")
_register("spectral", "model", _run_spectral, "Spectral clustering on an RBF affinity")
_register("som", "model", _run_som, "Self-organising map")
_register("dae", "deep", _run_dae, "Auto-encoder latent space + k-Means (DAE)")
_register("dtc", "deep", _run_dtc, "Deep temporal clustering style (AE + soft assignment refinement)")
_register("somvae", "deep", _run_somvae, "Auto-encoder latent space quantised by a SOM (SOM-VAE-like)")
_register("kgraph", "graph", _run_kgraph, "k-Graph (graph embedding + consensus clustering)")

#: The 14 baselines shown in the Benchmark frame (k-Graph itself excluded).
_BENCHMARK_BASELINES = (
    "kmeans",
    "kmeans_znorm",
    "kshape",
    "kmedoids_sbd",
    "agglomerative",
    "birch",
    "featts_like",
    "time2feat_like",
    "dbscan",
    "meanshift",
    "gmm",
    "spectral",
    "som",
    "dae",
)


def get_method(name: str) -> BaselineMethod:
    """Look a method up by registry name."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ValidationError(f"unknown method {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def available_methods() -> List[str]:
    """All registered method names (baselines plus k-Graph and extras)."""
    return sorted(_REGISTRY)


def all_baseline_names() -> List[str]:
    """The canonical 14 Benchmark-frame baselines, in display order."""
    return list(_BENCHMARK_BASELINES)


def run_method(
    name: str, dataset: TimeSeriesDataset, n_clusters: Optional[int] = None, random_state=None
) -> np.ndarray:
    """Convenience wrapper: run a registered method on a dataset.

    ``n_clusters`` defaults to the dataset's number of ground-truth classes
    (the standard protocol on the UCR archive), falling back to 3 when the
    dataset is unlabelled.
    """
    method = get_method(name)
    if not isinstance(dataset, TimeSeriesDataset):
        # Raw arrays get the same shared validation (ragged/NaN inputs fail
        # by name) and an ad-hoc unlabelled dataset wrapper.
        array = check_time_series_dataset(dataset, name="training data", min_series=2)
        dataset = TimeSeriesDataset(array, name="adhoc")
    if n_clusters is None:
        n_clusters = dataset.default_cluster_count()
    return method.fit_predict(dataset, n_clusters, random_state=random_state)
