"""Agglomerative hierarchical clustering (single/complete/average/ward).

Implemented with the Lance-Williams update formula on a dense distance
matrix, which is appropriate for the benchmark-scale datasets the Graphint
tool handles (hundreds of series).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.utils.validation import check_array, check_positive_int

_LINKAGES = ("single", "complete", "average", "ward")


class AgglomerativeClustering(BaseClusterer):
    """Bottom-up hierarchical clustering cut at ``n_clusters``.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to return.
    linkage:
        ``"single"``, ``"complete"``, ``"average"`` or ``"ward"``.
    metric:
        Distance for the initial matrix, or ``"precomputed"``.  Ward linkage
        requires Euclidean distances.

    Attributes
    ----------
    labels_:
        Flat cluster assignment.
    merge_history_:
        List of ``(cluster_a, cluster_b, distance)`` tuples in merge order,
        usable to draw a dendrogram.
    """

    def __init__(
        self,
        n_clusters: int = 2,
        *,
        linkage: str = "average",
        metric: str = "euclidean",
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        if linkage not in _LINKAGES:
            raise ValidationError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
        if linkage == "ward" and metric not in {"euclidean", "precomputed"}:
            raise ValidationError("ward linkage requires euclidean distances")
        self.linkage = linkage
        self.metric = metric

        self.labels_: Optional[np.ndarray] = None
        self.merge_history_: List[Tuple[int, int, float]] = []

    # ------------------------------------------------------------------ #
    def _lance_williams(
        self,
        d_ik: np.ndarray,
        d_jk: np.ndarray,
        d_ij: float,
        size_i: int,
        size_j: int,
        sizes_k: np.ndarray,
    ) -> np.ndarray:
        if self.linkage == "single":
            return np.minimum(d_ik, d_jk)
        if self.linkage == "complete":
            return np.maximum(d_ik, d_jk)
        if self.linkage == "average":
            total = size_i + size_j
            return (size_i * d_ik + size_j * d_jk) / total
        # Ward (squared-distance form handled by caller).
        total = size_i + size_j + sizes_k
        return (
            (size_i + sizes_k) * d_ik + (size_j + sizes_k) * d_jk - sizes_k * d_ij
        ) / total

    def fit(self, data) -> "AgglomerativeClustering":
        """Cluster ``data`` (feature matrix or precomputed distance matrix)."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if self.metric == "precomputed":
            if array.shape[0] != array.shape[1]:
                raise ValidationError("precomputed distance matrix must be square")
            distances = array.astype(float).copy()
        else:
            distances = pairwise_distances(array, metric=self.metric)
        n = distances.shape[0]
        if self.n_clusters > n:
            raise ValidationError(
                f"n_clusters ({self.n_clusters}) cannot exceed n_samples ({n})"
            )
        if self.linkage == "ward":
            # Work with squared distances for the Lance-Williams ward update.
            distances = distances**2

        active = list(range(n))
        sizes = np.ones(n, dtype=int)
        membership = [[i] for i in range(n)]
        working = distances.copy()
        np.fill_diagonal(working, np.inf)
        self.merge_history_ = []

        n_active = n
        while n_active > self.n_clusters:
            # Find the closest active pair.
            sub = working[np.ix_(active, active)]
            flat = int(np.argmin(sub))
            ai, aj = divmod(flat, len(active))
            if ai == aj:
                break
            i, j = active[ai], active[aj]
            if i > j:
                i, j = j, i
            d_ij = float(working[i, j])
            self.merge_history_.append((i, j, d_ij if self.linkage != "ward" else float(np.sqrt(d_ij))))

            others = np.array([k for k in active if k != i and k != j], dtype=int)
            if others.size:
                updated = self._lance_williams(
                    working[i, others],
                    working[j, others],
                    d_ij,
                    int(sizes[i]),
                    int(sizes[j]),
                    sizes[others].astype(float),
                )
                working[i, others] = updated
                working[others, i] = updated
            working[i, i] = np.inf
            working[j, :] = np.inf
            working[:, j] = np.inf

            membership[i] = membership[i] + membership[j]
            membership[j] = []
            sizes[i] = sizes[i] + sizes[j]
            active.remove(j)
            n_active -= 1

        labels = np.empty(n, dtype=int)
        for cluster_id, root in enumerate(active):
            for sample in membership[root]:
                labels[sample] = cluster_id
        self.labels_ = labels
        return self
