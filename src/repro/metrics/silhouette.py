"""Silhouette coefficient on precomputed distance matrices or raw features.

The silhouette is used by the benchmark harness as an *internal* quality
measure (no ground truth needed) and by the Under-the-hood frame to describe
the per-length partitions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.utils.validation import check_array, check_labels


def _validate_distance_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = check_array(matrix, name="distances", ndim=2)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValidationError("distance matrix must be square")
    if np.any(matrix < -1e-12):
        raise ValidationError("distance matrix must be non-negative")
    if not np.allclose(matrix, matrix.T, atol=1e-8):
        raise ValidationError("distance matrix must be symmetric")
    return matrix


def silhouette_samples(
    data,
    labels,
    *,
    metric: str = "euclidean",
    precomputed: bool = False,
) -> np.ndarray:
    """Per-sample silhouette values ``(b - a) / max(a, b)``.

    Parameters
    ----------
    data:
        Feature matrix, or a square distance matrix when ``precomputed``.
    labels:
        Cluster assignment per sample.
    """
    labels = check_labels(labels)
    if precomputed:
        distances = _validate_distance_matrix(data)
    else:
        distances = pairwise_distances(check_array(data, name="data", ndim=2), metric=metric)
    n = distances.shape[0]
    if labels.shape[0] != n:
        raise ValidationError("labels length does not match the number of samples")

    unique = np.unique(labels)
    if unique.size < 2:
        return np.zeros(n)

    scores = np.zeros(n)
    cluster_masks = {label: labels == label for label in unique}
    for i in range(n):
        own = labels[i]
        own_mask = cluster_masks[own].copy()
        own_mask[i] = False
        own_size = int(own_mask.sum())
        if own_size == 0:
            scores[i] = 0.0
            continue
        a = float(distances[i, own_mask].mean())
        b = np.inf
        for label in unique:
            if label == own:
                continue
            b = min(b, float(distances[i, cluster_masks[label]].mean()))
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return scores


def silhouette_score(
    data,
    labels,
    *,
    metric: str = "euclidean",
    precomputed: bool = False,
    sample_size: Optional[int] = None,
    random_state=None,
) -> float:
    """Mean silhouette over all samples (optionally a random subsample)."""
    labels = check_labels(labels)
    if sample_size is not None and sample_size < labels.shape[0]:
        from repro.utils.validation import check_positive_int, check_random_state

        sample_size = check_positive_int(sample_size, "sample_size", minimum=2)
        rng = check_random_state(random_state)
        idx = rng.choice(labels.shape[0], size=sample_size, replace=False)
        data = np.asarray(data)[np.ix_(idx, idx)] if precomputed else np.asarray(data)[idx]
        labels = labels[idx]
    values = silhouette_samples(data, labels, metric=metric, precomputed=precomputed)
    return float(values.mean())
