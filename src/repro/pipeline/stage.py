"""The :class:`Stage` contract and the context a pipeline threads through it.

A stage is one resumable unit of a :class:`~repro.pipeline.Pipeline`: it
declares which context values it consumes (``inputs``), which it produces
(``outputs``), and which configuration entries change its behaviour
(``config_keys``).  Those declarations are the whole caching contract — a
stage's cache key is derived from exactly its config subset plus the
fingerprints of its declared inputs, so a parameter that a stage does not
list cannot invalidate its checkpoint.

Design rules every stage must follow:

* ``run(ctx)`` must be a pure function of its declared inputs and config
  subset: same inputs, same outputs (bit-identical).  Randomness must come
  from a generator passed *through the context*, never from global state,
  so the generator's stream position participates in the cache key.
* Fan-outs inside a stage go through ``ctx.backend_for(self.name)`` so the
  execution backend stays selectable per stage (``stage_backends=``).
* Worker-side timings are merged into ``ctx.watch`` — the pipeline adds its
  own ``stage:<name>`` wall-clock section around each run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.exceptions import PipelineError
from repro.parallel import (
    ExecutionBackend,
    RetryPolicy,
    SerialBackend,
    resolve_backend,
)
from repro.utils.timing import Stopwatch

#: Cumulative fault-tolerance counters snapshotted around each dispatch
#: (see :meth:`PipelineContext.dispatch`).
_FAULT_COUNTERS = ("attempts", "timeouts", "pool_rebuilds")


@dataclass
class PipelineContext:
    """Everything a pipeline run threads between stages.

    Attributes
    ----------
    config:
        Flat mapping of configuration entries; each stage sees only the
        subset named by its ``config_keys``.
    values:
        The data plane: seed values placed by the driver plus every stage
        output, keyed by the names the stages declare.
    backend:
        Default :class:`~repro.parallel.ExecutionBackend` for stage
        fan-outs.
    stage_backends:
        Per-stage overrides (stage name -> backend); resolved instances,
        lifetime owned by the caller (see :func:`stage_backend_scope`).
    watch:
        Stopwatch accumulating both worker-side sections (merged by the
        stages) and the pipeline's ``stage:<name>`` wall-clock sections.
    bytes_shipped:
        Per-stage pickled payload bytes submitted to process backends
        (stage name -> cumulative bytes), filled by :meth:`dispatch`.
        Stays zero for serial/thread backends — nothing crosses a process
        boundary there.
    retry:
        Optional :class:`~repro.parallel.RetryPolicy` applied to every
        fan-out dispatched through :meth:`dispatch` (``None`` keeps the
        single-attempt behaviour).
    fault_stats:
        Per-stage fault-tolerance counters (stage name -> ``{"attempts",
        "timeouts", "pool_rebuilds"}``), snapshotted from the backend's
        cumulative counters by :meth:`dispatch` like ``bytes_shipped``.
    plane_bytes:
        Per-stage bytes the distributed data plane kept *out* of job
        payloads (stage name -> bytes offloaded as fingerprint refs),
        snapshotted from the backend's
        :class:`~repro.distributed.stagecache.StageDataPlane` when one is
        attached.  Empty for every non-distributed backend.
    """

    config: Dict[str, object] = field(default_factory=dict)
    values: Dict[str, object] = field(default_factory=dict)
    backend: ExecutionBackend = field(default_factory=SerialBackend)
    stage_backends: Dict[str, ExecutionBackend] = field(default_factory=dict)
    watch: Stopwatch = field(default_factory=Stopwatch)
    bytes_shipped: Dict[str, int] = field(default_factory=dict)
    retry: Optional[RetryPolicy] = None
    fault_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    plane_bytes: Dict[str, int] = field(default_factory=dict)

    def backend_for(self, stage_name: str) -> ExecutionBackend:
        """The backend a stage's fan-out must dispatch through."""
        return self.stage_backends.get(stage_name, self.backend)

    def dispatch(self, stage_name: str, fn, jobs, *, on_result=None):
        """Fan out through ``backend_for(stage_name)``, accounting transfer.

        The preferred form of ``backend_for(name).map_jobs(...)`` inside a
        stage: identical semantics, plus the pickled payload volume of the
        dispatch (measured by process backends on their cumulative
        ``bytes_shipped`` counter) is attributed to ``stage_name`` so
        reports can show what each stage actually shipped.
        """
        backend = self.backend_for(stage_name)
        before = getattr(backend, "bytes_shipped", None)
        plane = getattr(backend, "data_plane", None)
        plane_before = (
            int(plane.bytes_offloaded) if plane is not None else None
        )
        counters_before = {
            name: int(getattr(backend, name, 0)) for name in _FAULT_COUNTERS
        }
        if self.retry is not None:
            # Passed only when set: custom ExecutionBackend subclasses that
            # predate the retry contract keep working without the keyword.
            outcomes = backend.map_jobs(
                fn, jobs, on_result=on_result, retry=self.retry
            )
        else:
            outcomes = backend.map_jobs(fn, jobs, on_result=on_result)
        if before is not None:
            delta = int(backend.bytes_shipped) - int(before)
            self.bytes_shipped[stage_name] = (
                self.bytes_shipped.get(stage_name, 0) + delta
            )
        if plane_before is not None:
            plane_delta = int(plane.bytes_offloaded) - plane_before
            self.plane_bytes[stage_name] = (
                self.plane_bytes.get(stage_name, 0) + plane_delta
            )
        stats = self.fault_stats.setdefault(
            stage_name, {name: 0 for name in _FAULT_COUNTERS}
        )
        for name in _FAULT_COUNTERS:
            stats[name] += int(getattr(backend, name, 0)) - counters_before[name]
        return outcomes

    def require(self, name: str) -> object:
        """Fetch a context value, failing loudly when it is absent."""
        if name not in self.values:
            raise PipelineError(
                f"context value {name!r} is not available; produced values: "
                f"{sorted(self.values)}"
            )
        return self.values[name]


class Stage(ABC):
    """One named, cacheable, resumable step of a :class:`Pipeline`.

    Class attributes
    ----------------
    name:
        Unique stage identifier (also the ``stage:<name>`` timing section
        and the ``--stage-backend <name>=...`` CLI key).
    inputs / outputs:
        Context value names consumed / produced.  ``run`` must return a
        mapping with exactly the ``outputs`` keys.
    config_keys:
        Configuration entries that affect this stage's behaviour; part of
        the cache key.
    version:
        Bump when the stage's implementation changes behaviour, so stale
        disk checkpoints from older code are never reused.
    fusable_with:
        Name of the immediately-following stage this stage can execute in
        one fused dispatch (``None`` for most stages).  A stage declaring
        it must implement :meth:`run_fused`; the pipeline decides per run
        whether fusing is worthwhile (both stages on the same process
        backend) and still records **both** stages' cache entries, so
        downstream-only re-runs and cache hits are preserved bit-identically.
    """

    name: str = "abstract"
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    config_keys: Tuple[str, ...] = ()
    version: int = 1
    fusable_with: Optional[str] = None

    @abstractmethod
    def run(self, ctx: PipelineContext) -> Mapping[str, object]:
        """Execute the stage and return its declared outputs."""

    def run_fused(
        self, next_stage: "Stage", ctx: PipelineContext
    ) -> Tuple[Mapping[str, object], Mapping[str, object]]:
        """Execute this stage and ``next_stage`` in one fused dispatch.

        Returns ``(own_outputs, next_outputs)`` — each mapping must carry
        exactly the respective stage's declared outputs, and both must be
        bit-identical to what the two unfused ``run`` calls would have
        produced (including any generators threaded between the stages,
        which the fused job must snapshot at the stage boundary).  Only
        stages that declare ``fusable_with`` implement this.
        """
        raise PipelineError(
            f"stage {self.name!r} declares no fused execution path"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, inputs={self.inputs}, "
            f"outputs={self.outputs})"
        )


@contextmanager
def stage_backend_scope(
    stage_backends: Optional[Mapping[str, Union[None, str, ExecutionBackend]]],
    n_jobs: Optional[int] = None,
) -> Iterator[Dict[str, ExecutionBackend]]:
    """Resolve a ``{stage name: backend spec}`` mapping for one pipeline run.

    Backend *names* are resolved to fresh instances whose pooled workers are
    released when the scope exits; caller-supplied
    :class:`~repro.parallel.ExecutionBackend` instances pass through
    untouched and stay open (mirroring
    :func:`repro.parallel.backend_scope`).
    """
    resolved: Dict[str, ExecutionBackend] = {}
    owned = []
    try:
        for stage_name, spec in (stage_backends or {}).items():
            backend = resolve_backend(spec, None if isinstance(spec, ExecutionBackend) else n_jobs)
            resolved[str(stage_name)] = backend
            if backend is not spec:
                owned.append(backend)
        yield resolved
    finally:
        for backend in owned:
            backend.close()
