"""Mean-shift clustering with a flat (top-hat) kernel.

Mode-seeking baseline: the number of clusters is discovered from the data,
which contrasts nicely with the fixed-k methods in the Benchmark frame.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.utils.validation import check_array, check_positive_int


def estimate_bandwidth(data, quantile: float = 0.3) -> float:
    """Estimate a bandwidth as the ``quantile`` of the pairwise distances."""
    array = check_array(data, name="data", ndim=2, min_rows=2)
    if not 0.0 < quantile <= 1.0:
        raise ValidationError(f"quantile must be in (0, 1], got {quantile}")
    distances = pairwise_distances(array)
    upper = distances[np.triu_indices_from(distances, k=1)]
    if upper.size == 0:
        return 1.0
    value = float(np.quantile(upper, quantile))
    return value if value > 0 else float(upper[upper > 0].min(initial=1.0))


class MeanShift(BaseClusterer):
    """Flat-kernel mean shift.

    Parameters
    ----------
    bandwidth:
        Kernel radius; ``None`` estimates it from the data.
    max_iter:
        Maximum shifting iterations per seed.
    merge_tol_factor:
        Modes closer than ``merge_tol_factor * bandwidth`` are merged.

    Attributes
    ----------
    cluster_centers_:
        Discovered modes.
    labels_:
        Assignment of each sample to its nearest mode.
    """

    def __init__(
        self,
        bandwidth: Optional[float] = None,
        *,
        max_iter: int = 300,
        merge_tol_factor: float = 0.5,
    ) -> None:
        if bandwidth is not None and bandwidth <= 0:
            raise ValidationError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = bandwidth
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if merge_tol_factor <= 0:
            raise ValidationError("merge_tol_factor must be positive")
        self.merge_tol_factor = float(merge_tol_factor)

        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.bandwidth_: Optional[float] = None

    def fit(self, data) -> "MeanShift":
        """Run mean shift on ``data`` of shape (n_samples, n_features)."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        bandwidth = self.bandwidth if self.bandwidth is not None else estimate_bandwidth(array)
        self.bandwidth_ = float(bandwidth)

        modes = array.copy()
        for _ in range(self.max_iter):
            new_modes = modes.copy()
            moved = False
            for i in range(modes.shape[0]):
                distances = np.linalg.norm(array - modes[i], axis=1)
                within = array[distances <= bandwidth]
                if within.shape[0] == 0:
                    continue
                candidate = within.mean(axis=0)
                if not np.allclose(candidate, modes[i], atol=1e-7):
                    moved = True
                new_modes[i] = candidate
            modes = new_modes
            if not moved:
                break

        # Merge modes that landed within a fraction of the bandwidth.
        centers = []
        for mode in modes:
            for existing in centers:
                if np.linalg.norm(mode - existing) <= self.merge_tol_factor * bandwidth:
                    break
            else:
                centers.append(mode)
        centers = np.vstack(centers)

        distances = np.linalg.norm(array[:, None, :] - centers[None, :, :], axis=2)
        self.cluster_centers_ = centers
        self.labels_ = np.argmin(distances, axis=1)
        return self
