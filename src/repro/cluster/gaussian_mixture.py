"""Gaussian mixture model clustering via expectation-maximisation.

Model-based baseline for the Benchmark frame; diagonal covariances keep the
estimator robust in the high-dimensional raw-series space.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.cluster.kmeans import KMeans
from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_positive_int, check_random_state


class GaussianMixture(BaseClusterer):
    """Diagonal-covariance Gaussian mixture fitted with EM.

    Parameters
    ----------
    n_components:
        Number of mixture components (clusters).
    max_iter:
        Maximum EM iterations.
    tol:
        Log-likelihood improvement threshold for convergence.
    reg_covar:
        Ridge added to variances for numerical stability.
    random_state:
        Seed controlling the k-Means initialisation.

    Attributes
    ----------
    weights_, means_, variances_:
        Mixture parameters.
    labels_:
        Hard assignment (argmax responsibility) of the training data.
    log_likelihood_:
        Final per-sample average log-likelihood.
    """

    def __init__(
        self,
        n_components: int = 2,
        *,
        max_iter: int = 200,
        tol: float = 1e-5,
        reg_covar: float = 1e-6,
        random_state=None,
    ) -> None:
        self.n_components = check_positive_int(n_components, "n_components")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if tol <= 0:
            raise ValidationError(f"tol must be positive, got {tol}")
        self.tol = float(tol)
        if reg_covar < 0:
            raise ValidationError(f"reg_covar must be non-negative, got {reg_covar}")
        self.reg_covar = float(reg_covar)
        self.random_state = random_state

        self.weights_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.variances_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.log_likelihood_: Optional[float] = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #
    def _log_gaussian(self, data: np.ndarray) -> np.ndarray:
        """Per-sample, per-component log density (n_samples, n_components)."""
        n, d = data.shape
        log_prob = np.empty((n, self.n_components))
        for j in range(self.n_components):
            var = self.variances_[j]
            diff = data - self.means_[j]
            log_prob[:, j] = -0.5 * (
                d * np.log(2.0 * np.pi)
                + np.sum(np.log(var))
                + np.sum(diff * diff / var, axis=1)
            )
        return log_prob

    def fit(self, data) -> "GaussianMixture":
        """Fit the mixture on ``data`` of shape (n_samples, n_features)."""
        array = check_array(data, name="data", ndim=2, min_rows=2)
        n, d = array.shape
        if self.n_components > n:
            raise ValidationError(
                f"n_components ({self.n_components}) cannot exceed n_samples ({n})"
            )
        rng = check_random_state(self.random_state)

        # Initialise responsibilities from a quick k-Means partition.
        kmeans = KMeans(n_clusters=self.n_components, n_init=3, random_state=rng)
        initial = kmeans.fit_predict(array)
        responsibilities = np.zeros((n, self.n_components))
        responsibilities[np.arange(n), initial] = 1.0

        previous_ll = -np.inf
        for self.n_iter_ in range(1, self.max_iter + 1):
            # M step.
            weights = responsibilities.sum(axis=0) + 1e-12
            self.weights_ = weights / n
            self.means_ = (responsibilities.T @ array) / weights[:, None]
            variances = np.empty((self.n_components, d))
            for j in range(self.n_components):
                diff = array - self.means_[j]
                variances[j] = (responsibilities[:, j] @ (diff * diff)) / weights[j]
            self.variances_ = variances + self.reg_covar

            # E step.
            log_prob = self._log_gaussian(array) + np.log(self.weights_)[None, :]
            log_norm = np.logaddexp.reduce(log_prob, axis=1)
            responsibilities = np.exp(log_prob - log_norm[:, None])
            log_likelihood = float(log_norm.mean())
            if abs(log_likelihood - previous_ll) < self.tol:
                previous_ll = log_likelihood
                break
            previous_ll = log_likelihood

        self.log_likelihood_ = previous_ll
        self.labels_ = np.argmax(responsibilities, axis=1)
        return self

    def predict_proba(self, data) -> np.ndarray:
        """Posterior responsibilities for new samples."""
        self._check_fitted()
        array = check_array(data, name="data", ndim=2, min_rows=1)
        log_prob = self._log_gaussian(array) + np.log(self.weights_)[None, :]
        log_norm = np.logaddexp.reduce(log_prob, axis=1)
        return np.exp(log_prob - log_norm[:, None])

    def predict(self, data) -> np.ndarray:
        """Hard component assignment for new samples."""
        return np.argmax(self.predict_proba(data), axis=1)
