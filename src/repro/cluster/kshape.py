"""k-Shape clustering (Paparrizos & Gravano, SIGMOD 2015).

k-Shape is one of the two baselines shown side-by-side with k-Graph in the
Clustering-comparison and Interpretability-test frames.  It clusters
z-normalised series with the shape-based distance (SBD) and extracts each
cluster's centroid as the maximiser of a Rayleigh quotient over aligned
members ("shape extraction").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.metrics.distances import align_by_sbd, sbd_distance
from repro.utils.normalization import znormalize, znormalize_dataset
from repro.utils.validation import check_array, check_positive_int, check_random_state


class KShape(BaseClusterer):
    """Shape-based time series clustering.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    max_iter:
        Maximum refinement iterations.
    n_init:
        Independent restarts; the run with the lowest total SBD wins.
    random_state:
        Seed or generator for the random initial assignment.

    Attributes
    ----------
    cluster_centers_:
        Z-normalised centroid series, shape ``(n_clusters, length)``.
    labels_:
        Cluster index per series.
    inertia_:
        Sum of SBD distances of members to their centroid.
    """

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        max_iter: int = 50,
        n_init: int = 3,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.n_init = check_positive_int(n_init, "n_init")
        self.random_state = random_state

        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _shape_extraction(members: np.ndarray, reference: np.ndarray) -> np.ndarray:
        """Extract a new centroid from ``members`` aligned to ``reference``."""
        length = members.shape[1]
        if members.shape[0] == 0:
            return reference.copy()
        aligned = np.vstack([align_by_sbd(reference, series) for series in members])
        aligned = znormalize_dataset(aligned)
        # Rayleigh quotient maximisation: the new shape is the dominant
        # eigenvector of Q^T S Q where S = A^T A and Q centres the series.
        s = aligned.T @ aligned
        q = np.eye(length) - np.full((length, length), 1.0 / length)
        m = q @ s @ q
        eigenvalues, eigenvectors = np.linalg.eigh(m)
        centroid = eigenvectors[:, int(np.argmax(eigenvalues))]
        # The eigenvector sign is arbitrary: keep the orientation closest to the members.
        distance_pos = float(np.sum((aligned - centroid) ** 2))
        distance_neg = float(np.sum((aligned + centroid) ** 2))
        if distance_neg < distance_pos:
            centroid = -centroid
        return znormalize(centroid)

    def _assign(self, data: np.ndarray, centers: np.ndarray) -> np.ndarray:
        n = data.shape[0]
        labels = np.zeros(n, dtype=int)
        for i in range(n):
            distances = [sbd_distance(centers[j], data[i]) for j in range(self.n_clusters)]
            labels[i] = int(np.argmin(distances))
        return labels

    def _total_distance(self, data: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
        return float(
            sum(sbd_distance(centers[labels[i]], data[i]) for i in range(data.shape[0]))
        )

    def _single_run(self, data: np.ndarray, rng: np.random.Generator):
        n = data.shape[0]
        labels = rng.integers(0, self.n_clusters, size=n)
        # Guarantee every cluster is initially non-empty.
        for j in range(self.n_clusters):
            if not np.any(labels == j):
                labels[int(rng.integers(n))] = j
        centers = np.vstack(
            [znormalize(data[labels == j].mean(axis=0)) for j in range(self.n_clusters)]
        )
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            new_centers = centers.copy()
            for j in range(self.n_clusters):
                members = data[labels == j]
                if members.shape[0] > 0:
                    new_centers[j] = self._shape_extraction(members, centers[j])
            new_labels = self._assign(data, new_centers)
            # Re-seed empty clusters with the worst-fitting series.
            for j in range(self.n_clusters):
                if not np.any(new_labels == j):
                    distances = np.array(
                        [sbd_distance(new_centers[new_labels[i]], data[i]) for i in range(n)]
                    )
                    new_labels[int(np.argmax(distances))] = j
            centers = new_centers
            if np.array_equal(new_labels, labels):
                labels = new_labels
                break
            labels = new_labels
        return centers, labels, self._total_distance(data, centers, labels), n_iter

    def fit(self, data) -> "KShape":
        """Cluster the rows of ``data`` (each row a univariate series)."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if array.shape[0] < self.n_clusters:
            raise ValidationError(
                f"n_clusters ({self.n_clusters}) cannot exceed n_series ({array.shape[0]})"
            )
        array = znormalize_dataset(array)
        rng = check_random_state(self.random_state)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._single_run(array, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, data) -> np.ndarray:
        """Assign new series to the nearest (SBD) fitted centroid."""
        self._check_fitted()
        array = znormalize_dataset(check_array(data, name="data", ndim=2, min_rows=1))
        if array.shape[1] != self.cluster_centers_.shape[1]:
            raise ValidationError(
                f"series length {array.shape[1]} does not match centroid length "
                f"{self.cluster_centers_.shape[1]}"
            )
        return self._assign(array, self.cluster_centers_)
