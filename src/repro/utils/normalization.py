"""Normalisation and re-sampling helpers for time series."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_positive_int


def znormalize(series, epsilon: float = 1e-12) -> np.ndarray:
    """Return the z-normalised version of ``series``.

    Constant (zero-variance) series are returned as all zeros rather than
    dividing by zero; this matches the convention used by k-Shape and by the
    k-Graph embedding step.
    """
    array = check_array(series, name="series", ndim=1, min_rows=1)
    std = float(array.std())
    if std < epsilon:
        return np.zeros_like(array)
    return (array - array.mean()) / std


def znormalize_dataset(data, epsilon: float = 1e-12) -> np.ndarray:
    """Row-wise z-normalisation of a (n_series, length) dataset."""
    array = check_array(data, name="data", ndim=2, min_rows=1)
    means = array.mean(axis=1, keepdims=True)
    stds = array.std(axis=1, keepdims=True)
    safe = np.where(stds < epsilon, 1.0, stds)
    normalized = (array - means) / safe
    normalized[np.squeeze(stds < epsilon, axis=1)] = 0.0
    return normalized


def minmax_scale(series, feature_range=(0.0, 1.0)) -> np.ndarray:
    """Scale ``series`` linearly into ``feature_range``."""
    array = check_array(series, name="series", ndim=1, min_rows=1)
    low, high = float(feature_range[0]), float(feature_range[1])
    if high <= low:
        raise ValidationError(f"feature_range must be increasing, got {feature_range}")
    minimum, maximum = float(array.min()), float(array.max())
    if np.isclose(maximum, minimum):
        return np.full_like(array, (low + high) / 2.0)
    scaled = (array - minimum) / (maximum - minimum)
    return scaled * (high - low) + low


def paa(series, n_segments: int) -> np.ndarray:
    """Piecewise Aggregate Approximation of ``series`` into ``n_segments`` means.

    Used to build coarse representations of node patterns in the Graph frame
    and to speed up feature extraction on long series.
    """
    array = check_array(series, name="series", ndim=1, min_rows=1)
    n_segments = check_positive_int(n_segments, "n_segments")
    n = array.shape[0]
    if n_segments >= n:
        return array.copy()
    # Distribute points as evenly as possible across segments.
    edges = np.linspace(0, n, n_segments + 1).astype(int)
    return np.array([array[edges[i]: edges[i + 1]].mean() for i in range(n_segments)])


def resample_length(series, target_length: int) -> np.ndarray:
    """Resample ``series`` to ``target_length`` points by linear interpolation."""
    array = check_array(series, name="series", ndim=1, min_rows=2)
    target_length = check_positive_int(target_length, "target_length", minimum=2)
    if array.shape[0] == target_length:
        return array.copy()
    source = np.linspace(0.0, 1.0, array.shape[0])
    target = np.linspace(0.0, 1.0, target_length)
    return np.interp(target, source, array)


def resample_dataset(data, target_length: int) -> np.ndarray:
    """Resample every row of a dataset to ``target_length`` points."""
    array = check_array(data, name="data", ndim=2, min_rows=1)
    return np.vstack([resample_length(row, target_length) for row in array])
