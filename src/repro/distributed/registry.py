"""The safe dispatch table distributed workers execute from.

A worker never unpickles a callable off the wire: the coordinator sends a
**name**, and the worker resolves it against this registry — functions the
library (or the user's own startup code) explicitly registered.  That is
the whole security model of the worker protocol: job *data* is trusted
within a deployment (like the on-disk stage cache), job *code* must already
be installed on the worker.

Functions register under their canonical ``module:qualname`` (or an
explicit name)::

    from repro.distributed import register_worker_function

    @register_worker_function
    def my_job(payload): ...

The library's own fan-out functions (campaign cells, pipeline stage jobs,
pairwise strips, ...) self-register at import time;
:func:`load_default_worker_functions` imports those modules so a freshly
started worker resolves every in-tree fan-out out of the box.

This module must stay import-light (stdlib + :mod:`repro.exceptions`
only): it is imported at the bottom of several hot modules to register
their job functions, and anything heavier would create import cycles.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.exceptions import ValidationError

_TABLE: Dict[str, Callable] = {}
_LOCK = threading.Lock()
_DEFAULTS_LOADED = False

#: Modules whose import registers the library's standard worker functions.
_DEFAULT_MODULES = (
    "repro.distributed.functions",
    "repro.benchmark.runner",
    "repro.pipeline.kgraph_stages",
    "repro.core.interpretability",
    "repro.core.kgraph",
    "repro.metrics.distances",
)


def canonical_name(fn: Callable) -> str:
    """The default registry name of ``fn``: ``module:qualname``."""
    return f"{fn.__module__}:{getattr(fn, '__qualname__', fn.__name__)}"


def register_worker_function(
    fn: Optional[Callable] = None, *, name: Optional[str] = None
) -> Callable:
    """Register ``fn`` for distributed dispatch (usable as a decorator).

    Registering a different function under an already-taken name is
    rejected; re-registering the same function is a no-op, so module
    reloads stay harmless.
    """
    if fn is None:
        return lambda actual: register_worker_function(actual, name=name)
    if not callable(fn):
        raise ValidationError(
            f"only callables can be registered as worker functions, got "
            f"{type(fn).__name__}"
        )
    key = name if name is not None else canonical_name(fn)
    with _LOCK:
        existing = _TABLE.get(key)
        if existing is not None and existing is not fn:
            raise ValidationError(
                f"worker function name {key!r} is already registered to a "
                "different callable"
            )
        _TABLE[key] = fn
    return fn


def load_default_worker_functions() -> None:
    """Import every module that self-registers library worker functions.

    Idempotent; called by worker services on startup and lazily by the
    lookup helpers, so both ends of the wire agree on the default table.
    """
    global _DEFAULTS_LOADED
    with _LOCK:
        if _DEFAULTS_LOADED:
            return
        _DEFAULTS_LOADED = True
    import importlib

    for module_name in _DEFAULT_MODULES:
        importlib.import_module(module_name)


def registered_function_names() -> List[str]:
    """Every resolvable function name, sorted (defaults included)."""
    load_default_worker_functions()
    with _LOCK:
        return sorted(_TABLE)


def resolve_worker_function(name: str) -> Callable:
    """Worker-side lookup: the callable registered under ``name``."""
    load_default_worker_functions()
    with _LOCK:
        fn = _TABLE.get(name)
    if fn is None:
        raise ValidationError(
            f"unknown worker function {name!r}; a worker only executes "
            "functions registered with register_worker_function (see "
            "repro.distributed.registry)"
        )
    return fn


def worker_function_name(fn: Callable) -> str:
    """Coordinator-side reverse lookup: the name workers resolve ``fn`` by."""
    if isinstance(fn, str):
        return fn
    load_default_worker_functions()
    key = canonical_name(fn)
    with _LOCK:
        if _TABLE.get(key) is fn:
            return key
        for name, registered in _TABLE.items():
            if registered is fn:
                return name
    raise ValidationError(
        f"{key} is not registered for distributed dispatch; register it "
        "with repro.distributed.register_worker_function so workers can "
        "resolve it by name"
    )
