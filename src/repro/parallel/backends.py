"""Execution backends: serial, thread-pool and process-pool job mapping.

The whole library fans work out through one tiny contract —
:meth:`ExecutionBackend.map_jobs` — so every fan-out site (per-length graph
embedding, benchmark campaigns, graphoid extraction, ...) is parallelised the
same way and new backends only have to implement one method.

Design rules every backend must follow:

* **Ordered results.** ``map_jobs(fn, jobs)`` returns one
  :class:`JobOutcome` per job, in the order the jobs were submitted,
  regardless of completion order.
* **Per-job error capture.** A raising job never takes down its siblings:
  the exception is captured on the outcome (``error`` / ``exception``) and
  the caller decides whether to re-raise (:meth:`JobOutcome.unwrap`) or to
  degrade gracefully (the benchmark runner records the error on the result).
* **Determinism is the caller's job.** Backends never draw randomness; any
  stochastic job must receive its own pre-spawned seed/generator so results
  are bit-identical across backends (see :func:`repro.utils.rng.spawn_rng`).

Fault tolerance (see :mod:`repro.parallel.retry`): every backend accepts a
:class:`~repro.parallel.retry.RetryPolicy` — per call
(``map_jobs(..., retry=...)``) or as an instance default
(``resolve_backend(..., retry=...)``).  The policy adds bounded retries
with deterministic backoff, per-attempt timeouts enforced by watchdogs
that abandon hung work, and a whole-fan-out deadline.  The process
backends additionally recover from killed workers without a policy:
a broken pool is rebuilt (bounded by ``max_pool_rebuilds``), surviving
chunks are re-dispatched in quarantine — one at a time, bisected on
repeat breakage — so a single poison job is isolated to a single-job
chunk whose failure is recorded per job while its innocent chunk-mates'
results are recovered.  :class:`FallbackBackend` chains backends and
demotes (e.g. shared -> process -> thread) when a pool's rebuild budget
is exhausted; jobs carry their own seeds, so demotion never changes
results.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
import time
import traceback as traceback_module
from abc import ABC, abstractmethod
from collections import deque
from contextlib import contextmanager
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import ParallelExecutionError, ValidationError
from repro.parallel.retry import (
    DEFAULT_MAX_POOL_REBUILDS,
    JobTimeoutError,
    RetryPolicy,
    WorkerCrashError,
    WorkerPoolExhausted,
)

logger = logging.getLogger("repro.parallel")

OnResult = Optional[Callable[["JobOutcome"], None]]


@dataclass
class JobOutcome:
    """The result (or captured failure) of one submitted job.

    Attributes
    ----------
    index:
        Position of the job in the submitted sequence; ``map_jobs`` returns
        outcomes sorted by this index.
    value:
        The job function's return value (``None`` when the job failed).
    error:
        ``"ExcType: message"`` when the job raised, else ``None``.
    exception:
        The captured exception object, when one is available in this
        process (always for serial/thread, usually for process backends).
    traceback:
        Formatted traceback of the failure, for diagnostics.
    duration_seconds:
        Wall-clock seconds the job spent executing in its worker.
    attempts:
        Dispatches this job consumed (``1`` without retries; ``0`` when a
        fan-out deadline expired before the job ever ran).
    retried:
        Whether the job was dispatched more than once.
    timed_out:
        Whether the recorded failure is a per-attempt timeout or fan-out
        deadline expiry rather than a raising job.

    The three fault-tolerance fields default to the historical
    single-attempt values, so outcomes pickled by older code (and JSON
    consumers reading ``as_dict``-style rows) keep loading unchanged.
    """

    index: int
    value: Any = None
    error: Optional[str] = None
    exception: Optional[BaseException] = field(default=None, repr=False)
    traceback: Optional[str] = field(default=None, repr=False)
    duration_seconds: float = 0.0
    attempts: int = 1
    retried: bool = False
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        """Whether the job completed without raising."""
        return self.error is None

    def unwrap(self) -> Any:
        """Return ``value``, re-raising the captured exception on failure."""
        if self.error is None:
            return self.value
        if self.exception is not None:
            raise self.exception
        raise ParallelExecutionError(f"job {self.index} failed: {self.error}")

    def to_payload(self) -> Dict[str, Any]:
        """Encode this outcome as a JSON-serialisable, binary-safe payload.

        ndarray values travel base64-encoded with dtype/shape (bit-identical
        round-trip), captured exceptions travel as ``{"type", "message"}``
        and reconstruct as the same class when it is allowlisted (see
        :mod:`repro.parallel.wire`), and the fault-tolerance fields
        (``attempts`` / ``retried`` / ``timed_out``) survive verbatim — the
        distributed worker protocol is built on exactly this round-trip.
        """
        from repro.parallel import wire

        return wire.encode_outcome(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobOutcome":
        """Inverse of :meth:`to_payload`."""
        from repro.parallel import wire

        return wire.decode_outcome(payload)


def pickled_nbytes(obj: Any) -> int:
    """Bytes ``obj`` occupies on the wire when shipped to a process pool.

    Measured with protocol 5 and an out-of-band ``buffer_callback``, so the
    raw pages of large NumPy arrays are *counted* (``memoryview.nbytes``)
    but never copied — the accounting costs metadata pickling only, which
    is why the process backends can afford it on every dispatch.  Objects
    that cannot be pickled measure as 0: the submission itself will surface
    the real error, the accounting must not.
    """
    buffers: List[pickle.PickleBuffer] = []
    try:
        data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    except Exception:  # noqa: BLE001 - unpicklable payloads fail at submit time
        return 0
    return len(data) + sum(buffer.raw().nbytes for buffer in buffers)


def _execute_one(fn: Callable[[Any], Any], index: int, job: Any) -> JobOutcome:
    """Run one job, capturing any exception into the outcome."""
    start = time.perf_counter()
    try:
        value = fn(job)
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the contract
        # KeyboardInterrupt/SystemExit intentionally propagate: aborting the
        # whole fan-out must stay possible from the keyboard.
        return JobOutcome(
            index=index,
            error=f"{type(exc).__name__}: {exc}",
            exception=exc,
            traceback=traceback_module.format_exc(),
            duration_seconds=time.perf_counter() - start,
        )
    return JobOutcome(
        index=index, value=value, duration_seconds=time.perf_counter() - start
    )


def _execute_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[Tuple[int, Any]]
) -> List[JobOutcome]:
    """Run a chunk of (index, job) pairs serially inside one worker."""
    return [_execute_one(fn, index, job) for index, job in chunk]


def _timeout_outcome(index: int, message: str) -> JobOutcome:
    """A ``timed_out`` failure outcome carrying a :class:`JobTimeoutError`."""
    exc = JobTimeoutError(message)
    return JobOutcome(
        index=index,
        error=f"{type(exc).__name__}: {message}",
        exception=exc,
        timed_out=True,
    )


def _execute_with_budget(
    fn: Callable[[Any], Any], index: int, job: Any, budget: Optional[float]
) -> JobOutcome:
    """Run one job, abandoning it with a ``timed_out`` outcome after ``budget`` s.

    Without a budget the job runs inline.  With one, it runs on a daemon
    watchdog thread that is *abandoned* (not killed — Python cannot kill a
    thread) when the budget expires; the hung call keeps a daemon thread
    busy but the fan-out moves on.
    """
    if budget is None:
        return _execute_one(fn, index, job)
    if budget <= 0:
        return _timeout_outcome(
            index, f"job {index} had no time budget left before it could run"
        )
    box: List[JobOutcome] = []
    worker = threading.Thread(
        target=lambda: box.append(_execute_one(fn, index, job)),
        name=f"repro-job-watchdog-{index}",
        daemon=True,
    )
    worker.start()
    worker.join(budget)
    if box:
        return box[0]
    return _timeout_outcome(
        index, f"job {index} exceeded its {budget:.3f} s attempt budget"
    )


def _run_one_with_policy(
    fn: Callable[[Any], Any],
    index: int,
    job: Any,
    policy: RetryPolicy,
    deadline_at: Optional[float],
) -> JobOutcome:
    """The in-process (serial/thread) attempt loop for one job."""
    attempts = 0
    while True:
        attempts += 1
        budget = policy.timeout
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            budget = remaining if budget is None else min(budget, remaining)
        outcome = _execute_with_budget(fn, index, job, budget)
        outcome.attempts = attempts
        outcome.retried = attempts > 1
        if outcome.ok:
            return outcome
        past_deadline = deadline_at is not None and time.monotonic() >= deadline_at
        if past_deadline or not policy.should_retry(outcome.exception, attempts):
            return outcome
        delay = policy.backoff_seconds(attempts + 1, index)
        if delay > 0:
            if deadline_at is not None:
                delay = min(delay, max(0.0, deadline_at - time.monotonic()))
            time.sleep(delay)


class ExecutionBackend(ABC):
    """Maps a function over jobs, with ordered results and error capture."""

    name: str = "abstract"

    #: Instance-default :class:`RetryPolicy` applied when ``map_jobs`` is
    #: called without an explicit ``retry=`` (set by ``resolve_backend``).
    retry: Optional[RetryPolicy] = None

    # Cumulative fault-tolerance counters (mirroring ``bytes_shipped`` on
    # the process backends): callers snapshot them around a dispatch to
    # attribute fault activity per fan-out.
    attempts: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0

    @abstractmethod
    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        """Apply ``fn`` to every job and return ordered :class:`JobOutcome`\\ s.

        ``on_result`` is invoked once per job, on its *final* outcome, as
        soon as that outcome is settled: in submission order for
        :class:`SerialBackend`, in completion order for the parallel
        backends (callers needing strict streaming order should iterate the
        returned list instead).  Implementations MUST invoke ``on_result``
        from the thread that called ``map_jobs`` — callers rely on this to
        keep their callbacks single-threaded.

        ``retry`` applies a :class:`~repro.parallel.retry.RetryPolicy` to
        this call (overriding the instance default); ``None`` keeps the
        single-attempt behaviour.
        """

    def _effective_retry(self, retry: Optional[RetryPolicy]) -> Optional[RetryPolicy]:
        policy = retry if retry is not None else self.retry
        if policy is not None and not isinstance(policy, RetryPolicy):
            raise ValidationError(
                f"retry must be a RetryPolicy or None, got {type(policy).__name__}"
            )
        return policy

    def close(self) -> None:
        """Release any pooled workers (no-op for stateless backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @staticmethod
    def _collect(outcomes: List[Optional[JobOutcome]]) -> List[JobOutcome]:
        """Validate that every submitted job produced exactly one outcome.

        A lost job would silently desynchronise callers that group results
        positionally, so it fails loudly here instead.
        """
        missing = [index for index, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise ParallelExecutionError(
                f"backend lost the outcomes of jobs {missing}; every job must "
                "produce exactly one JobOutcome"
            )
        return outcomes  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Executes jobs one after another in the calling thread.

    This is the default everywhere: it adds no overhead, keeps tracebacks
    trivial, and — because jobs carry their own seeds — produces exactly the
    same results as the parallel backends.  With a retry policy, timed
    attempts run on a watchdog thread so a hung job is abandoned instead of
    blocking the fan-out; without one, nothing leaves the calling thread.
    """

    name = "serial"

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        policy = self._effective_retry(retry)
        deadline_at = (
            time.monotonic() + policy.deadline
            if policy is not None and policy.deadline is not None
            else None
        )
        outcomes: List[JobOutcome] = []
        for index, job in enumerate(jobs):
            if policy is None:
                outcome = _execute_one(fn, index, job)
            elif deadline_at is not None and time.monotonic() >= deadline_at:
                outcome = _timeout_outcome(
                    index,
                    f"fan-out deadline of {policy.deadline} s expired before "
                    f"job {index} ran",
                )
                outcome.attempts = 0
            else:
                outcome = _run_one_with_policy(fn, index, job, policy, deadline_at)
            self.attempts += outcome.attempts
            if outcome.timed_out:
                self.timeouts += 1
            if on_result is not None:
                on_result(outcome)
            outcomes.append(outcome)
        return outcomes


class ThreadBackend(ExecutionBackend):
    """Executes jobs on a thread pool.

    Best for NumPy-heavy jobs (the BLAS/linalg kernels release the GIL) and
    for anything I/O-bound; jobs and results never cross a process boundary,
    so nothing needs to be picklable.
    """

    name = "thread"

    def __init__(self, n_workers: Optional[int] = None) -> None:
        if n_workers is not None and int(n_workers) < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = None if n_workers is None else int(n_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _executor(self) -> ThreadPoolExecutor:
        # The pool is created lazily and reused across map_jobs calls, so a
        # pipeline with several fan-outs (per-length fit, length scoring,
        # graphoid extraction) pays the startup cost once.  max_workers is an
        # upper bound: the executor starts threads on demand, so small
        # fan-outs never hold idle workers.  Creation is locked because a
        # shared backend instance may be driven from several threads (e.g.
        # the per-model inference engines of repro.serve).
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers or os.cpu_count() or 1
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        policy = self._effective_retry(retry)
        deadline_at = (
            time.monotonic() + policy.deadline
            if policy is not None and policy.deadline is not None
            else None
        )
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        pool = self._executor()
        if policy is None:
            futures = {
                pool.submit(_execute_one, fn, index, job): index
                for index, job in enumerate(jobs)
            }
        else:
            # The attempt loop (with its timeout watchdogs) runs inside the
            # pool worker; a hung attempt parks a daemon watchdog thread,
            # never the pool worker itself, so close() cannot deadlock.
            futures = {
                pool.submit(
                    _run_one_with_policy, fn, index, job, policy, deadline_at
                ): index
                for index, job in enumerate(jobs)
            }
        try:
            remaining = (
                None
                if deadline_at is None
                else max(0.0, deadline_at - time.monotonic())
            )
            for future in as_completed(futures, timeout=remaining):
                outcome = future.result()
                outcomes[outcome.index] = outcome
                self.attempts += outcome.attempts
                if outcome.timed_out:
                    self.timeouts += 1
                if on_result is not None:
                    on_result(outcome)
        except _FuturesTimeout:
            # Fan-out deadline expired with jobs still queued/running: the
            # queued ones are cancelled, the running ones are abandoned (the
            # per-attempt watchdogs inside them expire on the same deadline).
            for future, index in futures.items():
                if outcomes[index] is not None:
                    continue
                future.cancel()
                outcome = _timeout_outcome(
                    index,
                    f"fan-out deadline of {policy.deadline} s expired before "
                    f"job {index} finished",
                )
                outcome.attempts = 0
                outcomes[index] = outcome
                self.timeouts += 1
                if on_result is not None:
                    on_result(outcome)
        return self._collect(outcomes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(n_workers={self.n_workers})"


class ProcessBackend(ExecutionBackend):
    """Executes jobs on a process pool.

    Sidesteps the GIL entirely, at the cost of pickling: the job function
    must be a module-level callable and jobs/results must be picklable.
    ``chunk_size`` groups several jobs per worker task to amortise IPC
    overhead when jobs are small.

    Worker loss is recovered, policy or not: when the pool breaks
    (a worker was killed), it is rebuilt — bounded by
    ``max_pool_rebuilds`` of the retry policy (default
    ``DEFAULT_MAX_POOL_REBUILDS``) — and every chunk that was in flight is
    *quarantined*: re-dispatched alone on the fresh pool, and bisected on
    repeat breakage until the poison job sits in a single-job chunk whose
    worker-crash failure is recorded per job, while every innocent
    chunk-mate's result is recovered.  Per-attempt timeouts abandon hung
    workers (the pool is terminated and rebuilt) instead of blocking
    forever.
    """

    name = "process"

    def __init__(
        self, n_workers: Optional[int] = None, *, chunk_size: int = 1
    ) -> None:
        if n_workers is not None and int(n_workers) < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if int(chunk_size) < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.n_workers = None if n_workers is None else int(n_workers)
        self.chunk_size = int(chunk_size)
        #: Cumulative pickled payload bytes submitted across every
        #: ``map_jobs`` call (jobs only, not results) — callers snapshot it
        #: around a dispatch to attribute transfer volume per fan-out.
        #: Counted per *submitted chunk*, so a pool that breaks mid-fan-out
        #: never accounts for bytes that were never shipped.
        self.bytes_shipped = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _executor(self) -> ProcessPoolExecutor:
        # Lazily created and reused across map_jobs calls: one pool startup
        # per backend instance, not per fan-out.  max_workers is an upper
        # bound — worker processes are forked/spawned on demand as jobs are
        # submitted, so small fan-outs never pay for idle workers; workers
        # snapshot the parent process at creation (fork) or re-import it
        # (spawn).  Creation is locked for multi-threaded callers (see
        # ThreadBackend._executor).
        with self._pool_lock:
            if self._pool is None:
                # Start the multiprocessing resource tracker *before* any
                # worker can fork: workers then inherit (fork) or are handed
                # (spawn) the coordinator's tracker, so shared-memory
                # registrations land in one shared set no matter which
                # process creates, attaches or unlinks a segment.  Without
                # this, a worker forked before the tracker exists spins up
                # its own and warns about segments the coordinator unlinks.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.ensure_running()
                except Exception:  # noqa: BLE001 - tracker is an optimisation
                    pass
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers or os.cpu_count() or 1
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _abandon_pool(self) -> None:
        """Forcefully drop a pool whose workers are hung.

        ``shutdown(wait=True)`` would block on the hung worker forever, so
        the workers are terminated and the executor is shut down without
        waiting; terminated children are reaped with a bounded join.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - executor already broken
            pass
        for process in processes:
            try:
                process.join(timeout=1.0)
            except Exception:  # noqa: BLE001
                pass

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
        retry: Optional[RetryPolicy] = None,
        _finalize: OnResult = None,
    ) -> List[JobOutcome]:
        # ``_finalize`` is an internal hook (used by SharedMemoryBackend to
        # resolve worker-published result segments): it runs on the calling
        # thread, on every completed outcome, *before* the retry decision —
        # so a lost segment is a retryable per-job failure, not a surprise
        # after the fan-out settled.
        jobs = list(jobs)
        if not jobs:
            return []
        policy = self._effective_retry(retry)
        timeout = None if policy is None else policy.timeout
        deadline_at = (
            time.monotonic() + policy.deadline
            if policy is not None and policy.deadline is not None
            else None
        )
        max_rebuilds = (
            DEFAULT_MAX_POOL_REBUILDS
            if policy is None
            else int(policy.max_pool_rebuilds)
        )

        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        attempts = [0] * len(jobs)
        indexed = list(enumerate(jobs))
        #: Chunks awaiting a normal (parallel) dispatch.
        normal: Deque[List[Tuple[int, Any]]] = deque(
            indexed[start : start + self.chunk_size]
            for start in range(0, len(indexed), self.chunk_size)
        )
        #: Chunks implicated in a pool breakage: dispatched one at a time so
        #: repeat breakage unambiguously convicts the dispatched chunk.
        quarantined: Deque[List[Tuple[int, Any]]] = deque()
        rebuilds = 0
        next_round_delay = 0.0

        def record(outcome: JobOutcome) -> None:
            """Settle one job's final outcome and stream it to the caller."""
            outcome.attempts = attempts[outcome.index]
            outcome.retried = attempts[outcome.index] > 1
            if outcome.timed_out:
                self.timeouts += 1
            outcomes[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        def settle(outcome: JobOutcome) -> None:
            """Retry a failed outcome when the policy allows, else record it."""
            nonlocal next_round_delay
            index = outcome.index
            if _finalize is not None:
                _finalize(outcome)  # may turn an ok outcome into a per-job error
            if outcome.ok or policy is None:
                record(outcome)
                return
            past_deadline = (
                deadline_at is not None and time.monotonic() >= deadline_at
            )
            if past_deadline or not policy.should_retry(
                outcome.exception, attempts[index]
            ):
                record(outcome)
                return
            next_round_delay = max(
                next_round_delay, policy.backoff_seconds(attempts[index] + 1, index)
            )
            normal.append([(index, jobs[index])])

        def drain(outcome_for: Callable[[int], JobOutcome]) -> None:
            """Record a synthetic final outcome for every still-queued job."""
            while normal or quarantined:
                chunk = (normal if normal else quarantined).popleft()
                for index, _ in chunk:
                    record(outcome_for(index))

        while normal or quarantined:
            if deadline_at is not None and time.monotonic() >= deadline_at:
                drain(
                    lambda index: _timeout_outcome(
                        index,
                        f"fan-out deadline of {policy.deadline} s expired "
                        f"before job {index} finished",
                    )
                )
                break
            if rebuilds > max_rebuilds:
                def _exhausted(index: int) -> JobOutcome:
                    exc = WorkerPoolExhausted(
                        f"worker pool broke {rebuilds} times "
                        f"(max_pool_rebuilds={max_rebuilds}); job {index} "
                        "abandoned"
                    )
                    return JobOutcome(
                        index=index,
                        error=f"{type(exc).__name__}: {exc}",
                        exception=exc,
                    )

                drain(_exhausted)
                break
            if next_round_delay > 0:
                delay = next_round_delay
                if deadline_at is not None:
                    delay = min(delay, max(0.0, deadline_at - time.monotonic()))
                if delay > 0:
                    time.sleep(delay)
                next_round_delay = 0.0

            isolated = not normal
            if isolated:
                batch = [quarantined.popleft()]
            else:
                batch = list(normal)
                normal.clear()
            pool = self._executor()
            submitted: Dict[Any, List[Tuple[int, Any]]] = {}
            expiry: Dict[Any, Optional[float]] = {}
            pool_broken = False
            pool_hung = False
            round_start = time.monotonic()
            for position, chunk in enumerate(batch):
                for index, _ in chunk:
                    attempts[index] += 1
                    self.attempts += 1
                self.bytes_shipped += sum(
                    pickled_nbytes(job) for _, job in chunk
                )
                try:
                    future = pool.submit(_execute_chunk, fn, chunk)
                except Exception:  # noqa: BLE001 - pool broke between submits
                    pool_broken = True
                    # Never dispatched: give the attempt (and its bytes,
                    # approximately) back and requeue everything not yet
                    # submitted for the next round.
                    for index, _ in chunk:
                        attempts[index] -= 1
                        self.attempts -= 1
                    self.bytes_shipped -= sum(
                        pickled_nbytes(job) for _, job in chunk
                    )
                    for left in [chunk] + batch[position + 1 :]:
                        (quarantined if isolated else normal).append(left)
                    break
                submitted[future] = chunk
                chunk_expiry = (
                    None
                    if timeout is None
                    else round_start + float(timeout) * len(chunk)
                )
                if deadline_at is not None:
                    chunk_expiry = (
                        deadline_at
                        if chunk_expiry is None
                        else min(chunk_expiry, deadline_at)
                    )
                expiry[future] = chunk_expiry

            pending = set(submitted)
            while pending:
                now = time.monotonic()
                expiries = [
                    expiry[future]
                    for future in pending
                    if expiry[future] is not None
                ]
                if expiries:
                    done, _ = wait(
                        pending,
                        timeout=max(0.0, min(expiries) - now),
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    pending.discard(future)
                    chunk = submitted[future]
                    try:
                        chunk_outcomes = future.result()
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        if not isolated:
                            # Any in-flight chunk may be the killer:
                            # quarantine them all, each re-runs alone on the
                            # rebuilt pool.
                            quarantined.append(chunk)
                        elif len(chunk) > 1:
                            # This chunk, dispatched alone, broke the pool:
                            # bisect to pin the poison job down.
                            middle = len(chunk) // 2
                            quarantined.append(chunk[:middle])
                            quarantined.append(chunk[middle:])
                        else:
                            index = chunk[0][0]
                            crash = WorkerCrashError(
                                f"job {index} killed its worker process "
                                f"(attempt {attempts[index]}): {exc}"
                            )
                            record(
                                JobOutcome(
                                    index=index,
                                    error=f"{type(crash).__name__}: {crash}",
                                    exception=crash,
                                )
                            )
                        continue
                    except Exception as exc:  # noqa: BLE001 - unpicklable payload etc.
                        chunk_outcomes = [
                            JobOutcome(
                                index=index,
                                error=f"{type(exc).__name__}: {exc}",
                                exception=exc,
                                traceback=traceback_module.format_exc(),
                            )
                            for index, _ in chunk
                        ]
                    for outcome in chunk_outcomes:
                        settle(outcome)
                if done:
                    continue
                # Nothing completed within the shortest attempt budget: the
                # expired chunks' workers are hung.
                now = time.monotonic()
                expired = [
                    future
                    for future in pending
                    if expiry[future] is not None and now >= expiry[future]
                ]
                if not expired:
                    continue
                pool_hung = True
                for future in expired:
                    pending.discard(future)
                    for index, _ in submitted[future]:
                        settle(
                            _timeout_outcome(
                                index,
                                f"job {index} exceeded its attempt budget "
                                f"(timeout={timeout}, attempt "
                                f"{attempts[index]})",
                            )
                        )
                break

            if pool_hung:
                # The expired chunks' workers are stuck; in-flight innocents
                # are requeued (a cancelled-before-start chunk gets its
                # attempt back) and the pool is terminated, not joined.
                for future in pending:
                    chunk = submitted[future]
                    if future.cancel():
                        for index, _ in chunk:
                            attempts[index] -= 1
                            self.attempts -= 1
                    (quarantined if isolated else normal).append(chunk)
                self._abandon_pool()
                rebuilds += 1
                self.pool_rebuilds += 1
            elif pool_broken:
                # A dead pool cannot be reused; drop it so the next round
                # starts a fresh one (its workers are dead, so the shutdown
                # in close() cannot block).
                self.close()
                rebuilds += 1
                self.pool_rebuilds += 1
        return self._collect(outcomes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(n_workers={self.n_workers}, chunk_size={self.chunk_size})"


class FallbackBackend(ExecutionBackend):
    """An ordered chain of backends with automatic demotion.

    ``map_jobs`` runs on the active backend; when any outcome carries a
    :class:`~repro.parallel.retry.WorkerPoolExhausted` (the pool broke more
    times than its rebuild budget), the chain logs a structured warning,
    closes the exhausted backend (if the chain owns it) and re-runs the
    *whole* fan-out on the next backend.  Jobs carry their own seeds, so
    the re-run is bit-identical by construction — demotion trades speed for
    survival, never results.  The demotion is sticky: later fan-outs start
    on the demoted backend.

    ``on_result`` is buffered until a backend's results are accepted (a
    fan-out that is about to be re-run must not stream half its outcomes),
    then replayed in submission order on the calling thread.

    Build one with ``resolve_backend(fallback=("shared", "process",
    "thread"))``; the recorded :attr:`demotions` list is the structured
    audit trail.
    """

    name = "fallback"

    def __init__(
        self,
        backends: Sequence[ExecutionBackend],
        *,
        owned: Optional[Sequence[ExecutionBackend]] = None,
    ) -> None:
        backends = list(backends)
        if len(backends) < 2:
            raise ValidationError(
                "a fallback chain needs at least two backends (a primary "
                "plus at least one fallback)"
            )
        for backend in backends:
            if not isinstance(backend, ExecutionBackend):
                raise ValidationError(
                    "every fallback chain member must be an ExecutionBackend, "
                    f"got {type(backend).__name__}"
                )
        self.backends = backends
        self._owned = list(backends) if owned is None else list(owned)
        self.active_index = 0
        #: Structured audit trail of every demotion this chain performed.
        self.demotions: List[Dict[str, object]] = []

    @property
    def active(self) -> ExecutionBackend:
        """The backend currently serving fan-outs."""
        return self.backends[self.active_index]

    # Aggregated counters: the chain reports the sum over its members, so
    # callers snapshotting deltas (PipelineContext.dispatch) see fault
    # activity no matter which member served the fan-out.
    @property
    def bytes_shipped(self) -> int:  # type: ignore[override]
        return sum(int(getattr(b, "bytes_shipped", 0)) for b in self.backends)

    @property
    def attempts(self) -> int:  # type: ignore[override]
        return sum(int(getattr(b, "attempts", 0)) for b in self.backends)

    @property
    def timeouts(self) -> int:  # type: ignore[override]
        return sum(int(getattr(b, "timeouts", 0)) for b in self.backends)

    @property
    def pool_rebuilds(self) -> int:  # type: ignore[override]
        return sum(int(getattr(b, "pool_rebuilds", 0)) for b in self.backends)

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        jobs = list(jobs)
        policy = self._effective_retry(retry)
        while True:
            backend = self.backends[self.active_index]
            final = self.active_index >= len(self.backends) - 1
            kwargs: Dict[str, Any] = {"on_result": on_result if final else None}
            if policy is not None:
                kwargs["retry"] = policy
            outcomes = backend.map_jobs(fn, jobs, **kwargs)
            exhausted = [
                outcome
                for outcome in outcomes
                if isinstance(outcome.exception, WorkerPoolExhausted)
            ]
            if final or not exhausted:
                if not final and on_result is not None:
                    for outcome in outcomes:
                        on_result(outcome)
                return outcomes
            successor = self.backends[self.active_index + 1]
            self.demotions.append(
                {
                    "event": "backend_demoted",
                    "from": backend.name,
                    "to": successor.name,
                    "jobs": len(jobs),
                    "jobs_abandoned": len(exhausted),
                    "reason": str(exhausted[0].error),
                }
            )
            logger.warning(
                "fallback: demoting execution backend %r -> %r after "
                "worker-pool exhaustion (%d of %d jobs abandoned): %s",
                backend.name,
                successor.name,
                len(exhausted),
                len(jobs),
                exhausted[0].error,
            )
            if backend in self._owned:
                try:
                    backend.close()
                except Exception:  # noqa: BLE001 - already broken
                    pass
            self.active_index += 1

    def close(self) -> None:
        for backend in self._owned:
            try:
                backend.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = " -> ".join(backend.name for backend in self.backends)
        return f"FallbackBackend({names}, active={self.active.name})"


def _shared_memory_backend_class():
    # Imported lazily: shared.py imports ProcessBackend from this module.
    from repro.parallel.shared import SharedMemoryBackend

    return SharedMemoryBackend


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "threads": ThreadBackend,
    "process": ProcessBackend,
    "processes": ProcessBackend,
    "shared": _shared_memory_backend_class,
    "shared_memory": _shared_memory_backend_class,
}


def resolve_backend(
    backend: Union[None, str, ExecutionBackend] = None,
    n_jobs: Optional[int] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    fallback: Union[None, str, ExecutionBackend, Sequence] = None,
) -> ExecutionBackend:
    """Normalise the ``backend=`` / ``n_jobs=`` pair every API accepts.

    * an :class:`ExecutionBackend` instance is returned unchanged —
      combining one with ``n_jobs`` is rejected, since the instance already
      fixed its own worker count;
    * ``"serial"`` / ``"thread"`` / ``"process"`` / ``"shared"`` name a
      backend class (``n_jobs`` sets its worker count; ``"serial"`` ignores
      it; ``"shared"`` is a process pool with zero-copy shared-memory
      dataset plans, see :class:`repro.parallel.shared.SharedMemoryBackend`);
    * ``"distributed:HOST:PORT[,HOST:PORT...][@PLANE_DIR]"`` builds a
      :class:`repro.distributed.DistributedBackend` over that worker pool
      (``@PLANE_DIR`` enables the shared stage-cache data plane; ``n_jobs``
      is ignored — the worker pool *is* the parallelism);
    * ``backend=None`` with ``n_jobs`` > 1 selects :class:`ThreadBackend`;
    * everything else (the default) is :class:`SerialBackend`.

    ``retry`` installs a :class:`~repro.parallel.retry.RetryPolicy` as the
    resolved backend's instance default.  ``fallback`` names one or more
    further backends to demote to (a :class:`FallbackBackend` chain of
    ``backend`` followed by the fallbacks); pool exhaustion then degrades
    the fan-out instead of failing it, with bit-identical results.
    """
    if retry is not None and not isinstance(retry, RetryPolicy):
        raise ValidationError(
            f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
        )
    if fallback is not None:
        if isinstance(fallback, (str, ExecutionBackend)):
            fallback = (fallback,)
        specs = ([backend] if backend is not None else []) + list(fallback)
        if len(specs) < 2:
            raise ValidationError(
                "a fallback chain needs at least two backends; pass "
                "backend= plus fallback=, or a fallback= sequence of two "
                "or more"
            )
        members: List[ExecutionBackend] = []
        owned: List[ExecutionBackend] = []
        for spec in specs:
            member = resolve_backend(
                spec, None if isinstance(spec, ExecutionBackend) else n_jobs
            )
            members.append(member)
            if member is not spec:
                owned.append(member)
        chain = FallbackBackend(members, owned=owned)
        if retry is not None:
            chain.retry = retry
        return chain
    if isinstance(backend, ExecutionBackend):
        if n_jobs is not None:
            raise ValidationError(
                "n_jobs cannot be combined with an ExecutionBackend instance; "
                "configure the worker count on the instance instead"
            )
        if retry is not None:
            backend.retry = retry
        return backend
    if n_jobs is not None and int(n_jobs) < 1:
        raise ValidationError(f"n_jobs must be >= 1, got {n_jobs}")
    if backend is None:
        if n_jobs is not None and int(n_jobs) > 1:
            resolved: ExecutionBackend = ThreadBackend(int(n_jobs))
        else:
            resolved = SerialBackend()
        if retry is not None:
            resolved.retry = retry
        return resolved
    if isinstance(backend, str):
        key = backend.strip().lower()
        if key == "distributed" or key.startswith("distributed:"):
            # Imported lazily: repro.distributed builds on this module.
            from repro.distributed.backend import DistributedBackend

            resolved = DistributedBackend.from_spec(backend.strip())
            if retry is not None:
                resolved.retry = retry
            return resolved
        if key not in _BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r}; available: "
                f"{sorted(set(_BACKENDS))} or "
                "'distributed:HOST:PORT[,HOST:PORT...][@PLANE_DIR]'"
            )
        cls = _BACKENDS[key]
        if not isinstance(cls, type):
            cls = cls()  # lazy factory (see _shared_memory_backend_class)
        resolved = SerialBackend() if cls is SerialBackend else cls(n_jobs)
        if retry is not None:
            resolved.retry = retry
        return resolved
    raise ValidationError(
        f"backend must be None, a name, or an ExecutionBackend, got {type(backend).__name__}"
    )


@contextmanager
def backend_scope(
    backend: Union[None, str, ExecutionBackend] = None,
    n_jobs: Optional[int] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    fallback: Union[None, str, ExecutionBackend, Sequence] = None,
):
    """Resolve a backend for the duration of one pipeline run.

    Backends created here (from ``None`` or a name) hold pooled workers that
    are released on exit; a caller-supplied :class:`ExecutionBackend`
    instance is passed through untouched and stays open, since its lifetime
    belongs to the caller.  ``retry`` / ``fallback`` are forwarded to
    :func:`resolve_backend` (a fallback chain created here closes only the
    members it resolved itself).
    """
    resolved = resolve_backend(backend, n_jobs, retry=retry, fallback=fallback)
    owned = resolved is not backend
    try:
        yield resolved
    finally:
        if owned:
            resolved.close()
