"""A bank of per-series statistical and temporal features.

The selection mirrors the kind of catch22/tsfresh descriptors FeatTS and
Time2Feat rely on: moments, autocorrelation structure, entropy, peaks,
crossings, strike lengths, spectral and trend/seasonality summaries.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.normalization import znormalize
from repro.utils.validation import check_array, check_positive_int


def autocorrelation(series, lag: int = 1) -> float:
    """Sample autocorrelation of ``series`` at ``lag``."""
    array = check_array(series, name="series", ndim=1, min_rows=2)
    lag = check_positive_int(lag, "lag")
    if lag >= array.shape[0]:
        return 0.0
    centered = array - array.mean()
    denominator = float(np.sum(centered**2))
    if denominator < 1e-12:
        return 0.0
    numerator = float(np.sum(centered[:-lag] * centered[lag:]))
    return numerator / denominator


def partial_autocorrelation(series, lag: int = 2) -> float:
    """Partial autocorrelation at ``lag`` via Durbin-Levinson recursion."""
    array = check_array(series, name="series", ndim=1, min_rows=3)
    lag = check_positive_int(lag, "lag")
    lag = min(lag, array.shape[0] - 2)
    rho = np.array([autocorrelation(array, k) for k in range(1, lag + 1)])
    phi = np.zeros((lag + 1, lag + 1))
    phi[1, 1] = rho[0]
    for k in range(2, lag + 1):
        numerator = rho[k - 1] - np.sum(phi[k - 1, 1:k] * rho[k - 2::-1][: k - 1])
        denominator = 1.0 - np.sum(phi[k - 1, 1:k] * rho[: k - 1])
        phi[k, k] = numerator / denominator if abs(denominator) > 1e-12 else 0.0
        for j in range(1, k):
            phi[k, j] = phi[k - 1, j] - phi[k, k] * phi[k - 1, k - j]
    return float(phi[lag, lag])


def crossing_points(series) -> int:
    """Number of times the series crosses its own mean."""
    array = check_array(series, name="series", ndim=1, min_rows=2)
    above = array > array.mean()
    return int(np.sum(above[1:] != above[:-1]))


def count_above_mean(series) -> int:
    """Number of points strictly above the series mean."""
    array = check_array(series, name="series", ndim=1, min_rows=1)
    return int(np.sum(array > array.mean()))


def longest_strike_above_mean(series) -> int:
    """Length of the longest consecutive run above the mean."""
    array = check_array(series, name="series", ndim=1, min_rows=1)
    above = array > array.mean()
    best = current = 0
    for flag in above:
        current = current + 1 if flag else 0
        best = max(best, current)
    return int(best)


def number_of_peaks(series, support: int = 1) -> int:
    """Number of local maxima with ``support`` smaller neighbours on each side."""
    array = check_array(series, name="series", ndim=1, min_rows=1)
    support = check_positive_int(support, "support")
    n = array.shape[0]
    count = 0
    for i in range(support, n - support):
        left = array[i - support: i]
        right = array[i + 1: i + 1 + support]
        if np.all(array[i] > left) and np.all(array[i] > right):
            count += 1
    return count


def binned_entropy(series, n_bins: int = 10) -> float:
    """Shannon entropy of the histogram of values (nats)."""
    array = check_array(series, name="series", ndim=1, min_rows=1)
    n_bins = check_positive_int(n_bins, "n_bins", minimum=2)
    counts, _ = np.histogram(array, bins=n_bins)
    probabilities = counts[counts > 0] / counts.sum()
    return float(-np.sum(probabilities * np.log(probabilities)))


def spectral_centroid(series) -> float:
    """Centre of mass of the power spectrum, normalised to [0, 1]."""
    array = znormalize(check_array(series, name="series", ndim=1, min_rows=4))
    spectrum = np.abs(np.fft.rfft(array)) ** 2
    spectrum = spectrum[1:]  # drop DC
    if spectrum.sum() < 1e-12:
        return 0.0
    frequencies = np.arange(1, spectrum.shape[0] + 1)
    centroid = float(np.sum(frequencies * spectrum) / spectrum.sum())
    return centroid / spectrum.shape[0]


def dominant_frequency(series) -> float:
    """Normalised position of the strongest non-DC spectral component."""
    array = znormalize(check_array(series, name="series", ndim=1, min_rows=4))
    spectrum = np.abs(np.fft.rfft(array)) ** 2
    if spectrum.shape[0] <= 1:
        return 0.0
    idx = int(np.argmax(spectrum[1:])) + 1
    return idx / spectrum.shape[0]


def _moving_average(array: np.ndarray, window: int) -> np.ndarray:
    window = max(2, min(window, array.shape[0]))
    kernel = np.ones(window) / window
    return np.convolve(array, kernel, mode="same")


def trend_strength(series) -> float:
    """Strength of trend: 1 - Var(detrended) / Var(series), clipped to [0, 1]."""
    array = check_array(series, name="series", ndim=1, min_rows=4)
    trend = _moving_average(array, max(array.shape[0] // 10, 3))
    detrended = array - trend
    var_series = float(np.var(array))
    if var_series < 1e-12:
        return 0.0
    return float(np.clip(1.0 - np.var(detrended) / var_series, 0.0, 1.0))


def seasonality_strength(series, period: int = 0) -> float:
    """Strength of seasonality via the max autocorrelation over candidate lags."""
    array = check_array(series, name="series", ndim=1, min_rows=8)
    n = array.shape[0]
    if period and period < n // 2:
        lags = [period]
    else:
        lags = list(range(2, max(3, n // 4)))
    values = [autocorrelation(array, lag) for lag in lags]
    return float(np.clip(max(values) if values else 0.0, 0.0, 1.0))


def mean_absolute_change(series) -> float:
    """Mean absolute first difference."""
    array = check_array(series, name="series", ndim=1, min_rows=2)
    return float(np.mean(np.abs(np.diff(array))))


def complexity_estimate(series) -> float:
    """CID complexity estimate: sqrt of the sum of squared first differences."""
    array = znormalize(check_array(series, name="series", ndim=1, min_rows=2))
    return float(np.sqrt(np.sum(np.diff(array) ** 2)))


#: Ordered names of the features produced by :func:`feature_vector`.
FEATURE_NAMES: List[str] = [
    "mean",
    "std",
    "skewness",
    "kurtosis",
    "min",
    "max",
    "median",
    "iqr",
    "acf_1",
    "acf_2",
    "acf_5",
    "pacf_2",
    "crossing_points",
    "count_above_mean",
    "longest_strike_above_mean",
    "n_peaks",
    "binned_entropy",
    "spectral_centroid",
    "dominant_frequency",
    "trend_strength",
    "seasonality_strength",
    "mean_abs_change",
    "complexity",
]


def _skewness(array: np.ndarray) -> float:
    std = float(array.std())
    if std < 1e-12:
        return 0.0
    return float(np.mean(((array - array.mean()) / std) ** 3))


def _kurtosis(array: np.ndarray) -> float:
    std = float(array.std())
    if std < 1e-12:
        return 0.0
    return float(np.mean(((array - array.mean()) / std) ** 4) - 3.0)


def feature_vector(series) -> Dict[str, float]:
    """Compute the full feature dictionary for one series."""
    array = check_array(series, name="series", ndim=1, min_rows=8)
    q75, q25 = np.percentile(array, [75, 25])
    values = {
        "mean": float(array.mean()),
        "std": float(array.std()),
        "skewness": _skewness(array),
        "kurtosis": _kurtosis(array),
        "min": float(array.min()),
        "max": float(array.max()),
        "median": float(np.median(array)),
        "iqr": float(q75 - q25),
        "acf_1": autocorrelation(array, 1),
        "acf_2": autocorrelation(array, 2),
        "acf_5": autocorrelation(array, min(5, array.shape[0] - 1)),
        "pacf_2": partial_autocorrelation(array, 2),
        "crossing_points": float(crossing_points(array)),
        "count_above_mean": float(count_above_mean(array)),
        "longest_strike_above_mean": float(longest_strike_above_mean(array)),
        "n_peaks": float(number_of_peaks(array, support=2)),
        "binned_entropy": binned_entropy(array),
        "spectral_centroid": spectral_centroid(array),
        "dominant_frequency": dominant_frequency(array),
        "trend_strength": trend_strength(array),
        "seasonality_strength": seasonality_strength(array),
        "mean_abs_change": mean_absolute_change(array),
        "complexity": complexity_estimate(array),
    }
    missing = set(FEATURE_NAMES) - set(values)
    if missing:
        raise ValidationError(f"feature_vector is missing features: {sorted(missing)}")
    return values


def extract_features(data, standardize: bool = True) -> np.ndarray:
    """Feature matrix (n_series, n_features) for a dataset of series.

    When ``standardize`` is true, columns are z-scored so no single feature
    dominates the Euclidean geometry of the downstream clustering.
    """
    array = check_array(data, name="data", ndim=2, min_rows=1)
    rows = [feature_vector(series) for series in array]
    matrix = np.array([[row[name] for name in FEATURE_NAMES] for row in rows])
    matrix = np.nan_to_num(matrix, nan=0.0, posinf=0.0, neginf=0.0)
    if standardize:
        means = matrix.mean(axis=0)
        stds = matrix.std(axis=0)
        stds = np.where(stds < 1e-12, 1.0, stds)
        matrix = (matrix - means) / stds
    return matrix
