"""The benchmark population: 14 baseline methods plus k-Graph wrappers.

The Graphint Benchmark frame compares k-Graph against 14 baselines covering
raw-based, feature-based, density-based, model-based and deep-learning
methods.  This package provides a uniform ``name -> method`` registry where
each method exposes ``fit_predict(dataset, n_clusters, random_state)`` on a
:class:`repro.utils.TimeSeriesDataset`.

The deep baselines (DAE, DTC, SOM-VAE) are NumPy re-implementations of the
same model families (auto-encoder latent space + clustering); see DESIGN.md
for the substitution rationale.
"""

from repro.baselines.neural import DenseAutoencoder
from repro.baselines.deep import DAEClustering, DTCClustering, SOMVAEClustering
from repro.baselines.estimator import BaselineEstimator, CentroidPredictionState
from repro.baselines.registry import (
    BaselineMethod,
    all_baseline_names,
    available_methods,
    get_method,
    run_method,
)

__all__ = [
    "BaselineEstimator",
    "BaselineMethod",
    "CentroidPredictionState",
    "DAEClustering",
    "DTCClustering",
    "DenseAutoencoder",
    "SOMVAEClustering",
    "all_baseline_names",
    "available_methods",
    "get_method",
    "run_method",
]
