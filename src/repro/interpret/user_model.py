"""Simulated quiz participant and method comparison (Scenario 1).

The simulated user mimics what a careful human does in the demo:

* With a **centroid** representation, they visually compare the query series
  to each centroid — modelled as the shape-based distance (shift-invariant,
  like a human ignoring horizontal offsets) between the z-normalised query
  and the centroid; the closest centroid wins.
* With a **graphoid** representation, they look for the cluster whose
  characteristic patterns appear in the query series — modelled as the best
  (smallest) sliding-window distance between each pattern and the series,
  weighted by the pattern's exclusivity score; the cluster whose patterns
  match best wins.

A ``perception_noise`` parameter adds Gaussian noise to the internal match
scores so the simulated user is imperfect, like a human.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.interpret.quiz import Quiz
from repro.interpret.representations import ClusterRepresentation
from repro.metrics.distances import sbd_distance
from repro.utils.normalization import znormalize
from repro.utils.validation import check_random_state
from repro.utils.windows import sliding_window_matrix


@dataclass
class SimulatedUser:
    """A participant who answers quizzes from cluster representations only.

    Parameters
    ----------
    perception_noise:
        Standard deviation of the noise added to internal match scores
        (0 = ideal participant).
    random_state:
        Seed for the perception noise.
    """

    perception_noise: float = 0.0
    random_state: object = None

    def __post_init__(self) -> None:
        if self.perception_noise < 0:
            raise ValidationError("perception_noise must be non-negative")
        self._rng = check_random_state(self.random_state)

    # ------------------------------------------------------------------ #
    def _centroid_affinity(self, series: np.ndarray, representation: ClusterRepresentation) -> float:
        """Higher = the series looks more like this centroid."""
        distance = sbd_distance(znormalize(series), representation.centroid)
        return -float(distance)

    @staticmethod
    def _series_node_profile(series: np.ndarray, node_patterns) -> np.ndarray:
        """Place ``series`` on the graph by nearest-pattern subsequence assignment.

        Returns the normalised node-visit distribution, the same representation
        the Graph frame highlights as the series' trajectory.
        """
        window = node_patterns[0].shape[0]
        normalized = znormalize(series)
        if window >= normalized.shape[0]:
            windows = znormalize(normalized).reshape(1, -1)[:, :window]
        else:
            windows = sliding_window_matrix(normalized, window)
            means = windows.mean(axis=1, keepdims=True)
            stds = windows.std(axis=1, keepdims=True)
            stds = np.where(stds < 1e-12, 1.0, stds)
            windows = (windows - means) / stds
        patterns = np.vstack(node_patterns)
        distances = (
            np.sum(windows**2, axis=1)[:, None]
            - 2.0 * windows @ patterns.T
            + np.sum(patterns**2, axis=1)[None, :]
        )
        assignments = np.argmin(distances, axis=1)
        profile = np.bincount(assignments, minlength=patterns.shape[0]).astype(float)
        total = profile.sum()
        return profile / total if total > 0 else profile

    def _graphoid_affinity(self, series: np.ndarray, representation: ClusterRepresentation) -> float:
        """Higher = the series lands on this cluster's region of the graph.

        When the representation carries the full graph information (node
        patterns + the cluster's visit profile), the participant places the
        series on the graph and compares visit distributions — mirroring the
        demo, where the user sees the series' trajectory highlighted on the
        graph.  Otherwise they fall back to matching the graphoid patterns
        against the series.
        """
        if representation.cluster_profile is not None and representation.graph_node_patterns:
            profile = self._series_node_profile(series, representation.graph_node_patterns)
            reference = representation.cluster_profile
            denom = float(np.linalg.norm(profile) * np.linalg.norm(reference))
            if denom < 1e-12:
                return -np.inf
            return float(profile @ reference / denom)
        if not representation.patterns:
            return -np.inf
        normalized = znormalize(series)
        total = 0.0
        weight_sum = 0.0
        for pattern, score in zip(representation.patterns, representation.pattern_scores):
            window = pattern.shape[0]
            if window >= normalized.shape[0]:
                distance = sbd_distance(normalized, znormalize(pattern))
            else:
                windows = sliding_window_matrix(normalized, window)
                # z-normalise windows so the comparison is shape-only.
                means = windows.mean(axis=1, keepdims=True)
                stds = windows.std(axis=1, keepdims=True)
                stds = np.where(stds < 1e-12, 1.0, stds)
                windows = (windows - means) / stds
                distances = np.linalg.norm(windows - pattern, axis=1) / np.sqrt(window)
                distance = float(distances.min())
            weight = max(float(score), 1e-6)
            total += weight * (-distance)
            weight_sum += weight
        return total / weight_sum

    def _affinity(self, series: np.ndarray, representation: ClusterRepresentation) -> float:
        if representation.kind == "centroid":
            value = self._centroid_affinity(series, representation)
        elif representation.kind == "graphoid":
            value = self._graphoid_affinity(series, representation)
        else:
            raise ValidationError(f"unknown representation kind {representation.kind!r}")
        if self.perception_noise > 0:
            value += float(self._rng.normal(0.0, self.perception_noise))
        return value

    def answer_quiz(self, quiz: Quiz) -> Quiz:
        """Answer every question of ``quiz`` in place and return it."""
        for question in quiz.questions:
            affinities = {
                cluster: self._affinity(question.series, representation)
                for cluster, representation in quiz.representations.items()
            }
            best = max(sorted(affinities), key=lambda c: affinities[c])
            quiz.answer(question.question_id, best)
        return quiz


def score_methods(
    quizzes: Dict[str, Quiz],
    *,
    n_users: int = 5,
    perception_noise: float = 0.05,
    random_state=None,
) -> Dict[str, float]:
    """Average simulated-user score per method (the Scenario-1 comparison).

    Each of the ``n_users`` simulated participants answers every quiz; the
    returned score per method is the mean fraction of correct answers.
    Answers recorded on the quiz objects afterwards are those of the last
    user.
    """
    if not quizzes:
        raise ValidationError("quizzes must not be empty")
    rng = check_random_state(random_state)
    scores: Dict[str, list] = {method: [] for method in quizzes}
    for _ in range(max(int(n_users), 1)):
        user = SimulatedUser(
            perception_noise=perception_noise,
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        for method, quiz in quizzes.items():
            user.answer_quiz(quiz)
            scores[method].append(quiz.score())
    return {method: float(np.mean(values)) for method, values in scores.items()}
