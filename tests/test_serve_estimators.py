"""Serving any registered estimator: manifest schema v3 + back-compat fixtures.

Covers the estimator-generic artifact format (a non-KGraph estimator
round-trips through ``save_model`` / ``load_model`` / the registry /
``POST /predict``) and proves backwards compatibility by loading the
*committed* schema v1/v2 artifacts under ``tests/fixtures/`` — real files
written by the earlier format, not same-process round-trips.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import BaselineConfig, default_registry
from repro.baselines.estimator import BaselineEstimator
from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.exceptions import ArtifactError, NotFittedError
from repro.serve import InferenceEngine, ModelRegistry, ServeApplication, load_model, save_model
from repro.serve.artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_SCHEMA_VERSION,
    read_manifest,
)

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def fitted_kmeans(small_dataset):
    spec = default_registry().get("kmeans")
    return spec.build(spec.make_config(n_clusters=3, random_state=0)).fit(
        small_dataset.data
    )


@pytest.fixture(scope="module")
def fresh_series():
    return make_cylinder_bell_funnel(
        n_series=8, length=64, noise=0.2, random_state=11
    ).data


class TestEstimatorArtifactRoundTrip:
    def test_manifest_records_estimator_config_and_version(
        self, fitted_kmeans, tmp_path
    ):
        path = save_model(fitted_kmeans, tmp_path / "km", dataset="cbf")
        manifest = read_manifest(path)
        assert manifest["format"] == ARTIFACT_FORMAT
        assert manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION == 3
        assert manifest["estimator"] == "kmeans"
        assert manifest["config_version"] == BaselineConfig.version
        assert BaselineConfig.from_dict(manifest["config"]) == fitted_kmeans.get_config()

    def test_predict_is_bit_identical_after_reload(
        self, fitted_kmeans, tmp_path, fresh_series
    ):
        path = save_model(fitted_kmeans, tmp_path / "km")
        loaded = load_model(path)
        assert isinstance(loaded, BaselineEstimator)
        assert loaded.get_config() == fitted_kmeans.get_config()
        assert np.array_equal(loaded.labels_, fitted_kmeans.labels_)
        assert np.array_equal(
            loaded.predict(fresh_series), fitted_kmeans.predict(fresh_series)
        )

    def test_unfitted_estimator_rejected(self, tmp_path):
        estimator = BaselineEstimator(BaselineConfig(method="kmeans"))
        with pytest.raises(NotFittedError):
            save_model(estimator, tmp_path / "m")

    def test_unsaveable_object_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot save"):
            save_model(object(), tmp_path / "m")

    def test_mismatched_estimator_name_rejected(self, fitted_kmeans, tmp_path):
        path = save_model(fitted_kmeans, tmp_path / "km")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["estimator"] = "gmm"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="gmm"):
            load_model(path)

    def test_registry_and_http_serve_a_baseline_model(
        self, fitted_kmeans, tmp_path, fresh_series
    ):
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish(fitted_kmeans, "cbf")
        assert record.estimator == "kmeans"
        application = ServeApplication(registry)
        try:
            status, _, body = application.handle_request(
                "POST",
                "/predict",
                json.dumps({"series": fresh_series.tolist()}).encode(),
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["predictions"] == [
                int(v) for v in fitted_kmeans.predict(fresh_series)
            ]
            status, _, body = application.handle_request("GET", "/models")
            assert status == 200
            rows = json.loads(body)["models"]
            assert [row["estimator"] for row in rows] == ["kmeans"]
        finally:
            application.close()

    def test_inference_engine_batches_match_offline_predict(
        self, fitted_kmeans, fresh_series
    ):
        with InferenceEngine(fitted_kmeans, max_batch_size=4) as engine:
            online = engine.predict_many(fresh_series, timeout=30.0)
        assert np.array_equal(online, fitted_kmeans.predict(fresh_series))


class TestCommittedFixturesStillLoad:
    """The committed v1/v2 artifacts are the backwards-compatibility proof."""

    @pytest.fixture(scope="class")
    def fixture_series(self):
        return make_cylinder_bell_funnel(
            n_series=5, length=32, noise=0.2, random_state=7
        ).data

    @pytest.mark.parametrize(
        ("directory", "schema_version"),
        [("artifact_v1", 1), ("artifact_v2", 2)],
    )
    def test_fixture_loads_and_predicts(self, directory, schema_version, fixture_series):
        path = FIXTURES / directory
        manifest = read_manifest(path)
        assert manifest["schema_version"] == schema_version
        assert manifest["format"] == "kgraph-model"  # legacy format name
        loaded = load_model(path)
        assert isinstance(loaded, KGraph)
        # The legacy flat params block round-trips through the version-1
        # config migration into the typed config.
        assert loaded.get_config().n_clusters == manifest["params"]["n_clusters"]
        predictions = loaded.predict(fixture_series)
        assert predictions.shape == (fixture_series.shape[0],)
        assert set(predictions.tolist()) <= set(loaded.labels_.tolist())

    def test_v1_fixture_has_no_pipeline_provenance(self):
        loaded = load_model(FIXTURES / "artifact_v1")
        assert loaded.pipeline_report_ is None
        assert "pipeline" not in read_manifest(FIXTURES / "artifact_v1")

    def test_fixtures_import_into_a_registry(self, tmp_path, fixture_series):
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.import_artifact(FIXTURES / "artifact_v2", dataset="cbf_tiny")
        assert record.estimator == "kgraph"
        fetched = registry.fetch("cbf_tiny", record.model_id)
        assert np.array_equal(
            fetched.predict(fixture_series),
            load_model(FIXTURES / "artifact_v2").predict(fixture_series),
        )
