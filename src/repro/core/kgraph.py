"""The :class:`KGraph` estimator — the full pipeline of Figure 1.

``KGraph.fit`` runs, in order:

1. **Graph Embedding** — one :class:`~repro.graph.structure.TimeSeriesGraph`
   per subsequence length in the length grid (M graphs).
2. **Graph Clustering** — per-graph node/edge feature matrices clustered with
   k-Means, giving M partitions L_ℓ.
3. **Consensus Clustering** — co-association matrix over the M partitions and
   spectral clustering on it, giving the final labels L.
4. **Interpretability Computation** — consistency W_c(ℓ) and interpretability
   factor W_e(ℓ) per length, selection of the optimal length ¯ℓ, and λ/γ
   graphoid extraction on the selected graph.

Every intermediate artifact is kept on the fitted estimator (and bundled in
:class:`KGraphResult`) because the Graphint frames visualise all of them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.config import KGraphConfig
from repro.core.consensus import consensus_clustering
from repro.core.graph_clustering import GraphPartition, cluster_graph
from repro.core.interpretability import (
    LengthScore,
    interpretability_scores,
    select_optimal_length,
)
from repro.exceptions import NotFittedError, ValidationError
from repro.graph.embedding import GraphEmbedding
from repro.graph.graphoid import (
    Graphoid,
    extract_gamma_graphoid,
    extract_lambda_graphoid,
    node_exclusivity,
    node_representativity,
)
from repro.graph.structure import TimeSeriesGraph
from repro.parallel import ExecutionBackend, RetryPolicy, backend_scope
from repro.utils.normalization import znormalize_dataset
from repro.utils.rng import spawn_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_probability,
    check_random_state,
    check_time_series_dataset,
)
from repro.utils.windows import length_grid, sliding_window_matrix


@dataclass
class KGraphResult:
    """Everything the Graphint frames need about one fitted k-Graph model.

    Attributes
    ----------
    labels:
        Final consensus labels L.
    graphs:
        Mapping length ℓ -> transition graph G_ℓ.
    partitions:
        Per-length partitions (labels L_ℓ plus the feature matrices).
    consensus_matrix:
        Co-association matrix M_C used by the consensus step.
    length_scores:
        ``W_c`` / ``W_e`` per length (Under-the-hood frame, panel 4.1).
    optimal_length:
        The selected length ¯ℓ.
    graphoids:
        Mapping cluster -> λ-Graphoid and γ-Graphoid on the selected graph.
    timings:
        Wall-clock seconds per timing section: the worker-side sections
        (``graph_embedding``, ``graph_clustering``, ...) plus — for
        pipeline-driven fits — one ``stage:<name>`` section per pipeline
        stage (see :meth:`stage_timings`).
    """

    labels: np.ndarray
    graphs: Dict[int, TimeSeriesGraph]
    partitions: List[GraphPartition]
    consensus_matrix: np.ndarray
    length_scores: List[LengthScore]
    optimal_length: int
    lambda_graphoids: Dict[int, Graphoid] = field(default_factory=dict)
    gamma_graphoids: Dict[int, Graphoid] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    #: Per-stage pickled payload bytes shipped to process backends during
    #: the fit (stage name -> bytes); empty for serial/thread fits and for
    #: models fitted by the reference monolith or loaded from artifacts.
    bytes_shipped: Dict[str, int] = field(default_factory=dict)

    @property
    def optimal_graph(self) -> TimeSeriesGraph:
        """The graph G_{¯ℓ} rendered by the Graph frame."""
        return self.graphs[self.optimal_length]

    @property
    def n_clusters(self) -> int:
        """Number of clusters in the final labels."""
        return int(np.unique(self.labels).size)

    def partition_for(self, length: int) -> GraphPartition:
        """The per-length partition L_ℓ."""
        for partition in self.partitions:
            if partition.length == length:
                return partition
        raise ValidationError(f"no partition for length {length}")

    def stage_timings(self) -> Dict[str, float]:
        """Per-pipeline-stage wall-clock seconds, in execution order.

        Extracted from the ``stage:<name>`` Stopwatch sections the pipeline
        records around each stage (including near-zero entries for stages
        replayed from a cache).  Empty for models fitted by the retained
        reference monolith or loaded from pre-pipeline artifacts.
        """
        prefix = "stage:"
        return {
            name[len(prefix):]: float(seconds)
            for name, seconds in self.timings.items()
            if name.startswith(prefix)
        }

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable run summary (Under-the-hood frame header)."""
        return {
            "n_series": int(self.labels.shape[0]),
            "n_clusters": self.n_clusters,
            "lengths": sorted(self.graphs),
            "optimal_length": self.optimal_length,
            "length_scores": [
                {
                    "length": score.length,
                    "consistency": score.consistency,
                    "interpretability": score.interpretability,
                    "combined": score.combined,
                }
                for score in self.length_scores
            ],
            "graph_sizes": {
                length: graph.summary() for length, graph in self.graphs.items()
            },
            "timings": dict(self.timings),
            "stage_timings": self.stage_timings(),
            "stage_bytes_shipped": {
                name: int(value) for name, value in self.bytes_shipped.items()
            },
        }


@dataclass(frozen=True)
class _LengthFitJob:
    """Picklable payload for one per-length embedding+clustering stage.

    The generator is pre-spawned by the parent (one child stream per length,
    see :func:`repro.utils.rng.spawn_rng`), so dispatching the job to a
    thread or another process consumes exactly the same random stream as the
    serial path — results are bit-identical across backends.
    """

    length: int
    array: np.ndarray
    stride: int
    n_sectors: int
    feature_mode: str
    n_clusters: int
    rng: np.random.Generator


@dataclass
class _LengthFit:
    """What one per-length stage sends back to the parent."""

    length: int
    graph: TimeSeriesGraph
    partition: GraphPartition
    timings: Dict[str, float]
    counts: Dict[str, int]


def _fit_one_length(job: _LengthFitJob) -> _LengthFit:
    """Pure per-length pipeline stage: graph embedding then graph clustering.

    Module-level (hence picklable) so a :class:`~repro.parallel.ProcessBackend`
    can run the M independent stages of Figure 1 concurrently.  Timings are
    collected on a worker-local stopwatch and merged by the parent.
    """
    watch = Stopwatch()
    with watch.section("graph_embedding"):
        embedding = GraphEmbedding(
            job.length,
            stride=job.stride,
            n_sectors=job.n_sectors,
            random_state=job.rng,
        )
        graph = embedding.fit(job.array)
    with watch.section("graph_clustering"):
        partition = cluster_graph(
            graph,
            job.n_clusters,
            feature_mode=job.feature_mode,
            random_state=job.rng,
        )
    return _LengthFit(
        length=job.length,
        graph=graph,
        partition=partition,
        timings=watch.totals(),
        counts=watch.counts(),
    )


@dataclass(frozen=True)
class PredictionState:
    """Everything ``predict`` needs, extracted from a fitted model once.

    The state is a plain bundle of NumPy arrays (hence picklable), so the
    serving layer can prepare it once per model and dispatch prediction
    micro-batches through any :class:`~repro.parallel.ExecutionBackend`
    without re-deriving patterns and centroids per request — that
    per-request preparation dominates the cost of a naive single-series
    ``predict`` call.

    Attributes
    ----------
    length:
        Selected subsequence length ¯ℓ of the graph predictions run on.
    stride:
        Subsequence extraction stride of the fitted model.
    patterns:
        (n_nodes, ¯ℓ) matrix of node patterns in node-sorted order.
    patterns_sq:
        Per-row squared norms of ``patterns`` (pre-computed once so the
        window-to-pattern distance evaluation never recomputes them).
    centroids:
        (n_clusters, n_nodes) mean training node-visit profile per cluster.
    centroids_sq:
        Per-row squared norms of ``centroids`` (pre-computed once for the
        profile-to-centroid assignment).
    clusters:
        Cluster identifiers aligned with the ``centroids`` rows.
    """

    length: int
    stride: int
    patterns: np.ndarray
    patterns_sq: np.ndarray
    centroids: np.ndarray
    centroids_sq: np.ndarray
    clusters: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Number of nodes of the selected graph."""
        return int(self.patterns.shape[0])

    def predict_batch(self, array: np.ndarray) -> np.ndarray:
        """Assign validated series to clusters (the ServableState contract).

        The method form of :func:`predict_with_state`, so the serving
        engine can dispatch *any* estimator's prepared state — k-Graph's
        graph-profile assignment here, a baseline's centroid assignment
        elsewhere — through one uniform call.
        """
        return predict_with_state(self, array)


#: Transient-memory budget for one block of the batched predict path.
_PREDICT_BLOCK_BYTES = 32 * 1024 * 1024


def _profiles_to_predictions(
    state: PredictionState, profiles: np.ndarray
) -> np.ndarray:
    """Map normalised node-visit profiles to cluster labels.

    Uses the pre-computed ``centroids_sq`` (hoisted on the state) in the
    expanded squared-distance form ``|p|^2 - 2 p.c + |c|^2``, shared by the
    batched and reference predict paths so their assignments can never
    drift.

    .. note::
       Pre-vectorization releases computed
       ``np.linalg.norm(centroids - profile)`` directly.  The expanded form
       is what makes the hoisted ``centroids_sq`` useful, but it rounds
       differently in the last ulps, so a profile sitting almost exactly
       between two centroids may resolve to the other — equally near —
       cluster than an older release chose.
    """
    distances = (
        np.sum(profiles**2, axis=1)[:, None]
        - 2.0 * profiles @ state.centroids.T
        + state.centroids_sq[None, :]
    )
    nearest = np.argmin(distances, axis=1)
    return state.clusters[nearest].astype(int)


def predict_with_state(state: PredictionState, array: np.ndarray) -> np.ndarray:
    """Assign already-validated series to clusters using a prepared state.

    Module-level (hence picklable) so serving micro-batches can be
    dispatched through process backends too.  The whole batch of
    equal-length series is processed as one windows matrix: a single
    sliding-window view, one z-normalisation, one GEMM against the node
    patterns and one segmented bincount produce every series' node-visit
    profile at once — the per-series maths is unchanged, so results are
    bit-identical to :func:`predict_with_state_reference` and a prediction
    never depends on which batch its series travelled in.
    """
    n_series = array.shape[0]
    if n_series == 0:
        return np.empty(0, dtype=int)
    # (n_series, n_windows, length) strided view -> stacked windows matrix.
    windows = np.lib.stride_tricks.sliding_window_view(array, state.length, axis=1)[
        :, :: state.stride, :
    ]
    n_windows = windows.shape[1]
    # Bounded row blocks: the stacked windows matrix of a whole dataset can
    # dwarf the input (every subsequence is materialised), so predict peaks
    # at ~2 x _PREDICT_BLOCK_BYTES of transient memory instead of
    # O(dataset windows).
    per_series = max(1, n_windows * state.length * 8)
    block_series = max(1, _PREDICT_BLOCK_BYTES // per_series)
    predictions = np.empty(n_series, dtype=int)
    for start in range(0, n_series, block_series):
        stop = min(n_series, start + block_series)
        stacked = np.ascontiguousarray(windows[start:stop]).reshape(-1, state.length)
        stacked = znormalize_dataset(stacked)
        distances = (
            np.sum(stacked**2, axis=1)[:, None]
            - 2.0 * stacked @ state.patterns.T
            + state.patterns_sq[None, :]
        )
        assignments = np.argmin(distances, axis=1)
        # Segmented bincount: offset each series' assignments into its own
        # block of node ids, count once, reshape into per-series profiles.
        series_of_window = np.repeat(np.arange(stop - start), n_windows)
        profiles = np.bincount(
            series_of_window * state.n_nodes + assignments,
            minlength=(stop - start) * state.n_nodes,
        ).astype(float)
        profiles = profiles.reshape(stop - start, state.n_nodes)
        totals = profiles.sum(axis=1, keepdims=True)
        profiles /= np.where(totals > 0, totals, 1.0)
        predictions[start:stop] = _profiles_to_predictions(state, profiles)
    return predictions


def predict_with_state_reference(
    state: PredictionState, array: np.ndarray
) -> np.ndarray:
    """Reference one-series-at-a-time prediction loop.

    Retained as the implementation :func:`predict_with_state` is
    benchmarked and equivalence-tested against (E13).
    """
    predictions = np.empty(array.shape[0], dtype=int)
    for index, series in enumerate(array):
        windows = sliding_window_matrix(series, state.length, state.stride)
        windows = znormalize_dataset(windows)
        distances = (
            np.sum(windows**2, axis=1)[:, None]
            - 2.0 * windows @ state.patterns.T
            + state.patterns_sq[None, :]
        )
        assignments = np.argmin(distances, axis=1)
        profile = np.bincount(assignments, minlength=state.n_nodes).astype(float)
        total = profile.sum()
        if total > 0:
            profile /= total
        predictions[index] = _profiles_to_predictions(
            state, profile[None, :]
        )[0]
    return predictions


@dataclass(frozen=True)
class _GraphoidJob:
    """Picklable payload for extracting one cluster's graphoids."""

    graph: TimeSeriesGraph
    labels: np.ndarray
    cluster: int
    lambda_threshold: float
    gamma_threshold: float


def _extract_cluster_graphoids(job: _GraphoidJob) -> Tuple[int, Graphoid, Graphoid]:
    """Extract the λ- and γ-graphoid of one cluster (deterministic)."""
    lam = extract_lambda_graphoid(
        job.graph, job.labels, job.cluster, job.lambda_threshold
    )
    gam = extract_gamma_graphoid(
        job.graph, job.labels, job.cluster, job.gamma_threshold
    )
    return job.cluster, lam, gam


#: Sentinel distinguishing "kwarg not passed" from any real value, so the
#: constructor shim can tell explicit overrides apart from defaults.
_UNSET = object()


class KGraph:
    """Graph-based interpretable time series clustering.

    The full parameterisation lives in a
    :class:`~repro.api.config.KGraphConfig` (``config=``); the individual
    keyword parameters below remain accepted and are folded into the
    config, so ``KGraph(**old_kwargs)`` keeps working.  Passing a kwarg
    that *conflicts* with an explicit ``config`` emits a
    ``DeprecationWarning`` (the kwarg wins — it is the more explicit
    request), nudging callers toward one source of parameter truth.

    Parameters
    ----------
    config:
        Optional :class:`~repro.api.config.KGraphConfig` carrying every
        algorithm parameter; validation happens at config construction.
    n_clusters:
        Number of clusters ``k``.
    n_lengths:
        Number of subsequence lengths M in the grid (ignored when ``lengths``
        is given explicitly).
    lengths:
        Optional explicit list of subsequence lengths.
    stride:
        Subsequence extraction stride (1 = every subsequence).
    n_sectors:
        Angular sectors of the radial-scan node extraction.
    feature_mode:
        ``"both"`` (node + edge features, the paper's design), ``"nodes"`` or
        ``"edges"`` — exposed for the ablation study.
    lambda_threshold, gamma_threshold:
        Default λ / γ used for the graphoids attached to the result (the Graph
        frame lets the user change them interactively afterwards).
    random_state:
        Seed or generator controlling every stochastic sub-step.
    backend, n_jobs:
        Execution backend for the embarrassingly parallel pipeline stages
        (per-length embedding+clustering, length scoring, graphoid
        extraction).  Defaults to serial execution; ``n_jobs=4`` selects a
        4-worker thread pool, ``backend="process"`` a process pool.  Results
        are bit-identical across backends for a fixed ``random_state`` —
        see :mod:`repro.parallel`.
    stage_backends:
        Optional per-stage backend overrides, mapping a pipeline stage name
        (``embed``, ``graph_cluster``, ``consensus``, ``length_selection``,
        ``interpretability``) to a backend name or
        :class:`~repro.parallel.ExecutionBackend` instance — e.g.
        ``{"embed": "shared"}`` runs only the per-length embedding fan-out
        on the zero-copy shared-memory process pool.  Stages without an
        override use ``backend``.
    stage_cache:
        Optional stage checkpoint store: a
        :class:`~repro.pipeline.StageCache` instance (share one across fits
        to reuse upstream stages over a parameter grid) or a directory path
        (selects a :class:`~repro.pipeline.DiskStageCache` for
        cross-session resume).  With a cache, a re-fit with one changed
        parameter replays every stage whose content-addressed key is
        unchanged and re-executes only the affected stages — results are
        identical either way.  ``fit`` records what happened on
        ``pipeline_report_``.
    fuse_stages:
        Fused dispatch of the embed→graph_cluster stage pair: ``None``
        (default) fuses automatically when both stages run on one shared
        process backend, ``True`` forces fusing, ``False`` disables it.
        A runtime-only knob like ``backend`` — it never changes results or
        cache keys, only how many process round-trips the fit costs.
    retry:
        Optional :class:`~repro.parallel.RetryPolicy` applied to every
        stage fan-out (bounded retries, per-attempt timeouts, fan-out
        deadline).  Runtime-only: jobs carry their own seeds, so retrying
        one never changes results.
    fallback:
        Optional degradation chain — one backend spec or a sequence (e.g.
        ``("process", "thread")``): when the primary backend's worker-pool
        rebuild budget is exhausted, the fit demotes to the next backend
        with a structured warning and bit-identical results (see
        :class:`~repro.parallel.FallbackBackend`).

    Examples
    --------
    >>> from repro.datasets import generate_dataset
    >>> from repro.core import KGraph
    >>> dataset = generate_dataset("cylinder_bell_funnel", random_state=0)
    >>> model = KGraph(n_clusters=3, n_lengths=3, random_state=0)
    >>> labels = model.fit_predict(dataset.data)
    >>> labels.shape == (dataset.n_series,)
    True
    """

    def __init__(
        self,
        n_clusters: int = _UNSET,
        *,
        config: Optional[KGraphConfig] = None,
        n_lengths: int = _UNSET,
        lengths: Optional[Sequence[int]] = _UNSET,
        stride: int = _UNSET,
        n_sectors: int = _UNSET,
        feature_mode: str = _UNSET,
        lambda_threshold: float = _UNSET,
        gamma_threshold: float = _UNSET,
        random_state=_UNSET,
        backend: Union[None, str, ExecutionBackend] = None,
        n_jobs: Optional[int] = None,
        stage_backends: Optional[Dict[str, Union[str, ExecutionBackend]]] = None,
        stage_cache=None,
        fuse_stages: Optional[bool] = None,
        retry: Optional[RetryPolicy] = None,
        fallback: Union[None, str, ExecutionBackend, Sequence] = None,
    ) -> None:
        overrides = {
            name: value
            for name, value in (
                ("n_clusters", n_clusters),
                ("n_lengths", n_lengths),
                ("lengths", lengths),
                ("stride", stride),
                ("n_sectors", n_sectors),
                ("feature_mode", feature_mode),
                ("lambda_threshold", lambda_threshold),
                ("gamma_threshold", gamma_threshold),
                ("random_state", random_state),
            )
            if value is not _UNSET
        }
        # A live Generator cannot live in a (serialisable) config; it stays
        # on the instance and the config records no seed — the same nulling
        # rule model artifacts have always applied.
        self._runtime_random_state: Optional[np.random.Generator] = None
        if isinstance(overrides.get("random_state"), np.random.Generator):
            self._runtime_random_state = overrides["random_state"]
            overrides["random_state"] = None
        if config is None:
            self.config = KGraphConfig(**overrides)
        else:
            if not isinstance(config, KGraphConfig):
                raise ValidationError(
                    f"config must be a KGraphConfig, got {type(config).__name__}"
                )
            candidate = config.replace(**overrides) if overrides else config
            conflicts = sorted(
                name
                for name in overrides
                if getattr(candidate, name) != getattr(config, name)
            )
            if conflicts:
                warnings.warn(
                    f"KGraph received both config= and conflicting keyword(s) "
                    f"{conflicts}; the keywords win, but overriding an explicit "
                    "config this way is deprecated — build the config you mean "
                    "with config.replace(...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            self.config = candidate
        self.backend = backend
        self.n_jobs = n_jobs
        if stage_backends is not None and not isinstance(stage_backends, dict):
            raise ValidationError(
                "stage_backends must be a dict mapping stage names to backends, "
                f"got {type(stage_backends).__name__}"
            )
        self.stage_backends = stage_backends
        self.stage_cache = stage_cache
        if fuse_stages is not None and not isinstance(fuse_stages, bool):
            raise ValidationError(
                f"fuse_stages must be None, True or False, got {fuse_stages!r}"
            )
        self.fuse_stages = fuse_stages
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ValidationError(
                f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
            )
        self.retry = retry
        self.fallback = fallback

        self.result_: Optional[KGraphResult] = None
        self.labels_: Optional[np.ndarray] = None
        #: Per-stage ledger of the last pipeline-driven fit (cache keys,
        #: cached-vs-executed flags, wall-clock seconds); ``None`` before
        #: fitting, after :meth:`fit_reference`, and on loaded artifacts.
        self.pipeline_report_ = None

    # ------------------------------------------------------------------ #
    # config-backed parameter views (the config is the source of truth)
    # ------------------------------------------------------------------ #
    @property
    def n_clusters(self) -> int:
        """Number of clusters ``k`` (from the config)."""
        return self.config.n_clusters

    @property
    def n_lengths(self) -> int:
        """Size of the automatic length grid (from the config)."""
        return self.config.n_lengths

    @property
    def lengths(self) -> Optional[Tuple[int, ...]]:
        """Explicit subsequence lengths, or ``None`` (from the config)."""
        return self.config.lengths

    @property
    def stride(self) -> int:
        """Subsequence extraction stride (from the config)."""
        return self.config.stride

    @property
    def n_sectors(self) -> int:
        """Radial-scan sector count (from the config)."""
        return self.config.n_sectors

    @property
    def feature_mode(self) -> str:
        """Graph feature mode (from the config)."""
        return self.config.feature_mode

    @property
    def lambda_threshold(self) -> float:
        """Default λ-graphoid threshold (from the config)."""
        return self.config.lambda_threshold

    @property
    def gamma_threshold(self) -> float:
        """Default γ-graphoid threshold (from the config)."""
        return self.config.gamma_threshold

    @property
    def random_state(self):
        """The seed in effect: a runtime Generator if one was passed, else
        the config's integer seed (or ``None``)."""
        if self._runtime_random_state is not None:
            return self._runtime_random_state
        return self.config.random_state

    # ------------------------------------------------------------------ #
    # Estimator protocol: config round-trip
    # ------------------------------------------------------------------ #
    def get_config(self) -> KGraphConfig:
        """The typed config carrying this estimator's full parameterisation."""
        return self.config

    @classmethod
    def from_config(
        cls,
        config: KGraphConfig,
        *,
        backend: Union[None, str, ExecutionBackend] = None,
        n_jobs: Optional[int] = None,
        stage_backends: Optional[Dict[str, Union[str, ExecutionBackend]]] = None,
        stage_cache=None,
        fuse_stages: Optional[bool] = None,
        retry: Optional[RetryPolicy] = None,
        fallback: Union[None, str, ExecutionBackend, Sequence] = None,
    ) -> "KGraph":
        """Build an estimator from its config plus runtime-only knobs.

        ``from_config(est.get_config())`` refits bit-identically to ``est``
        under the same seed: the config carries every result-affecting
        parameter, and the runtime knobs (backend, jobs, caches, fusing,
        retry policy, fallback chain) never change results.
        """
        return cls(
            config=config,
            backend=backend,
            n_jobs=n_jobs,
            stage_backends=stage_backends,
            stage_cache=stage_cache,
            fuse_stages=fuse_stages,
            retry=retry,
            fallback=fallback,
        )

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable description of the fitted estimator.

        The fitted-result summary of :meth:`KGraphResult.summary` plus the
        estimator identity and config — the uniform shape every registered
        estimator returns.
        """
        self._check_fitted()
        return {
            "estimator": "kgraph",
            "config": self.config.to_dict(),
            **self.result_.summary(),
        }

    # ------------------------------------------------------------------ #
    def _resolve_lengths(self, series_length: int) -> List[int]:
        if self.lengths is not None:
            resolved = sorted({int(v) for v in self.lengths if 2 <= v < series_length})
            if not resolved:
                raise ValidationError(
                    "none of the requested subsequence lengths is valid for series of "
                    f"length {series_length}"
                )
            return resolved
        return length_grid(series_length, self.n_lengths)

    def validate_fit_input(self, data) -> np.ndarray:
        """Validate training ``data`` and return it as a 2-D array.

        The shared dataset checks give ``fit`` the same actionable failure
        modes :meth:`validate_predict_input` gives ``predict``: ragged
        inputs name the differing series lengths, NaN/infinite values are
        located (series and position), and datasets with fewer series than
        clusters or too-short series state the requirement in the message —
        instead of letting the failure surface deep in the windowing code.
        """
        return check_time_series_dataset(
            data, name="training data", min_series=self.n_clusters
        )

    def fit(
        self,
        data,
        *,
        backend: Union[None, str, ExecutionBackend] = None,
        n_jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        fallback: Union[None, str, ExecutionBackend, Sequence] = None,
    ) -> "KGraph":
        """Run the full k-Graph pipeline on ``data`` (n_series x length).

        The fit is driven by the five-stage pipeline of
        :mod:`repro.pipeline.kgraph_stages` (embed -> graph_cluster ->
        consensus -> length_selection -> interpretability): results are
        bit-identical to the retained :meth:`fit_reference` monolith, but
        each stage is individually timeable, checkpointable
        (``stage_cache=``) and dispatchable on its own backend
        (``stage_backends=``).  The per-stage ledger of what ran versus
        what was replayed lands on :attr:`pipeline_report_`.

        The keyword-only arguments override the estimator's runtime knobs
        for this fit only (``None`` falls back to the instance values) —
        all runtime-only, never result-affecting: ``backend``/``n_jobs``
        select execution, ``retry`` applies a
        :class:`~repro.parallel.RetryPolicy` to every stage fan-out, and
        ``fallback`` names the degradation chain (see
        :func:`repro.parallel.resolve_backend`).
        """
        array = self.validate_fit_input(data)
        rng = check_random_state(self.random_state)
        # Imported lazily: the concrete stages import the sibling core
        # modules, so a module-level import here would be circular.
        from repro.pipeline import resolve_stage_cache, stage_backend_scope

        cache = resolve_stage_cache(self.stage_cache)
        backend = backend if backend is not None else self.backend
        n_jobs = n_jobs if n_jobs is not None else self.n_jobs
        retry = retry if retry is not None else self.retry
        fallback = fallback if fallback is not None else self.fallback
        # Pooled workers of a backend we create here are released when the
        # fit ends; a caller-supplied backend instance stays open.
        with backend_scope(
            backend, n_jobs, retry=retry, fallback=fallback
        ) as resolved:
            with stage_backend_scope(self.stage_backends, n_jobs) as per_stage:
                return self._fit_via_pipeline(
                    array, rng, resolved, per_stage, cache, retry=retry
                )

    def _fit_via_pipeline(
        self,
        array: np.ndarray,
        rng: np.random.Generator,
        backend: ExecutionBackend,
        stage_backends: Dict[str, ExecutionBackend],
        cache,
        retry: Optional[RetryPolicy] = None,
    ) -> "KGraph":
        from repro.pipeline import (
            KGRAPH_STAGE_NAMES,
            PipelineContext,
            build_kgraph_pipeline,
        )

        unknown = sorted(set(stage_backends) - set(KGRAPH_STAGE_NAMES))
        if unknown:
            raise ValidationError(
                f"unknown stage names in stage_backends: {unknown}; "
                f"the k-Graph stages are {list(KGRAPH_STAGE_NAMES)}"
            )
        lengths = self._resolve_lengths(array.shape[1])
        # Pre-spawn one child stream per length (plus one for the consensus
        # step), exactly as the reference monolith does, so the stages stay
        # deterministic no matter which backend runs them or which
        # checkpoints are replayed.
        child_rngs = spawn_rng(rng, len(lengths) + 1)
        consensus_rng, per_length_rngs = child_rngs[0], child_rngs[1:]

        pipeline = build_kgraph_pipeline()
        ctx = PipelineContext(
            # The stages' flat config view is derived from the typed config,
            # so the cache-key inputs and the estimator's parameters share
            # one source of truth.
            config=self.config.stage_config(),
            values={
                "array": array,
                "lengths": lengths,
                "per_length_rngs": list(per_length_rngs),
                "consensus_rng": consensus_rng,
            },
            backend=backend,
            stage_backends=stage_backends,
            retry=retry,
        )
        report = pipeline.run(
            ctx,
            cache=cache,
            config_hash=self.config.config_hash(),
            fuse=self.fuse_stages,
        )

        self.result_ = KGraphResult(
            labels=ctx.values["labels"],
            graphs=ctx.values["graphs"],
            partitions=ctx.values["partitions"],
            consensus_matrix=ctx.values["consensus_matrix"],
            length_scores=ctx.values["length_scores"],
            optimal_length=ctx.values["optimal_length"],
            lambda_graphoids=ctx.values["lambda_graphoids"],
            gamma_graphoids=ctx.values["gamma_graphoids"],
            timings=ctx.watch.totals(),
            bytes_shipped=dict(ctx.bytes_shipped),
        )
        self.labels_ = self.result_.labels
        self.pipeline_report_ = report
        return self

    def fit_reference(self, data) -> "KGraph":
        """Run the retained pre-pipeline monolith (the seed fit path).

        Kept as the implementation the stage pipeline is equivalence-tested
        against — the same idiom as the vectorized kernels' ``*_reference``
        twins.  Labels, consensus matrix, graphs, partitions, scores and
        graphoids are bit-identical to :meth:`fit` for a fixed
        ``random_state``; only the timing sections differ (no ``stage:*``
        entries) and :attr:`pipeline_report_` stays ``None``.
        """
        array = self.validate_fit_input(data)
        rng = check_random_state(self.random_state)
        with backend_scope(self.backend, self.n_jobs) as backend:
            return self._fit_reference(array, rng, backend)

    def _fit_reference(
        self, array: np.ndarray, rng: np.random.Generator, backend: ExecutionBackend
    ) -> "KGraph":
        watch = Stopwatch()

        lengths = self._resolve_lengths(array.shape[1])
        # Pre-spawn one child stream per length (plus one for the consensus
        # step) so the per-length stages stay deterministic no matter which
        # backend runs them, or in which order they complete.
        child_rngs = spawn_rng(rng, len(lengths) + 1)
        consensus_rng, per_length_rngs = child_rngs[0], child_rngs[1:]

        jobs = [
            _LengthFitJob(
                length=length,
                array=array,
                stride=self.stride,
                n_sectors=self.n_sectors,
                feature_mode=self.feature_mode,
                n_clusters=self.n_clusters,
                rng=length_rng,
            )
            for length, length_rng in zip(lengths, per_length_rngs)
        ]
        graphs: Dict[int, TimeSeriesGraph] = {}
        partitions: List[GraphPartition] = []
        for outcome in backend.map_jobs(_fit_one_length, jobs):
            fitted: _LengthFit = outcome.unwrap()
            graphs[fitted.length] = fitted.graph
            partitions.append(fitted.partition)
            watch.merge(fitted.timings, fitted.counts)

        with watch.section("consensus_clustering"):
            labels, consensus = consensus_clustering(
                [partition.labels for partition in partitions],
                self.n_clusters,
                random_state=consensus_rng,
            )

        with watch.section("interpretability"):
            scores = interpretability_scores(graphs, partitions, labels, backend=backend)
            optimal_length = select_optimal_length(scores)
            optimal_graph = graphs[optimal_length]
            clusters = [int(cluster) for cluster in np.unique(labels)]
            graphoid_jobs = [
                _GraphoidJob(
                    graph=optimal_graph,
                    labels=labels,
                    cluster=cluster,
                    lambda_threshold=self.lambda_threshold,
                    gamma_threshold=self.gamma_threshold,
                )
                for cluster in clusters
            ]
            lambda_graphoids: Dict[int, Graphoid] = {}
            gamma_graphoids: Dict[int, Graphoid] = {}
            for outcome in backend.map_jobs(_extract_cluster_graphoids, graphoid_jobs):
                cluster, lam, gam = outcome.unwrap()
                lambda_graphoids[cluster] = lam
                gamma_graphoids[cluster] = gam

        self.result_ = KGraphResult(
            labels=labels,
            graphs=graphs,
            partitions=partitions,
            consensus_matrix=consensus,
            length_scores=scores,
            optimal_length=optimal_length,
            lambda_graphoids=lambda_graphoids,
            gamma_graphoids=gamma_graphoids,
            timings=watch.totals(),
        )
        self.labels_ = labels
        self.pipeline_report_ = None
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Fit the pipeline and return the final labels."""
        return self.fit(data).labels_

    def prediction_state(self) -> PredictionState:
        """Extract the prepared :class:`PredictionState` of the fitted model.

        ``predict`` derives this on every call; long-lived servers (see
        :mod:`repro.serve`) extract it once per model and reuse it across
        requests, which amortises the pattern/centroid preparation that
        otherwise dominates single-series prediction latency.
        """
        self._check_fitted()
        graph = self.result_.optimal_graph
        labels = self.result_.labels
        nodes = graph.nodes()
        patterns = np.vstack([
            # Node patterns are stored as mean z-normalised subsequences.
            graph.node_pattern(node) for node in nodes
        ])
        training_profiles = graph.node_feature_matrix(normalize=True)
        clusters = np.unique(labels)
        centroids = np.vstack([
            training_profiles[labels == cluster].mean(axis=0) for cluster in clusters
        ])
        return PredictionState(
            length=graph.length,
            stride=self.stride,
            patterns=patterns,
            patterns_sq=np.sum(patterns**2, axis=1),
            centroids=centroids,
            centroids_sq=np.sum(centroids**2, axis=1),
            clusters=clusters,
        )

    def validate_predict_input(self, data) -> np.ndarray:
        """Validate ``data`` for ``predict`` and return it as a 2-D array.

        Raises a :class:`~repro.exceptions.ValidationError` with an
        actionable message for every malformed input (wrong dimensionality,
        non-numeric values, NaNs, series too short for the selected
        subsequence length) instead of letting the failure surface deep in
        the windowing code.
        """
        self._check_fitted()
        array = check_time_series_dataset(data, name="predict input", min_series=1)
        length = self.result_.optimal_graph.length
        if array.shape[1] <= length:
            raise ValidationError(
                f"predict input series have length {array.shape[1]} but the fitted "
                f"model selected subsequence length {length}; series must be "
                f"longer than {length} to contain at least one strict subsequence "
                f"(pass series with length >= {length + 1})"
            )
        return array

    def predict(self, data) -> np.ndarray:
        """Assign new series to the fitted clusters (out-of-sample).

        Each new series is placed on the selected graph G_{¯ℓ} by assigning its
        z-normalised subsequences to the nearest node pattern, producing the
        same normalised node-visit profile the graph-clustering step uses for
        the training series.  The series is then assigned to the cluster whose
        average training profile is closest (Euclidean).

        This mirrors how the Graph frame overlays a new series' trajectory on
        the displayed graph, and gives k-Graph a standard estimator-style
        ``predict`` without refitting.
        """
        array = self.validate_predict_input(data)
        return predict_with_state(self.prediction_state(), array)

    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if self.result_ is None:
            raise NotFittedError(
                "this KGraph instance is not fitted yet; call fit(data) first, "
                "or load a previously fitted model with repro.serve.load_model()"
            )

    @property
    def optimal_length_(self) -> int:
        """Selected subsequence length ¯ℓ."""
        self._check_fitted()
        return self.result_.optimal_length

    @property
    def optimal_graph_(self) -> TimeSeriesGraph:
        """Graph associated with the selected length."""
        self._check_fitted()
        return self.result_.optimal_graph

    @property
    def consensus_matrix_(self) -> np.ndarray:
        """Co-association matrix M_C."""
        self._check_fitted()
        return self.result_.consensus_matrix

    @property
    def length_scores_(self) -> List[LengthScore]:
        """W_c / W_e scores per candidate length."""
        self._check_fitted()
        return self.result_.length_scores

    def graphoids(self, kind: str = "gamma") -> Dict[int, Graphoid]:
        """Graphoids of the fitted clustering (``kind`` is 'lambda' or 'gamma')."""
        self._check_fitted()
        if kind == "lambda":
            return dict(self.result_.lambda_graphoids)
        if kind == "gamma":
            return dict(self.result_.gamma_graphoids)
        raise ValidationError(f"kind must be 'lambda' or 'gamma', got {kind!r}")

    def recompute_graphoids(
        self, lambda_threshold: float, gamma_threshold: float
    ) -> Dict[str, Dict[int, Graphoid]]:
        """Re-extract graphoids at new thresholds without refitting.

        This is what the Graph frame's advanced-settings sliders call when the
        analyst moves λ or γ.
        """
        self._check_fitted()
        lambda_threshold = check_probability(lambda_threshold, "lambda_threshold")
        gamma_threshold = check_probability(gamma_threshold, "gamma_threshold")
        graph = self.result_.optimal_graph
        labels = self.result_.labels
        clusters = np.unique(labels)
        return {
            "lambda": {
                int(c): extract_lambda_graphoid(graph, labels, int(c), lambda_threshold)
                for c in clusters
            },
            "gamma": {
                int(c): extract_gamma_graphoid(graph, labels, int(c), gamma_threshold)
                for c in clusters
            },
        }

    def node_statistics(self) -> Dict[int, Dict[str, Dict[int, float]]]:
        """Per-node representativity and exclusivity on the optimal graph.

        Returns a mapping ``node -> {"representativity": {cluster: value},
        "exclusivity": {cluster: value}}`` — the histogram the Graph frame
        shows when the analyst selects a node.
        """
        self._check_fitted()
        graph = self.result_.optimal_graph
        labels = self.result_.labels
        representativity = node_representativity(graph, labels)
        exclusivity = node_exclusivity(graph, labels)
        statistics: Dict[int, Dict[str, Dict[int, float]]] = {}
        for node in graph.nodes():
            statistics[node] = {
                "representativity": {
                    int(cluster): representativity[cluster][node] for cluster in representativity
                },
                "exclusivity": {
                    int(cluster): exclusivity[cluster][node] for cluster in exclusivity
                },
            }
        return statistics


# Registered so distributed workers can run per-length fits by name (see
# repro.distributed.registry).
from repro.distributed.registry import register_worker_function  # noqa: E402

register_worker_function(_fit_one_length)
