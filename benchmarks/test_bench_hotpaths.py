"""E13 — Hot-path vectorization: vectorized vs retained reference implementations.

PR 3 replaced every per-subsequence / per-pair Python loop on the k-Graph
hot paths with vectorized NumPy: bulk graph construction
(``TimeSeriesGraph.add_visits`` / ``add_transitions`` fed by
``GraphEmbedding``), an anti-diagonal banded DTW, blockwise/batched
``pairwise_distances``, ``np.argpartition``-based ``knn_affinity``, a
one-hot-GEMM consensus matrix and a whole-batch ``predict_with_state``.
Each vectorized path retains its original implementation as a
``*_reference`` twin; this experiment

* times each (reference, vectorized) pair on the benchmark config,
* asserts the outputs are **bit-identical** (``np.array_equal`` / payload
  equality, never approx),
* asserts the acceptance floors — >= 5x on embedding graph construction
  and >= 10x on DTW / pairwise distances,
* records the pickled bytes per job with and without the zero-copy
  shared-memory dataset plan of :class:`repro.parallel.SharedMemoryBackend`,

PR 6 added the dispatch-cost entries: ``fused_fit_dispatch`` times a
two-stage pipeline whose stages declare :attr:`Stage.fusable_with`
unfused vs fused on one warm :class:`~repro.parallel.ProcessBackend`
(fusing eliminates the coordinator->worker re-ship of the intermediate
plus one dispatch round trip), and ``shared_result_pairwise`` times the
backend-routed ``pairwise_distances`` strip fan-out on a plain pickling
pool — where the dataset rides inside every strip job — against
:class:`~repro.parallel.SharedMemoryBackend`, which ships it once
through a shared segment and returns the strips through worker-published
result segments.  Both are transfer-bound by construction, so their
speedups hold even on single-core runners where compute cannot
parallelize.

and persists everything to ``benchmarks/results/hotpaths.json``.  That file
is the committed baseline the CI perf-smoke job compares fresh runs
against (see ``benchmarks/compare_hotpaths.py``): speedups are
machine-normalized (reference and vectorized run on the same box), so the
comparison is robust across runner generations.
"""

from __future__ import annotations

import json
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np
import pytest

from bench_utils import RESULTS_DIR, format_table, full_mode, report
from repro.core.consensus import (
    build_consensus_matrix,
    build_consensus_matrix_reference,
)
from repro.core.kgraph import (
    KGraph,
    _LengthFitJob,
    predict_with_state,
    predict_with_state_reference,
)
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.graph.embedding import GraphEmbedding
from repro.graph.structure import TimeSeriesGraph
from repro.linalg.kernels import knn_affinity, knn_affinity_reference
from repro.metrics.distances import (
    dtw_distance,
    dtw_distance_reference,
    pairwise_distances,
    pairwise_distances_reference,
)
from repro.parallel import (
    ProcessBackend,
    SerialBackend,
    SharedArrayPlan,
    SharedMemoryBackend,
    substitute_shared_arrays,
)
from repro.pipeline import MemoryStageCache, Pipeline, PipelineContext, Stage
from repro.utils.normalization import znormalize_dataset
from repro.utils.windows import subsequences_of_dataset

SCHEMA_VERSION = 1

if full_mode():
    EMBED_N_SERIES, EMBED_SERIES_LENGTH, EMBED_LENGTH = 64, 256, 32
    DTW_SINGLE_LENGTH = 512
    DTW_PAIRWISE_SHAPE = (24, 128)
    PAIRWISE_SHAPE = (160, 192)
    KNN_SHAPE, KNN_NEIGHBORS = (400, 16), 10
    CONSENSUS_PARTITIONS, CONSENSUS_SAMPLES = 16, 800
    PREDICT_BATCH = 128
    PIPELINE_N_SERIES, PIPELINE_SERIES_LENGTH, PIPELINE_N_LENGTHS = 48, 160, 4
    SHARED_PAIRWISE_SHAPE = (64, 16384)
else:
    EMBED_N_SERIES, EMBED_SERIES_LENGTH, EMBED_LENGTH = 32, 160, 24
    DTW_SINGLE_LENGTH = 192
    DTW_PAIRWISE_SHAPE = (16, 96)
    PAIRWISE_SHAPE = (96, 160)
    KNN_SHAPE, KNN_NEIGHBORS = (200, 16), 10
    CONSENSUS_PARTITIONS, CONSENSUS_SAMPLES = 12, 500
    PREDICT_BATCH = 64
    PIPELINE_N_SERIES, PIPELINE_SERIES_LENGTH, PIPELINE_N_LENGTHS = 24, 96, 3
    SHARED_PAIRWISE_SHAPE = (64, 8192)

# The fused-dispatch workload is transfer-bound at this shape in both
# modes — the intermediate window tensors total ~17 MB — and the fused
# speedup is a ratio of transfer volumes, not of compute, so the same
# shape serves quick and full runs.
FUSED_N_SERIES, FUSED_SERIES_LENGTH = 32, 512
FUSED_LENGTHS = (32, 48, 64)
#: Worker count for the dispatch-cost entries: both sides of each A/B use
#: the same pool size, so the comparison is fair on any core count.
FANOUT_WORKERS = 4

# Acceptance floors (ISSUE 3): >= 5x on embedding graph construction and
# >= 10x on DTW/pairwise; (ISSUE 4) >= 5x for a fully checkpoint-replayed
# pipeline re-fit over a cold fit; (ISSUE 6) >= 1.5x for fused stage
# dispatch over unfused and for the zero-copy pairwise fan-out over plain
# per-job pickling.  The remaining hot paths are guarded by the looser
# committed-baseline comparison of the CI perf-smoke job (their
# vectorized sides finish in single-digit milliseconds, where timing jitter
# on shared runners makes a hard double-digit floor flaky).
SPEEDUP_FLOORS = {
    "embedding_build": 5.0,
    "dtw_single": 10.0,
    "dtw_pairwise": 10.0,
    "pipeline_cached_refit": 5.0,
    "fused_fit_dispatch": 1.5,
    "shared_result_pairwise": 1.5,
}


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(
    hot_path: str,
    reference: Callable[[], object],
    vectorized: Callable[[], object],
    equal: Callable[[object, object], bool],
    *,
    ref_repeats: int = 2,
    vec_repeats: int = 5,
) -> Dict[str, object]:
    assert equal(reference(), vectorized()), f"{hot_path}: outputs differ"
    reference_seconds = _best_seconds(reference, ref_repeats)
    vectorized_seconds = _best_seconds(vectorized, vec_repeats)
    return {
        "hot_path": hot_path,
        "reference_seconds": reference_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": reference_seconds / max(vectorized_seconds, 1e-12),
    }


# --------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------- #
def _embedding_entry() -> Dict[str, object]:
    """Time graph construction (assembly) on precomputed assignments.

    The PCA projection and radial scan are identical in both paths; the
    construction stage — pattern means, visit and transition recording —
    is what the vectorization targets, so it is what gets timed.
    """
    dataset = make_cylinder_bell_funnel(
        n_series=EMBED_N_SERIES, length=EMBED_SERIES_LENGTH, noise=0.2, random_state=0
    )
    data = dataset.data
    embedding = GraphEmbedding(EMBED_LENGTH, random_state=0)
    embedding.fit(data)  # untimed: fills projection_ / node_positions_

    subsequences, series_index, _ = subsequences_of_dataset(data, EMBED_LENGTH, 1)
    subsequences = znormalize_dataset(subsequences)
    projection = embedding.projection_
    node_positions = embedding.node_positions_
    distances = (
        np.sum(projection**2, axis=1)[:, None]
        - 2.0 * projection @ node_positions.T
        + np.sum(node_positions**2, axis=1)[None, :]
    )
    assignments = np.argmin(distances, axis=1)
    used_nodes = np.unique(assignments)
    assignments = np.searchsorted(used_nodes, assignments)
    node_positions = node_positions[used_nodes]

    def build(vectorized: bool) -> TimeSeriesGraph:
        graph = TimeSeriesGraph(length=EMBED_LENGTH, n_series=data.shape[0])
        assemble = (
            embedding._assemble_vectorized if vectorized else embedding._assemble_reference
        )
        assemble(graph, subsequences, assignments, series_index, node_positions)
        return graph

    entry = _entry(
        "embedding_build",
        lambda: build(False),
        lambda: build(True),
        lambda ref, vec: ref.to_payload() == vec.to_payload(),
    )
    entry["n_subsequences"] = int(subsequences.shape[0])
    return entry


def _dtw_single_entry() -> Dict[str, object]:
    rng = np.random.default_rng(1)
    a = rng.normal(size=DTW_SINGLE_LENGTH).cumsum()
    b = rng.normal(size=DTW_SINGLE_LENGTH).cumsum()
    entry = _entry(
        "dtw_single",
        lambda: dtw_distance_reference(a, b),
        lambda: dtw_distance(a, b),
        lambda ref, vec: ref == vec,
    )
    entry["length"] = DTW_SINGLE_LENGTH
    return entry


def _dtw_pairwise_entry() -> Dict[str, object]:
    rng = np.random.default_rng(2)
    data = rng.normal(size=DTW_PAIRWISE_SHAPE).cumsum(axis=1)
    entry = _entry(
        "dtw_pairwise",
        lambda: pairwise_distances_reference(data, metric="dtw"),
        lambda: pairwise_distances(data, metric="dtw"),
        np.array_equal,
        ref_repeats=1,
    )
    entry["shape"] = list(DTW_PAIRWISE_SHAPE)
    return entry


def _pairwise_entry(metric: str) -> Dict[str, object]:
    rng = np.random.default_rng(3)
    data = rng.normal(size=PAIRWISE_SHAPE).cumsum(axis=1)
    # The euclidean default is the (even faster) gram-matrix GEMM path;
    # exact=True selects the direct-difference kernel, the one that is
    # bit-identical to the reference loop and therefore the one timed here.
    kwargs = {"exact": True} if metric == "euclidean" else {}
    entry = _entry(
        f"{metric}_pairwise",
        lambda: pairwise_distances_reference(data, metric=metric),
        lambda: pairwise_distances(data, metric=metric, **kwargs),
        np.array_equal,
    )
    entry["shape"] = list(PAIRWISE_SHAPE)
    return entry


def _knn_entry() -> Dict[str, object]:
    rng = np.random.default_rng(4)
    data = rng.normal(size=KNN_SHAPE)
    entry = _entry(
        "knn_affinity",
        lambda: knn_affinity_reference(data, n_neighbors=KNN_NEIGHBORS),
        lambda: knn_affinity(data, n_neighbors=KNN_NEIGHBORS),
        np.array_equal,
    )
    entry["shape"] = list(KNN_SHAPE)
    return entry


def _consensus_entry() -> Dict[str, object]:
    rng = np.random.default_rng(5)
    partitions = [
        rng.integers(0, 5, size=CONSENSUS_SAMPLES) for _ in range(CONSENSUS_PARTITIONS)
    ]
    entry = _entry(
        "consensus_matrix",
        lambda: build_consensus_matrix_reference(partitions),
        lambda: build_consensus_matrix(partitions),
        np.array_equal,
    )
    entry["n_partitions"] = CONSENSUS_PARTITIONS
    entry["n_samples"] = CONSENSUS_SAMPLES
    return entry


def _predict_entry() -> Dict[str, object]:
    train = make_cylinder_bell_funnel(n_series=24, length=96, noise=0.2, random_state=6)
    model = KGraph(n_clusters=3, n_lengths=2, random_state=0)
    model.fit(train.data)
    state = model.prediction_state()
    fresh = make_cylinder_bell_funnel(
        n_series=PREDICT_BATCH, length=96, noise=0.2, random_state=7
    )
    entry = _entry(
        "batched_predict",
        lambda: predict_with_state_reference(state, fresh.data),
        lambda: predict_with_state(state, fresh.data),
        np.array_equal,
    )
    entry["batch_size"] = PREDICT_BATCH
    return entry


def _pipeline_entry() -> Dict[str, object]:
    """Cold pipeline fit vs a fully checkpoint-replayed re-fit (resume path).

    The "reference" side is a cold ``KGraph.fit`` through the stage
    pipeline; the "vectorized" side re-fits with identical parameters
    against a warm :class:`~repro.pipeline.MemoryStageCache`, so every
    stage replays its checkpoint.  Labels must be bit-identical either way
    — the speedup is what ``--resume`` and the benchmark parameter grids
    buy over refitting from scratch.
    """
    dataset = make_cylinder_bell_funnel(
        n_series=PIPELINE_N_SERIES,
        length=PIPELINE_SERIES_LENGTH,
        noise=0.2,
        random_state=9,
    )
    params = dict(n_clusters=3, n_lengths=PIPELINE_N_LENGTHS, random_state=0)

    def cold() -> np.ndarray:
        return KGraph(**params).fit(dataset.data).labels_

    cache = MemoryStageCache()
    KGraph(**params, stage_cache=cache).fit(dataset.data)  # untimed warm-up

    def warm() -> np.ndarray:
        return KGraph(**params, stage_cache=cache).fit(dataset.data).labels_

    entry = _entry(
        "pipeline_cached_refit", cold, warm, np.array_equal, ref_repeats=1
    )
    entry["n_series"] = int(dataset.n_series)
    entry["series_length"] = int(dataset.length)
    entry["n_lengths"] = int(params["n_lengths"])
    return entry


# --------------------------------------------------------------------- #
# fused stage dispatch (ISSUE 6)
# --------------------------------------------------------------------- #
# A deliberately transfer-bound two-stage pipeline: stage one expands the
# dataset into per-length window tensors (a memcpy), stage two runs two
# cheap one-pass reductions over each tensor — norm and mean profiles —
# as separate jobs.  Unfused, the window tensors come back to the
# coordinator after stage one and are pickled *again* into every
# stage-two job (twice per length, once per reduction); fused, one
# dispatch computes everything on the worker, so each intermediate
# crosses the process boundary once instead of three times.  Jobs and job
# functions live at module level so the pool's workers can unpickle them
# by reference.

_BENCH_PROFILE_KINDS = ("norm", "mean")


@dataclass(frozen=True)
class _BenchWindowJob:
    length: int
    array: np.ndarray


@dataclass(frozen=True)
class _BenchProfileJob:
    length: int
    kind: str
    windows: np.ndarray


def _bench_expand_windows(job: _BenchWindowJob) -> np.ndarray:
    windows, _, _ = subsequences_of_dataset(job.array, job.length, 1)
    return windows


def _bench_profile_windows(job: _BenchProfileJob) -> np.ndarray:
    if job.kind == "norm":
        return np.sqrt(np.einsum("ij,ij->i", job.windows, job.windows))
    return job.windows.mean(axis=1)


def _bench_expand_then_profile(
    job: _BenchWindowJob,
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    windows = _bench_expand_windows(job)
    return windows, {
        kind: _bench_profile_windows(_BenchProfileJob(job.length, kind, windows))
        for kind in _BENCH_PROFILE_KINDS
    }


class _BenchExpandStage(Stage):
    name = "bench_expand"
    inputs = ("bench_array", "bench_lengths")
    outputs = ("bench_windows",)
    fusable_with = "bench_profile"

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        array = ctx.require("bench_array")
        jobs = [_BenchWindowJob(length, array) for length in ctx.require("bench_lengths")]
        outcomes = ctx.dispatch(self.name, _bench_expand_windows, jobs)
        return {
            "bench_windows": {
                job.length: outcome.unwrap() for job, outcome in zip(jobs, outcomes)
            }
        }

    def run_fused(self, next_stage: Stage, ctx: PipelineContext):
        array = ctx.require("bench_array")
        jobs = [_BenchWindowJob(length, array) for length in ctx.require("bench_lengths")]
        outcomes = ctx.dispatch(self.name, _bench_expand_then_profile, jobs)
        windows: Dict[int, np.ndarray] = {}
        profiles: Dict[Tuple[int, str], np.ndarray] = {}
        for job, outcome in zip(jobs, outcomes):
            windows[job.length], by_kind = outcome.unwrap()
            for kind, profile in by_kind.items():
                profiles[(job.length, kind)] = profile
        return {"bench_windows": windows}, {"bench_profiles": profiles}


class _BenchProfileStage(Stage):
    name = "bench_profile"
    inputs = ("bench_windows",)
    outputs = ("bench_profiles",)

    def run(self, ctx: PipelineContext) -> Dict[str, object]:
        windows = ctx.require("bench_windows")
        jobs = [
            _BenchProfileJob(length, kind, array)
            for length, array in windows.items()
            for kind in _BENCH_PROFILE_KINDS
        ]
        outcomes = ctx.dispatch(self.name, _bench_profile_windows, jobs)
        return {
            "bench_profiles": {
                (job.length, job.kind): outcome.unwrap()
                for job, outcome in zip(jobs, outcomes)
            }
        }


def _run_window_pipeline(backend, data: np.ndarray, fuse: bool):
    pipeline = Pipeline(
        [_BenchExpandStage(), _BenchProfileStage()],
        seed_inputs=("bench_array", "bench_lengths"),
    )
    ctx = PipelineContext(
        values={"bench_array": data, "bench_lengths": FUSED_LENGTHS}, backend=backend
    )
    pipeline.run(ctx, fuse=fuse)
    return ctx.values["bench_windows"], ctx.values["bench_profiles"], ctx.bytes_shipped


def _window_outputs_equal(ours, theirs) -> bool:
    our_windows, our_profiles, _ = ours
    their_windows, their_profiles, _ = theirs
    return (
        set(our_windows) == set(their_windows)
        and all(np.array_equal(our_windows[k], their_windows[k]) for k in our_windows)
        and all(np.array_equal(our_profiles[k], their_profiles[k]) for k in our_profiles)
    )


def _fused_dispatch_entry() -> Dict[str, object]:
    rng = np.random.default_rng(10)
    data = rng.normal(size=(FUSED_N_SERIES, FUSED_SERIES_LENGTH)).cumsum(axis=1)
    serial = _run_window_pipeline(SerialBackend(), data, fuse=False)
    backend = ProcessBackend(FANOUT_WORKERS)
    try:
        # Untimed warm-up forks the workers and faults in both code paths.
        unfused_warm = _run_window_pipeline(backend, data, fuse=False)
        fused_warm = _run_window_pipeline(backend, data, fuse=True)
        assert _window_outputs_equal(unfused_warm, serial), "unfused != serial"
        assert _window_outputs_equal(fused_warm, serial), "fused != serial"
        # Interleaved paired timing instead of _entry's two back-to-back
        # blocks: both sides are transfer-bound wall-clock measurements, so
        # a background load spike during one block would skew the ratio;
        # alternating the sides makes drift hit both equally.
        unfused_seconds = fused_seconds = float("inf")
        for _ in range(6):
            start = time.perf_counter()
            _run_window_pipeline(backend, data, fuse=False)
            unfused_seconds = min(unfused_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            _run_window_pipeline(backend, data, fuse=True)
            fused_seconds = min(fused_seconds, time.perf_counter() - start)
        entry = {
            "hot_path": "fused_fit_dispatch",
            "reference_seconds": unfused_seconds,
            "vectorized_seconds": fused_seconds,
            "speedup": unfused_seconds / max(fused_seconds, 1e-12),
        }
    finally:
        backend.close()
    entry["n_series"] = FUSED_N_SERIES
    entry["series_length"] = FUSED_SERIES_LENGTH
    entry["lengths"] = list(FUSED_LENGTHS)
    entry["intermediate_bytes"] = int(
        sum(array.nbytes for array in serial[0].values())
    )
    entry["bytes_shipped_unfused"] = {k: int(v) for k, v in unfused_warm[2].items()}
    entry["bytes_shipped_fused"] = {k: int(v) for k, v in fused_warm[2].items()}
    return entry


def _shared_result_pairwise_entry() -> Dict[str, object]:
    """Backend-routed pairwise strips: plain pickling pool vs zero-copy.

    Both sides run the identical strip jobs on the same worker count, so
    the outputs are bit-identical; the contrast is pure transfer cost.
    The plain :class:`ProcessBackend` pickles the dataset into every strip
    job (long series make that the dominant cost — the paper's
    subsequence-of-long-recordings regime), while
    :class:`SharedMemoryBackend` writes it once into a shared segment and
    brings the strip results home through worker-published result
    segments instead of pickles.
    """
    rng = np.random.default_rng(11)
    data = rng.normal(size=SHARED_PAIRWISE_SHAPE).cumsum(axis=1)
    plain = ProcessBackend(FANOUT_WORKERS)
    shared = SharedMemoryBackend(FANOUT_WORKERS, min_result_bytes=0)
    try:
        entry = _entry(
            "shared_result_pairwise",
            lambda: pairwise_distances(data, metric="euclidean", backend=plain),
            lambda: pairwise_distances(data, metric="euclidean", backend=shared),
            np.array_equal,
            ref_repeats=2,
            vec_repeats=4,
        )
        entry["result_segments"] = int(shared.result_segments)
        entry["result_bytes"] = int(shared.result_bytes)
    finally:
        plain.close()
        shared.close()
    entry["shape"] = list(SHARED_PAIRWISE_SHAPE)
    entry["dataset_bytes"] = int(data.nbytes)
    entry["plain_bytes_shipped"] = int(plain.bytes_shipped)
    entry["shared_bytes_shipped"] = int(shared.bytes_shipped)
    return entry


def _shared_memory_stats() -> Dict[str, object]:
    """Pickled bytes per per-length fit job, with and without sharing."""
    dataset = make_cylinder_bell_funnel(
        n_series=EMBED_N_SERIES, length=EMBED_SERIES_LENGTH, noise=0.2, random_state=8
    )
    jobs = [
        _LengthFitJob(
            length=length,
            array=dataset.data,
            stride=1,
            n_sectors=24,
            feature_mode="both",
            n_clusters=3,
            rng=np.random.default_rng(0),
        )
        for length in (12, 24, 48, 64)
    ]
    plain_bytes = sum(len(pickle.dumps(job)) for job in jobs)
    with SharedArrayPlan() as plan:
        shared_bytes = sum(
            len(pickle.dumps(substitute_shared_arrays(job, plan, 0))) for job in jobs
        )
        n_segments = plan.n_segments
    return {
        "n_jobs": len(jobs),
        "dataset_bytes": int(dataset.data.nbytes),
        "plain_pickled_bytes": int(plain_bytes),
        "shared_pickled_bytes": int(shared_bytes),
        "bytes_ratio": plain_bytes / max(1, shared_bytes),
        "segments_written": int(n_segments),
    }


def _run_hotpaths_experiment() -> Dict[str, object]:
    entries: List[Dict[str, object]] = [
        _embedding_entry(),
        _dtw_single_entry(),
        _dtw_pairwise_entry(),
        _pairwise_entry("euclidean"),
        _pairwise_entry("zeuclidean"),
        _pairwise_entry("sbd"),
        _knn_entry(),
        _consensus_entry(),
        _predict_entry(),
        _pipeline_entry(),
        _fused_dispatch_entry(),
        _shared_result_pairwise_entry(),
    ]
    for entry in entries:
        floor = SPEEDUP_FLOORS.get(entry["hot_path"])
        if floor is not None:
            assert entry["speedup"] >= floor, (
                f"{entry['hot_path']}: speedup {entry['speedup']:.1f}x below the "
                f"{floor:g}x acceptance floor"
            )
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment": "E13-hotpaths",
        "full_mode": full_mode(),
        "entries": entries,
        "shared_memory": _shared_memory_stats(),
    }


@pytest.mark.benchmark(group="E13-hotpaths")
def test_bench_hotpaths(benchmark):
    payload = benchmark.pedantic(_run_hotpaths_experiment, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "hotpaths.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    rows = [
        {
            "hot path": entry["hot_path"],
            "reference_s": entry["reference_seconds"],
            "vectorized_s": entry["vectorized_seconds"],
            "speedup": entry["speedup"],
        }
        for entry in payload["entries"]
    ]
    shared = payload["shared_memory"]
    text = format_table(rows, ["hot path", "reference_s", "vectorized_s", "speedup"])
    text += (
        "\n\nAll vectorized outputs bit-identical to the reference implementations."
        f"\nShared-memory plan: {shared['n_jobs']} fit jobs pickled "
        f"{shared['plain_pickled_bytes']} bytes plain vs "
        f"{shared['shared_pickled_bytes']} bytes shared "
        f"({shared['bytes_ratio']:.0f}x smaller, "
        f"{shared['segments_written']} segment written once)."
    )
    report("E13: Hot-path vectorization", text)

    assert all(entry["speedup"] > 1.0 for entry in payload["entries"])
