"""Typed, versioned estimator configs — the single source of parameter truth.

Before this module, k-Graph's parameters were re-declared independently in
``KGraph.__init__``, the CLI flags, ``run_kgraph_grid``, the serve manifest
schema and each pipeline stage's ``config_keys``.  An
:class:`EstimatorConfig` subclass replaces all of those declarations with
one frozen dataclass per estimator family:

* **defaults + validation** happen once, in ``__post_init__`` — a parameter
  combination that cannot fit fails at *config construction* with the
  offending field named, never three stages into a grid sweep;
* **stable JSON round-trip** — :meth:`to_dict` / :meth:`from_dict` (and the
  ``to_json`` / ``from_json`` string forms) carry an explicit schema
  ``version``; unknown keys are rejected *by name*, payloads written by a
  newer library version fail with an "upgrade the library" message, and
  older payloads are upgraded through per-version migration hooks
  (:meth:`_migrate`);
* **canonical hashing** — :meth:`config_hash` digests the canonical JSON
  form, so pipeline checkpoints, serve manifests and benchmark grids all
  share one process-stable identity for "the same configuration";
* **grid expansion** — :meth:`expand_grid` turns a dict-of-lists into the
  concrete config list a parameter sweep runs, deterministically.

The concrete configs (:class:`KGraphConfig`, :class:`BaselineConfig`) live
here too; estimator classes hold a config instance and expose it through
the :class:`~repro.api.protocol.Estimator` protocol's ``get_config`` /
``from_config`` pair.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

import numpy as np

from repro.exceptions import ConfigError, ValidationError
from repro.utils.validation import check_positive_int, check_probability

C = TypeVar("C", bound="EstimatorConfig")


def _jsonify(value: object) -> object:
    """Convert a config field value to its canonical JSON form."""
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def grid_combinations(
    grid: Mapping[str, Sequence[object]],
) -> List[Dict[str, object]]:
    """Expand a dict-of-lists grid into override dicts, deterministically.

    The single source of the expansion-order contract: keys are processed
    in sorted order and combined with :func:`itertools.product` (rightmost
    key varies fastest).  Both :meth:`EstimatorConfig.expand_grid` and the
    benchmark harness's estimator sweeps expand through here, so their
    orderings can never drift apart.
    """
    if not isinstance(grid, Mapping):
        raise ConfigError(
            f"a grid must be a mapping of field name -> list of candidate "
            f"values, got {type(grid).__name__}"
        )
    keys = sorted(grid)
    value_lists: List[List[object]] = []
    for key in keys:
        values = grid[key]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigError(
                f"grid entry {key!r} must be a list of candidate values, "
                f"got {type(values).__name__}"
            )
        if not values:
            raise ConfigError(f"grid entry {key!r} is an empty list")
        value_lists.append(list(values))
    return [
        dict(zip(keys, combination))
        for combination in itertools.product(*value_lists)
    ]


class EstimatorConfig:
    """Base class for frozen, versioned estimator configuration dataclasses.

    Subclasses are ``@dataclass(frozen=True)`` declarations whose fields
    *are* the estimator's parameters.  Two class attributes define the
    serialisation contract:

    ``config_name``
        Stable identifier mixed into :meth:`config_hash` so two config
        classes with coincidentally equal fields never collide.
    ``version``
        Schema version written by :meth:`to_dict`.  Bump it on any
        incompatible payload change and add a :meth:`_migrate` step that
        upgrades the previous version's payloads.
    """

    config_name: ClassVar[str] = "estimator"
    version: ClassVar[int] = 1

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """The config's field names, in declaration order."""
        return tuple(f.name for f in dataclasses.fields(cls))

    def to_dict(self) -> Dict[str, object]:
        """Fully-explicit JSON-ready payload, including the schema version."""
        payload: Dict[str, object] = {"version": int(type(self).version)}
        for name in self.field_names():
            payload[name] = _jsonify(getattr(self, name))
        return payload

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def _migrate(cls, payload: Dict[str, object], from_version: int) -> Dict[str, object]:
        """Upgrade a ``from_version`` payload one step; subclasses override.

        Called repeatedly by :meth:`from_dict` until the payload reaches the
        current :attr:`version`.  The default refuses: a class that bumps
        its version without registering the matching migration step is a
        bug, and it should surface as one.
        """
        raise ConfigError(
            f"{cls.__name__} has no migration from config version {from_version} "
            f"to {from_version + 1}; this payload cannot be upgraded"
        )

    @classmethod
    def _check_version(cls, payload: Mapping[str, object]) -> Tuple[Dict[str, object], int]:
        mutable = dict(payload)
        found = mutable.pop("version", 1)
        if isinstance(found, bool) or not isinstance(found, int) or found < 1:
            raise ConfigError(
                f"{cls.__name__} payload has a malformed version {found!r}; "
                "expected a positive integer"
            )
        if found > cls.version:
            raise ConfigError(
                f"{cls.__name__} payload uses config version {found} but this "
                f"library only understands versions <= {cls.version}; upgrade "
                "the library to read it"
            )
        return mutable, found

    @classmethod
    def _check_keys(cls, payload: Mapping[str, object], *, require_all: bool) -> None:
        names = set(cls.field_names())
        unknown = sorted(set(payload) - names)
        if unknown:
            raise ConfigError(
                f"unknown {cls.__name__} key(s) {unknown}; valid keys: "
                f"{sorted(names)}"
            )
        if require_all:
            missing = sorted(names - set(payload))
            if missing:
                raise ConfigError(
                    f"{cls.__name__} payload is missing key(s) {missing}; a "
                    f"version-{cls.version} payload written by to_dict() "
                    "carries every field explicitly"
                )

    @classmethod
    def from_dict(cls: Type[C], payload: Mapping[str, object]) -> C:
        """Reconstruct a config from a :meth:`to_dict` payload.

        A missing ``version`` key means version 1 (the convention every
        legacy flat-params payload in this library follows).  Older
        versions are upgraded step-by-step through :meth:`_migrate`;
        current-version payloads must carry every field explicitly and may
        not carry unknown keys — both failure modes name the keys.
        """
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"{cls.__name__} payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        mutable, found = cls._check_version(payload)
        while found < cls.version:
            mutable = cls._migrate(mutable, found)
            found += 1
        cls._check_keys(mutable, require_all=True)
        return cls(**mutable)

    @classmethod
    def from_json(cls: Type[C], text: str) -> C:
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{cls.__name__} payload is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def from_options(
        cls: Type[C],
        payload: Optional[Mapping[str, object]] = None,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> C:
        """Build a config from *sparse* human-authored options.

        Unlike the strict :meth:`from_dict` (which reads complete payloads
        written by :meth:`to_dict`), this is the entry point for CLI
        ``--config file.json`` / ``--set key=value`` input: absent fields
        take their defaults, ``overrides`` win over ``payload``, versioned
        payloads are migrated, and unknown keys still fail by name.
        """
        mutable, found = cls._check_version(payload or {})
        while found < cls.version:
            mutable = cls._migrate(mutable, found)
            found += 1
        mutable.update(overrides or {})
        cls._check_keys(mutable, require_all=False)
        return cls(**mutable)

    def replace(self: C, **changes: object) -> C:
        """A copy with ``changes`` applied (re-validated on construction)."""
        if changes:
            self._check_keys(changes, require_all=False)
        return dataclasses.replace(self, **changes)  # type: ignore[type-var]

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    def canonical_json(self) -> str:
        """Canonical (sorted, compact) JSON form :meth:`config_hash` digests."""
        return json.dumps(
            {"config": type(self).config_name, **self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )

    def config_hash(self) -> str:
        """Process-stable sha256 identity of this configuration.

        The digest covers the config name, schema version and every field
        in canonical JSON form, so equal configs hash equally across
        processes, machines and sessions — the property pipeline caches,
        serve manifests and benchmark grids key on.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # grid expansion
    # ------------------------------------------------------------------ #
    @classmethod
    def expand_grid(
        cls: Type[C],
        grid: Mapping[str, Sequence[object]],
        *,
        base: Optional[C] = None,
    ) -> List[C]:
        """Expand a dict-of-lists into concrete configs, deterministically.

        Combination order is :func:`grid_combinations`' contract (sorted
        keys, rightmost varying fastest), so the same grid always expands
        to the same config sequence.  Every combination is validated at
        construction — an invalid value fails here, naming the field,
        before any fit starts.
        """
        cls._check_keys(grid if isinstance(grid, Mapping) else {}, require_all=False)
        base_fields: Dict[str, object] = (
            {name: getattr(base, name) for name in cls.field_names()} if base is not None else {}
        )
        configs: List[C] = []
        for combination in grid_combinations(grid):
            fields = dict(base_fields)
            fields.update(combination)
            configs.append(cls(**fields))
        return configs


# --------------------------------------------------------------------------- #
# k-Graph
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class KGraphConfig(EstimatorConfig):
    """Every k-Graph parameter, validated once, serialised stably.

    Field ``metadata`` records which pipeline stage each parameter feeds
    (``stages``) — :meth:`stage_config_keys` derives the stages'
    ``config_keys`` from it, so the checkpoint-invalidation rules of
    :mod:`repro.pipeline.kgraph_stages` and this declaration can never
    drift apart — plus the one-line ``help`` the CLI's ``estimators
    describe`` prints.

    Version history:

    1. The legacy flat ``params`` mapping embedded in model-artifact
       manifests (schema v1/v2) and accepted by ``KGraph(**kwargs)``:
       same field names, but fields at their defaults could be omitted.
    2. Adds the explicit ``version`` key and requires ``to_dict`` payloads
       to carry every field; the v1 migration fills absent fields with
       their defaults.
    """

    config_name: ClassVar[str] = "kgraph"
    version: ClassVar[int] = 2

    n_clusters: int = field(
        default=3,
        metadata={
            "stages": ("graph_cluster", "consensus"),
            "help": "number of clusters k",
        },
    )
    n_lengths: int = field(
        default=4,
        metadata={
            "stages": (),
            "help": "size M of the automatic subsequence-length grid "
            "(ignored when lengths is given)",
        },
    )
    lengths: Optional[Tuple[int, ...]] = field(
        default=None,
        metadata={
            "stages": (),
            "help": "explicit subsequence lengths (each >= 2); omit to use "
            "the automatic grid",
        },
    )
    stride: int = field(
        default=1,
        metadata={
            "stages": ("embed",),
            "help": "subsequence extraction stride (1 = every subsequence)",
        },
    )
    n_sectors: int = field(
        default=24,
        metadata={
            "stages": ("embed",),
            "help": "angular sectors of the radial-scan node extraction",
        },
    )
    feature_mode: str = field(
        default="both",
        metadata={
            "stages": ("graph_cluster",),
            "help": "graph features clustered per length: 'both', 'nodes' "
            "or 'edges'",
        },
    )
    lambda_threshold: float = field(
        default=0.5,
        metadata={
            "stages": ("interpretability",),
            "help": "lambda-graphoid exclusivity threshold in [0, 1]",
        },
    )
    gamma_threshold: float = field(
        default=0.5,
        metadata={
            "stages": ("interpretability",),
            "help": "gamma-graphoid representativity threshold in [0, 1]",
        },
    )
    random_state: Optional[int] = field(
        default=None,
        metadata={
            "stages": (),
            "help": "integer seed controlling every stochastic sub-step "
            "(None = fresh entropy)",
        },
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "n_clusters", check_positive_int(self.n_clusters, "n_clusters", minimum=2)
        )
        object.__setattr__(
            self, "n_lengths", check_positive_int(self.n_lengths, "n_lengths")
        )
        if self.lengths is not None:
            if isinstance(self.lengths, (str, bytes)) or not isinstance(
                self.lengths, (Sequence, np.ndarray)
            ):
                raise ValidationError(
                    f"lengths must be a list of integers >= 2 or None, got "
                    f"{type(self.lengths).__name__}"
                )
            values = [check_positive_int(int(v), "length", minimum=2) for v in self.lengths]
            if not values:
                raise ValidationError(
                    "lengths must not be empty; omit it (or pass None) to use "
                    "the automatic n_lengths grid"
                )
            # Canonical sorted-unique form: two configs naming the same
            # length set in different orders are the same configuration
            # (and must hash equally).
            object.__setattr__(self, "lengths", tuple(sorted(set(values))))
        object.__setattr__(self, "stride", check_positive_int(self.stride, "stride"))
        object.__setattr__(
            self, "n_sectors", check_positive_int(self.n_sectors, "n_sectors", minimum=2)
        )
        if self.feature_mode not in {"both", "nodes", "edges"}:
            raise ValidationError(
                f"feature_mode must be 'both', 'nodes' or 'edges', got "
                f"{self.feature_mode!r}"
            )
        object.__setattr__(
            self,
            "lambda_threshold",
            check_probability(self.lambda_threshold, "lambda_threshold"),
        )
        object.__setattr__(
            self,
            "gamma_threshold",
            check_probability(self.gamma_threshold, "gamma_threshold"),
        )
        if self.random_state is not None:
            if isinstance(self.random_state, bool) or not isinstance(
                self.random_state, (int, np.integer)
            ):
                raise ValidationError(
                    "random_state must be None or a non-negative integer in a "
                    f"config, got {type(self.random_state).__name__}"
                )
            if self.random_state < 0:
                raise ValidationError(
                    f"random_state must be non-negative, got {self.random_state}"
                )
            object.__setattr__(self, "random_state", int(self.random_state))

    @classmethod
    def _migrate(cls, payload: Dict[str, object], from_version: int) -> Dict[str, object]:
        if from_version == 1:
            # v1 payloads (legacy manifest params / plain kwargs) could omit
            # fields sitting at their defaults; v2 payloads are fully
            # explicit.  Filling the defaults in is the entire upgrade.
            upgraded = dict(payload)
            for f in dataclasses.fields(cls):
                upgraded.setdefault(f.name, f.default)
            return upgraded
        return super()._migrate(payload, from_version)

    # ------------------------------------------------------------------ #
    # pipeline-stage views
    # ------------------------------------------------------------------ #
    @classmethod
    def stage_config_keys(cls, stage: str) -> Tuple[str, ...]:
        """Field names feeding pipeline stage ``stage``, in declared order.

        This is the single source the k-Graph stages derive their
        ``config_keys`` from — a field tagged with a stage automatically
        participates in that stage's content-addressed cache key.
        """
        return tuple(
            f.name
            for f in dataclasses.fields(cls)
            if stage in f.metadata.get("stages", ())
        )

    @classmethod
    def stage_fields(cls) -> Tuple[str, ...]:
        """Every field that feeds at least one pipeline stage."""
        return tuple(
            f.name for f in dataclasses.fields(cls) if f.metadata.get("stages", ())
        )

    def stage_config(self) -> Dict[str, object]:
        """The flat config mapping the k-Graph pipeline stages read."""
        return {name: getattr(self, name) for name in self.stage_fields()}


# --------------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BaselineConfig(EstimatorConfig):
    """Generic config shared by every registered baseline method.

    The baseline runners in :mod:`repro.baselines.registry` expose exactly
    three degrees of freedom — which method, how many clusters, and the
    seed — so one config class covers all of them.  ``method`` names the
    registry entry; its existence is checked when the estimator is built
    (the config layer stays import-light), everything else here.
    """

    config_name: ClassVar[str] = "baseline"
    version: ClassVar[int] = 1

    method: str = field(
        default="",
        metadata={"help": "estimator registry name of the baseline to run"},
    )
    n_clusters: Optional[int] = field(
        default=None,
        metadata={
            "help": "number of clusters; None defers to the dataset's "
            "ground-truth class count (fallback 3)",
        },
    )
    random_state: Optional[int] = field(
        default=None,
        metadata={"help": "integer seed forwarded to the method (None = fresh)"},
    )

    def __post_init__(self) -> None:
        if not isinstance(self.method, str) or not self.method.strip():
            raise ValidationError(
                "method must be a non-empty baseline registry name, got "
                f"{self.method!r}"
            )
        object.__setattr__(self, "method", self.method.strip().lower())
        if self.n_clusters is not None:
            object.__setattr__(
                self, "n_clusters", check_positive_int(self.n_clusters, "n_clusters")
            )
        if self.random_state is not None:
            if isinstance(self.random_state, bool) or not isinstance(
                self.random_state, (int, np.integer)
            ):
                raise ValidationError(
                    "random_state must be None or a non-negative integer in a "
                    f"config, got {type(self.random_state).__name__}"
                )
            if self.random_state < 0:
                raise ValidationError(
                    f"random_state must be non-negative, got {self.random_state}"
                )
            object.__setattr__(self, "random_state", int(self.random_state))


def config_field_info(config_cls: Type[EstimatorConfig]) -> List[Dict[str, Any]]:
    """Describe a config class's fields for CLI/docs rendering.

    One row per field: name, default, the pipeline stages it feeds (when
    declared) and the one-line help string from the field metadata.
    """
    rows: List[Dict[str, Any]] = []
    for f in dataclasses.fields(config_cls):
        row: Dict[str, Any] = {
            "name": f.name,
            "default": _jsonify(f.default),
            "help": f.metadata.get("help", ""),
        }
        stages = f.metadata.get("stages")
        if stages:
            row["stages"] = list(stages)
        rows.append(row)
    return rows
