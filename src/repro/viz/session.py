"""Analysis session: every artifact the dashboard needs for one dataset.

A :class:`GraphintSession` mirrors what the Streamlit app computes when the
user picks a dataset from the sidebar: it fits k-Graph and the two reference
baselines (k-Means, k-Shape), builds the quiz representations, and exposes
the fitted objects to the frame builders.  The session caches everything so
the dashboard/server can re-render frames with different widget values (λ, γ,
selected node, measure) without recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.api.config import KGraphConfig
from repro.cluster.kmeans import KMeans
from repro.cluster.kshape import KShape
from repro.core.kgraph import KGraph
from repro.exceptions import ValidationError
from repro.interpret.quiz import Quiz, build_quiz
from repro.interpret.representations import (
    centroid_representation,
    graphoid_representation,
)
from repro.interpret.user_model import score_methods
from repro.parallel import ExecutionBackend, RetryPolicy
from repro.utils.containers import TimeSeriesDataset
from repro.utils.normalization import znormalize_dataset
from repro.utils.rng import SeedSequencePool
from repro.utils.validation import check_positive_int


@dataclass
class GraphintSession:
    """Fitted artifacts for one dataset.

    Parameters
    ----------
    dataset:
        The labelled dataset to analyse.
    n_clusters:
        Number of clusters; defaults to the dataset's number of classes.
    n_lengths:
        Number of subsequence lengths for the k-Graph grid.
    random_state:
        Seed controlling every stochastic step of the session.
    backend, n_jobs:
        Execution backend forwarded to :class:`~repro.core.kgraph.KGraph`
        so the dashboard's k-Graph fit can use the parallel pipeline stages
        (see :mod:`repro.parallel`).  Serial by default; results are
        identical across backends for a fixed seed.
    retry, fallback:
        Fault-tolerance knobs forwarded to the k-Graph fit: an optional
        :class:`~repro.parallel.RetryPolicy` and an optional degradation
        chain (see :func:`repro.parallel.resolve_backend`).  Runtime-only,
        never result-affecting.
    kgraph_config:
        Optional :class:`~repro.api.KGraphConfig` governing the k-Graph
        fit (the CLI's ``--config`` / ``--set`` plumbing).  When given it
        is the source of truth for every k-Graph parameter except the
        seed, which the session always draws from its own pool so the
        whole analysis stays reproducible from one ``random_state``;
        ``n_clusters`` defaults to the config's value and ``n_lengths``
        is ignored in favour of the config.
    """

    dataset: TimeSeriesDataset
    n_clusters: Optional[int] = None
    n_lengths: int = 4
    random_state: Optional[int] = None
    backend: Union[None, str, ExecutionBackend] = None
    n_jobs: Optional[int] = None
    retry: Optional["RetryPolicy"] = None
    fallback: Union[None, str, ExecutionBackend, tuple] = None
    kgraph_config: Optional["KGraphConfig"] = None

    kgraph: KGraph = field(init=False)
    method_labels: Dict[str, np.ndarray] = field(init=False, default_factory=dict)
    quizzes: Dict[str, Quiz] = field(init=False, default_factory=dict)
    quiz_scores: Dict[str, float] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.dataset.labels is None:
            raise ValidationError("GraphintSession requires a labelled dataset")
        if self.kgraph_config is not None and not isinstance(
            self.kgraph_config, KGraphConfig
        ):
            raise ValidationError(
                "kgraph_config must be a KGraphConfig, got "
                f"{type(self.kgraph_config).__name__}"
            )
        if self.n_clusters is None:
            if self.kgraph_config is not None:
                self.n_clusters = self.kgraph_config.n_clusters
            else:
                self.n_clusters = max(self.dataset.n_classes, 2)
        self.n_clusters = check_positive_int(self.n_clusters, "n_clusters", minimum=2)
        self.n_lengths = check_positive_int(self.n_lengths, "n_lengths")
        self._pool = SeedSequencePool(self.random_state)
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self) -> "GraphintSession":
        """Fit k-Graph, k-Means and k-Shape on the dataset."""
        if self._fitted:
            return self
        data = self.dataset.data

        if self.kgraph_config is not None:
            config = self.kgraph_config.replace(
                n_clusters=self.n_clusters,
                random_state=self._pool.next_seed(),
            )
            self.kgraph = KGraph.from_config(
                config,
                backend=self.backend,
                n_jobs=self.n_jobs,
                retry=self.retry,
                fallback=self.fallback,
            )
        else:
            self.kgraph = KGraph(
                n_clusters=self.n_clusters,
                n_lengths=self.n_lengths,
                random_state=self._pool.next_seed(),
                backend=self.backend,
                n_jobs=self.n_jobs,
                retry=self.retry,
                fallback=self.fallback,
            )
        self.method_labels["kgraph"] = self.kgraph.fit_predict(data)

        kmeans = KMeans(
            n_clusters=self.n_clusters, n_init=5, random_state=self._pool.next_seed()
        )
        self.method_labels["kmeans"] = kmeans.fit_predict(znormalize_dataset(data))

        kshape = KShape(
            n_clusters=self.n_clusters, n_init=2, random_state=self._pool.next_seed()
        )
        self.method_labels["kshape"] = kshape.fit_predict(data)

        self._fitted = True
        return self

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise ValidationError("session is not fitted yet; call fit() first")

    # ------------------------------------------------------------------ #
    def build_quizzes(self, *, n_questions: int = 5, n_users: int = 5) -> Dict[str, Quiz]:
        """Build and answer the interpretability quizzes for all three methods."""
        self._check_fitted()
        if self.quizzes:
            return self.quizzes
        seed = self._pool.next_seed()
        representations = {
            "kmeans": centroid_representation(
                "kmeans", self.dataset.data, self.method_labels["kmeans"]
            ),
            "kshape": centroid_representation(
                "kshape", self.dataset.data, self.method_labels["kshape"]
            ),
            "kgraph": graphoid_representation(self.kgraph),
        }
        for method, reps in representations.items():
            self.quizzes[method] = build_quiz(
                self.dataset,
                method,
                self.method_labels[method],
                reps,
                n_questions=n_questions,
                random_state=seed,  # same questions for every method, as in the demo
            )
        self.quiz_scores = score_methods(
            self.quizzes,
            n_users=n_users,
            random_state=self._pool.next_seed(),
        )
        return self.quizzes

    def summary(self) -> Dict[str, object]:
        """Session-level summary (used by the dashboard header and tests)."""
        self._check_fitted()
        from repro.metrics.clustering import adjusted_rand_index

        return {
            "dataset": self.dataset.summary(),
            "n_clusters": self.n_clusters,
            "ari": {
                method: adjusted_rand_index(self.dataset.labels, labels)
                for method, labels in self.method_labels.items()
            },
            "optimal_length": self.kgraph.optimal_length_,
            "quiz_scores": dict(self.quiz_scores),
        }
