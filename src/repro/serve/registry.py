"""Model registry: a disk store of artifacts with an in-memory LRU cache.

Artifacts are shelved as ``root/<dataset>/<model_id>/`` directories in the
format of :mod:`repro.serve.artifacts`.  Model ids are free-form; when none
is given, ``publish`` assigns sequential versions ``v1``, ``v2``, ... per
dataset.  ``fetch`` keeps the most recently used fitted models deserialised
in a bounded LRU cache so a serving process does not re-read hundreds of
megabytes of arrays on every request, and exposes hit/miss/eviction
counters for capacity tuning.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ArtifactError, ModelNotFoundError, ValidationError
from repro.serve.artifacts import (
    ARRAYS_FILE,
    GRAPHS_FILE,
    load_model,
    read_manifest,
    save_model,
)

_VERSION_PATTERN = re.compile(r"^v(\d+)$")
_SAFE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_name(value: str, kind: str) -> str:
    """Reject identifiers that would escape the registry root on disk."""
    if not isinstance(value, str) or not _SAFE_NAME.match(value):
        raise ValidationError(
            f"{kind} must match [A-Za-z0-9][A-Za-z0-9._-]* (got {value!r})"
        )
    return value


@dataclass(frozen=True)
class ModelRecord:
    """Registry listing entry: where an artifact lives and what it holds."""

    dataset: str
    model_id: str
    path: Path
    created_unix: float
    n_series: int
    n_clusters: int
    optimal_length: int
    library_version: str
    estimator: str = "kgraph"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable row for ``GET /models`` and the CLI."""
        return {
            "dataset": self.dataset,
            "model_id": self.model_id,
            "path": str(self.path),
            "created_unix": self.created_unix,
            "n_series": self.n_series,
            "n_clusters": self.n_clusters,
            "optimal_length": self.optimal_length,
            "library_version": self.library_version,
            "estimator": self.estimator,
        }


def _record_from_manifest(
    dataset: str, model_id: str, path: Path, manifest: Dict[str, object]
) -> ModelRecord:
    fitted = manifest.get("fitted", {})
    return ModelRecord(
        dataset=dataset,
        model_id=model_id,
        path=path,
        created_unix=float(manifest.get("created_unix", 0.0)),
        n_series=int(fitted.get("n_series", 0)),
        n_clusters=int(fitted.get("n_clusters", 0)),
        optimal_length=int(fitted.get("optimal_length", 0)),
        library_version=str(manifest.get("library_version", "")),
        # Absent in v1/v2 manifests, which are k-Graph by definition.
        estimator=str(manifest.get("estimator", "kgraph")),
    )


class ModelRegistry:
    """Disk-backed registry of fitted models with a bounded LRU cache.

    Parameters
    ----------
    root:
        Registry root directory (created on first publish).
    cache_size:
        Maximum number of deserialised models kept in memory; the least
        recently fetched model is evicted when the bound is exceeded.
    """

    def __init__(self, root: Union[str, Path], *, cache_size: int = 4) -> None:
        if int(cache_size) < 1:
            raise ValidationError(f"cache_size must be >= 1, got {cache_size}")
        self.root = Path(root)
        self.cache_size = int(cache_size)
        self._cache: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # publishing
    # ------------------------------------------------------------------ #
    def model_path(self, dataset: str, model_id: str) -> Path:
        """Directory an artifact of ``(dataset, model_id)`` lives in."""
        return self.root / _check_name(dataset, "dataset") / _check_name(model_id, "model_id")

    def next_model_id(self, dataset: str) -> str:
        """The next sequential version id (``v1``, ``v2``, ...) for ``dataset``.

        Counts every ``vN``-shaped directory — including in-flight
        reservations that have no manifest yet — so concurrent publishers
        never collide on an id.
        """
        dataset_dir = self.root / _check_name(dataset, "dataset")
        existing = []
        if dataset_dir.is_dir():
            for entry in dataset_dir.iterdir():
                match = _VERSION_PATTERN.match(entry.name)
                if match:
                    existing.append(int(match.group(1)))
        return f"v{max(existing, default=0) + 1}"

    def _reserve(self, dataset: str, model_id: Optional[str]) -> Tuple[str, Path]:
        """Allocate a model id and create its directory as a reservation.

        Must be called under the registry lock; the empty directory blocks
        other publishers from taking the same id while the (slow) artifact
        write happens outside the lock.
        """
        if model_id is None:
            model_id = self.next_model_id(dataset)
        path = self.model_path(dataset, model_id)
        try:
            path.mkdir(parents=True, exist_ok=False)
        except FileExistsError as exc:
            # mkdir is the atomic claim — it also loses cleanly to another
            # *process* publishing the same id (the lock only covers threads).
            raise ArtifactError(
                f"model {dataset}/{model_id} already exists in the registry; "
                "publish under a new model_id or delete the old artifact first"
            ) from exc
        return model_id, path

    def publish(
        self,
        model,
        dataset: str,
        *,
        model_id: Optional[str] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> ModelRecord:
        """Save a fitted estimator into the registry and return its record.

        Only the id allocation runs under the registry lock; the (slow)
        artifact write must not stall concurrent fetches or ``cache_stats``.
        The caller's live object is deliberately NOT cached: they may refit
        it later, and the cache must only ever serve what the on-disk
        artifact holds.
        """
        with self._lock:
            model_id, path = self._reserve(dataset, model_id)
        try:
            save_model(model, path, dataset=dataset, metadata=metadata)
        except BaseException:
            shutil.rmtree(path, ignore_errors=True)
            raise
        return _record_from_manifest(dataset, model_id, path, read_manifest(path))

    def import_artifact(
        self,
        artifact_dir: Union[str, Path],
        *,
        dataset: Optional[str] = None,
        model_id: Optional[str] = None,
    ) -> ModelRecord:
        """Copy an externally produced artifact directory into the registry.

        The artifact is validated (manifest format + schema version) before
        anything is copied.  ``dataset`` defaults to the name recorded in the
        artifact's manifest.
        """
        artifact_dir = Path(artifact_dir)
        manifest = read_manifest(artifact_dir)
        for required in (ARRAYS_FILE, GRAPHS_FILE):
            if not (artifact_dir / required).exists():
                raise ArtifactError(
                    f"artifact {artifact_dir} is incomplete: missing {required}; "
                    "refusing to import it"
                )
        if dataset is None:
            dataset = manifest.get("dataset")
            if not dataset:
                raise ArtifactError(
                    f"artifact {artifact_dir} records no dataset name; pass dataset= "
                    "explicitly to import it"
                )
        with self._lock:
            model_id, target = self._reserve(dataset, model_id)
        try:
            # Payloads first, manifest last (atomically): the manifest is the
            # commit marker, so a crash mid-import leaves an unlisted
            # directory, never a listed-but-incomplete model.  The manifest is
            # also where a dataset override is recorded, keeping the stored
            # copy consistent with where the model is shelved.
            shutil.copytree(
                artifact_dir,
                target,
                dirs_exist_ok=True,
                ignore=shutil.ignore_patterns("manifest.json*"),
            )
            manifest = {**manifest, "dataset": dataset}
            manifest_tmp = target / "manifest.json.tmp"
            with manifest_tmp.open("w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            os.replace(manifest_tmp, target / "manifest.json")
        except BaseException:
            shutil.rmtree(target, ignore_errors=True)
            raise
        return _record_from_manifest(dataset, model_id, target, manifest)

    # ------------------------------------------------------------------ #
    # listing
    # ------------------------------------------------------------------ #
    def _model_ids(self, dataset: str) -> List[str]:
        dataset_dir = self.root / _check_name(dataset, "dataset")
        if not dataset_dir.is_dir():
            return []
        def order(model_id: str):
            # vN ids sort numerically (v2 < v10); free-form ids follow,
            # lexicographically — matching latest_model_id's notion of newest.
            match = _VERSION_PATTERN.match(model_id)
            if match:
                return (0, int(match.group(1)), model_id)
            return (1, 0, model_id)

        return sorted(
            (
                entry.name
                for entry in dataset_dir.iterdir()
                if _SAFE_NAME.match(entry.name) and (entry / "manifest.json").exists()
            ),
            key=order,
        )

    def datasets(self) -> List[str]:
        """Dataset names with at least one published model.

        Stray directories that could never have been published (wrong name
        shape, e.g. ``__pycache__`` or ``lost+found``) are skipped, not
        rejected — the registry root may be shared with other tooling.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and _SAFE_NAME.match(entry.name) and self._model_ids(entry.name)
        )

    def list_models(self, dataset: Optional[str] = None) -> List[ModelRecord]:
        """Records of every published model (optionally for one dataset).

        A model whose manifest cannot be read (corrupt, mid-write by another
        process) is skipped rather than failing the whole listing — one bad
        artifact must not hide every healthy model from ``GET /models``.
        """
        names = [dataset] if dataset is not None else self.datasets()
        records: List[ModelRecord] = []
        for name in names:
            for model_id in self._model_ids(name):
                path = self.model_path(name, model_id)
                try:
                    manifest = read_manifest(path)
                except ArtifactError:
                    continue
                records.append(_record_from_manifest(name, model_id, path, manifest))
        return records

    def count_models(self, dataset: Optional[str] = None) -> int:
        """Number of published models, without reading any manifest.

        Unlike :meth:`list_models` this only walks the directory layout
        (one pass, no per-dataset re-walk), so it is cheap enough for
        liveness probes.
        """
        if dataset is not None:
            names = [dataset]
        elif self.root.is_dir():
            names = [
                entry.name
                for entry in self.root.iterdir()
                if entry.is_dir() and _SAFE_NAME.match(entry.name)
            ]
        else:
            names = []
        return sum(len(self._model_ids(name)) for name in names)

    def latest_model_id(self, dataset: str) -> str:
        """Newest model id of ``dataset`` (highest ``vN``, else newest on disk)."""
        model_ids = self._model_ids(dataset)
        if not model_ids:
            raise ModelNotFoundError(
                f"registry at {self.root} has no models for dataset {dataset!r}"
            )
        versioned = [
            (int(match.group(1)), model_id)
            for model_id in model_ids
            if (match := _VERSION_PATTERN.match(model_id))
        ]
        if versioned:
            return max(versioned)[1]
        # Non-vN ids fall back to creation time; skip unreadable manifests the
        # same way list_models does — one corrupt artifact must not take the
        # dataset down.
        timestamped = []
        for candidate in model_ids:
            try:
                manifest = read_manifest(self.model_path(dataset, candidate))
            except ArtifactError:
                continue
            timestamped.append((float(manifest.get("created_unix", 0.0)), candidate))
        if not timestamped:
            raise ArtifactError(
                f"no readable model manifest for dataset {dataset!r} at {self.root}"
            )
        return max(timestamped)[1]

    def describe(self, dataset: str, model_id: Optional[str] = None) -> Dict[str, object]:
        """Record + full manifest of one model (``model_id=None`` = latest)."""
        if model_id is None:
            model_id = self.latest_model_id(dataset)
        path = self.model_path(dataset, model_id)
        # No manifest = not published (possibly an in-flight reservation) —
        # the same "manifest is the commit marker" rule _model_ids applies.
        if not (path / "manifest.json").exists():
            raise ModelNotFoundError(f"model {dataset}/{model_id} is not in the registry")
        manifest = read_manifest(path)
        record = _record_from_manifest(dataset, model_id, path, manifest)
        return {**record.to_dict(), "manifest": manifest}

    # ------------------------------------------------------------------ #
    # fetching (LRU-cached)
    # ------------------------------------------------------------------ #
    def fetch(self, dataset: str, model_id: Optional[str] = None):
        """Load a fitted model (any estimator), serving repeats from the cache.

        Deserialisation of a cold artifact runs *outside* the registry lock
        — a slow multi-hundred-MB load must not stall ``cache_stats`` (the
        /healthz path) or concurrent fetches of other models.  Two threads
        racing on the same cold model may both load it; the first insert
        wins and is what both return.
        """
        if model_id is None:
            model_id = self.latest_model_id(dataset)
        key = (dataset, model_id)
        with self._lock:
            if key in self._cache:
                self._hits += 1
                self._cache.move_to_end(key)
                return self._cache[key]
            self._misses += 1
        path = self.model_path(dataset, model_id)
        # Commit-marker rule: a directory without manifest.json (in-flight or
        # crashed publish) is not a published model.
        if not (path / "manifest.json").exists():
            raise ModelNotFoundError(
                f"model {dataset}/{model_id} is not in the registry at {self.root}"
            )
        model = load_model(path)
        with self._lock:
            if key in self._cache:
                # A concurrent fetch won the race; serve its instance so every
                # caller shares one model object.
                self._cache.move_to_end(key)
                return self._cache[key]
            self._cache_put(key, model)
        return model

    def _cache_put(self, key: Tuple[str, str], model) -> None:
        self._cache[key] = model
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self._evictions += 1

    def cache_stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters plus the currently cached keys."""
        with self._lock:
            return {
                "size": len(self._cache),
                "capacity": self.cache_size,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "cached": [f"{dataset}/{model_id}" for dataset, model_id in self._cache],
            }
