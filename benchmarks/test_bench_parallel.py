"""E11 — Parallel execution backends: serial vs thread vs process.

The k-Graph pipeline builds M independent per-length graphs and the
benchmark frame sweeps a methods x datasets x runs grid; both fan out
through :mod:`repro.parallel`.  This experiment times the same multi-length
``KGraph.fit`` and the same small campaign under every backend, checks that
the results stay bit-identical, and records the speedups together with the
machine's CPU count (the speedup is only expected to materialise on
multi-core hardware; on a single-core machine the parallel backends simply
must not regress results).

Results are persisted as JSON under ``benchmarks/results/`` so speedups can
be compared across machines.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from bench_utils import RESULTS_DIR, format_table, full_mode, report
from repro.benchmark.runner import BenchmarkRunner
from repro.core.kgraph import KGraph
from repro.datasets.catalogue import DatasetCatalogue, DatasetSpec
from repro.datasets.synthetic import make_cylinder_bell_funnel, make_trend_classes, make_two_patterns

N_JOBS = 4
BACKENDS = ("serial", "thread", "process")

if full_mode():
    FIT_N_SERIES, FIT_LENGTH, FIT_N_LENGTHS = 60, 256, 8
    CAMPAIGN_METHODS = ["kmeans", "gmm", "featts_like", "som"]
else:
    FIT_N_SERIES, FIT_LENGTH, FIT_N_LENGTHS = 32, 128, 4
    CAMPAIGN_METHODS = ["kmeans", "gmm", "featts_like"]


def _campaign_catalogue() -> DatasetCatalogue:
    """Two picklable datasets so the process backend can run the grid."""
    catalogue = DatasetCatalogue()
    for name, generator, dataset_type, n_classes in (
        ("bench_trend", make_trend_classes, "synthetic-trend", 2),
        ("bench_patterns", make_two_patterns, "synthetic-shape", 4),
    ):
        catalogue.register(
            DatasetSpec(
                name=name,
                generator=generator,
                dataset_type=dataset_type,
                n_series=20,
                length=64,
                n_classes=n_classes,
                default_kwargs={"n_series": 20, "length": 64},
            )
        )
    return catalogue


def _time_kgraph(backend: str):
    dataset = make_cylinder_bell_funnel(
        n_series=FIT_N_SERIES, length=FIT_LENGTH, noise=0.2, random_state=0
    )
    model = KGraph(
        n_clusters=3,
        n_lengths=FIT_N_LENGTHS,
        random_state=0,
        backend=backend,
        n_jobs=N_JOBS,
    )
    start = time.perf_counter()
    labels = model.fit_predict(dataset.data)
    return time.perf_counter() - start, labels, model.optimal_length_


def _time_campaign(backend: str):
    runner = BenchmarkRunner(
        CAMPAIGN_METHODS,
        catalogue=_campaign_catalogue(),
        n_runs=2,
        random_state=0,
        backend=backend,
        n_jobs=N_JOBS,
    )
    start = time.perf_counter()
    results = runner.run()
    signature = [
        (r.method, r.dataset, tuple(sorted(r.measures.items()))) for r in results
    ]
    return time.perf_counter() - start, signature


def _run_parallel_experiment():
    fit_rows, campaign_rows = [], []
    fit_reference = campaign_reference = None
    for backend in BACKENDS:
        seconds, labels, optimal_length = _time_kgraph(backend)
        if fit_reference is None:
            fit_reference = (labels, optimal_length)
        else:
            assert np.array_equal(labels, fit_reference[0]), backend
            assert optimal_length == fit_reference[1], backend
        fit_rows.append({"workload": "kgraph_fit", "backend": backend, "seconds": seconds})

        seconds, signature = _time_campaign(backend)
        if campaign_reference is None:
            campaign_reference = signature
        else:
            assert signature == campaign_reference, backend
        campaign_rows.append({"workload": "campaign", "backend": backend, "seconds": seconds})
    return fit_rows + campaign_rows


@pytest.mark.benchmark(group="E11-parallel-backends")
def test_bench_parallel_backends(benchmark):
    rows = benchmark.pedantic(_run_parallel_experiment, rounds=1, iterations=1)

    serial = {row["workload"]: row["seconds"] for row in rows if row["backend"] == "serial"}
    for row in rows:
        row["speedup_vs_serial"] = serial[row["workload"]] / max(row["seconds"], 1e-9)

    cpu_count = os.cpu_count() or 1
    payload = {
        "experiment": "E11-parallel-backends",
        "cpu_count": cpu_count,
        "n_jobs": N_JOBS,
        "full_mode": full_mode(),
        "kgraph_fit": {
            "n_series": FIT_N_SERIES,
            "length": FIT_LENGTH,
            "n_lengths": FIT_N_LENGTHS,
        },
        "campaign": {"methods": CAMPAIGN_METHODS, "n_runs": 2, "n_datasets": 2},
        "rows": rows,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "parallel_backends.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )

    table = format_table(rows, ["workload", "backend", "seconds", "speedup_vs_serial"])
    best = max(row["speedup_vs_serial"] for row in rows if row["backend"] != "serial")
    summary = (
        f"{table}\n\ncpu_count={cpu_count}, n_jobs={N_JOBS}.  Results are "
        "bit-identical across backends (asserted); parallel speedup requires "
        "multi-core hardware — on a 4+-core machine the per-length KGraph fan-out "
        "or the campaign grid is expected to reach >=1.5x."
    )
    report("E11: Parallel execution backends (serial vs thread vs process)", summary)
    benchmark.extra_info["cpu_count"] = cpu_count
    benchmark.extra_info["best_parallel_speedup"] = round(best, 2)

    for workload in ("kgraph_fit", "campaign"):
        assert serial[workload] > 0
    if full_mode() and cpu_count >= 4:
        # The acceptance bar: >=1.5x for at least one workload with n_jobs=4
        # on a 4+-core machine.  Only asserted in full mode — wall-clock
        # assertions flake on loaded/virtualized CI runners, so the default
        # suite records the speedups without gating on them.
        assert best >= 1.5, f"expected >=1.5x speedup on {cpu_count} cores, got {best:.2f}x"
