"""Shared utilities: validation, containers, windowing, normalisation, RNG.

These helpers are the lowest layer of the library; every other subpackage
builds on them.  They deliberately contain no domain logic beyond generic
time series handling so they stay easy to test in isolation.
"""

from repro.utils.validation import (
    check_array,
    check_labels,
    check_positive_int,
    check_probability,
    check_random_state,
    check_time_series_dataset,
)
from repro.utils.containers import TimeSeriesDataset
from repro.utils.normalization import (
    minmax_scale,
    paa,
    resample_length,
    znormalize,
    znormalize_dataset,
)
from repro.utils.windows import (
    pad_series,
    sliding_window_matrix,
    subsequence_count,
    subsequences_of_dataset,
)
from repro.utils.rng import SeedSequencePool, spawn_rng
from repro.utils.timing import Stopwatch, format_duration

__all__ = [
    "TimeSeriesDataset",
    "SeedSequencePool",
    "Stopwatch",
    "check_array",
    "check_labels",
    "check_positive_int",
    "check_probability",
    "check_random_state",
    "check_time_series_dataset",
    "format_duration",
    "minmax_scale",
    "paa",
    "pad_series",
    "resample_length",
    "sliding_window_matrix",
    "spawn_rng",
    "subsequence_count",
    "subsequences_of_dataset",
    "znormalize",
    "znormalize_dataset",
]
