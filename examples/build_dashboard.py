"""Scenario 3 / system overview: build the full Graphint dashboard as HTML.

Run with::

    python examples/build_dashboard.py [--dataset NAME] [--output FILE]

Fits the session (k-Graph + baselines + quizzes), optionally runs a small
benchmark campaign to populate the Benchmark frame, and writes a single
self-contained HTML file with all five frames (clustering comparison,
benchmark, graph, interpretability test, under the hood).  Open the file in
any browser — every plot is embedded SVG, no external assets needed.
"""

from __future__ import annotations

import argparse

from repro.benchmark import BenchmarkRunner
from repro.datasets import generate_dataset
from repro.viz.dashboard import build_dashboard
from repro.viz.session import GraphintSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cylinder_bell_funnel")
    parser.add_argument("--output", default="graphint_dashboard.html")
    parser.add_argument(
        "--with-benchmark",
        action="store_true",
        help="also run a small benchmark campaign to fill the Benchmark frame",
    )
    args = parser.parse_args()

    dataset = generate_dataset(args.dataset, random_state=0)
    print(f"fitting session on {dataset.name} ...")
    session = GraphintSession(dataset, random_state=0)

    benchmark_results = None
    if args.with_benchmark:
        print("running a small benchmark campaign for the Benchmark frame ...")
        runner = BenchmarkRunner(
            ["kmeans", "kshape", "featts_like", "gmm", "kgraph"], random_state=0
        )
        benchmark_results = runner.run(
            ["cylinder_bell_funnel", "two_patterns", "trend_classes"]
        )

    page = build_dashboard(
        session,
        benchmark_results=benchmark_results,
        output_path=args.output,
    )
    print(f"dashboard written to {args.output} ({len(page) / 1024:.0f} KiB)")
    print("open it in a browser, or run `graphint serve` for the interactive version.")


if __name__ == "__main__":
    main()
