"""JSON-safe wire encoding for :class:`~repro.parallel.backends.JobOutcome`.

The distributed worker service (:mod:`repro.distributed`) returns job
outcomes over HTTP, so outcomes need a representation that is

* **JSON + binary-safe** — ndarrays and bytes travel base64-encoded with
  their dtype/shape, so a ``float64`` result decodes bit-identical on the
  coordinator;
* **exception-preserving** — the PR 7 fault-tolerance machinery keys on
  exception *types* (:class:`~repro.parallel.retry.JobTimeoutError`,
  :class:`~repro.parallel.retry.WorkerCrashError`, ...), so a captured
  exception must round-trip as the same class whenever that class is in
  the allowlist below, and degrade to :class:`RemoteJobError` otherwise
  (never to a silent string);
* **self-describing** — every value is a tagged node
  (``{"t": "ndarray", ...}``), so nested containers reconstruct with list
  vs tuple identity preserved.

Values the tagged codec does not model natively (library dataclasses like
``BenchmarkResult``, graphs, generators) fall back to pickled bytes.  That
is a deliberate trust boundary: the worker protocol ships *data* between
cooperating processes of one deployment — like the on-disk stage cache —
while *callables* are never shipped at all (workers only execute functions
from their registered dispatch table, see
:mod:`repro.distributed.registry`).
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Any, Dict, Optional

import numpy as np

from repro.exceptions import ParallelExecutionError


class RemoteJobError(ParallelExecutionError):
    """A remote failure whose exception class is not in the wire allowlist.

    Carries the original ``"ExcType: message"`` text, so nothing is lost —
    only the concrete class, which the coordinator could not have imported
    safely anyway.
    """


#: Lazily-built ``{class name: class}`` allowlist for exception decoding.
_EXCEPTION_TYPES: Optional[Dict[str, type]] = None


def _exception_types() -> Dict[str, type]:
    """Exception classes a decoded outcome may reconstruct.

    Builtins plus every :class:`~repro.exceptions.ReproError` subclass the
    library defines (including the retry/chaos signal types) — imported
    lazily so this module stays cheap and cycle-free to import.
    """
    global _EXCEPTION_TYPES
    if _EXCEPTION_TYPES is not None:
        return _EXCEPTION_TYPES
    registry: Dict[str, type] = {}

    import builtins

    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            registry[name] = obj

    def _scan(module) -> None:
        for name in dir(module):
            obj = getattr(module, name)
            if isinstance(obj, type) and issubclass(obj, BaseException):
                registry[name] = obj

    import repro.exceptions

    _scan(repro.exceptions)
    import repro.parallel.retry

    _scan(repro.parallel.retry)
    try:
        import repro.parallel.chaos

        _scan(repro.parallel.chaos)
    except Exception:  # noqa: BLE001 - chaos is optional for decoding
        pass
    registry["RemoteJobError"] = RemoteJobError
    _EXCEPTION_TYPES = registry
    return registry


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def encode_value(value: Any) -> Dict[str, Any]:
    """Encode one value as a tagged, JSON-serialisable node."""
    if value is None:
        return {"t": "none"}
    if isinstance(value, (bool, int, float, str)) and not isinstance(
        value, np.generic
    ):
        return {"t": "json", "v": value}
    if isinstance(value, np.ndarray) and value.dtype != object:
        contiguous = np.ascontiguousarray(value)
        return {
            "t": "ndarray",
            "dtype": contiguous.dtype.str,
            "shape": [int(size) for size in contiguous.shape],
            "data": _b64(contiguous.tobytes()),
        }
    if isinstance(value, np.generic):
        return {"t": "npscalar", "dtype": value.dtype.str, "data": _b64(value.tobytes())}
    if isinstance(value, bytes):
        return {"t": "bytes", "data": _b64(value)}
    if isinstance(value, (list, tuple)) and type(value) in (list, tuple):
        return {
            "t": type(value).__name__,
            "items": [encode_value(item) for item in value],
        }
    if isinstance(value, dict) and type(value) is dict and all(
        isinstance(key, str) for key in value
    ):
        return {
            "t": "dict",
            "items": {key: encode_value(item) for key, item in value.items()},
        }
    # Library dataclasses, graphs, generators, namedtuples, non-str-keyed
    # dicts: pickled bytes (data-only trust boundary, see module docs).
    return {"t": "pickle", "data": _b64(pickle.dumps(value, protocol=4))}


def decode_value(node: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_value`."""
    tag = node.get("t")
    if tag == "none":
        return None
    if tag == "json":
        return node["v"]
    if tag == "ndarray":
        raw = _unb64(node["data"])
        array = np.frombuffer(raw, dtype=np.dtype(node["dtype"]))
        # frombuffer views the (read-only) bytes; copy to a writable array.
        return array.reshape([int(size) for size in node["shape"]]).copy()
    if tag == "npscalar":
        return np.frombuffer(_unb64(node["data"]), dtype=np.dtype(node["dtype"]))[0]
    if tag == "bytes":
        return _unb64(node["data"])
    if tag == "list":
        return [decode_value(item) for item in node["items"]]
    if tag == "tuple":
        return tuple(decode_value(item) for item in node["items"])
    if tag == "dict":
        return {key: decode_value(item) for key, item in node["items"].items()}
    if tag == "pickle":
        return pickle.loads(_unb64(node["data"]))
    raise ValueError(f"unknown wire tag {tag!r}")


def encode_exception(exc: BaseException) -> Dict[str, str]:
    """Encode a captured exception as ``{"type", "message"}``."""
    return {"type": type(exc).__name__, "message": str(exc)}


def decode_exception(node: Dict[str, str]) -> BaseException:
    """Reconstruct an exception, degrading to :class:`RemoteJobError`.

    Only classes in the allowlist are instantiated; anything else (or a
    class whose constructor rejects a single message argument) becomes a
    :class:`RemoteJobError` carrying the original type and message.
    """
    type_name = str(node.get("type", "Exception"))
    message = str(node.get("message", ""))
    cls = _exception_types().get(type_name)
    if cls is not None:
        try:
            return cls(message)
        except Exception:  # noqa: BLE001 - exotic constructor signature
            pass
    return RemoteJobError(f"{type_name}: {message}")


def encode_outcome(outcome) -> Dict[str, Any]:
    """Encode one :class:`~repro.parallel.backends.JobOutcome` for the wire."""
    return {
        "index": int(outcome.index),
        "value": encode_value(outcome.value),
        "error": outcome.error,
        "exception": (
            None if outcome.exception is None else encode_exception(outcome.exception)
        ),
        "traceback": outcome.traceback,
        "duration_seconds": float(outcome.duration_seconds),
        "attempts": int(outcome.attempts),
        "retried": bool(outcome.retried),
        "timed_out": bool(outcome.timed_out),
    }


def decode_outcome(node: Dict[str, Any]):
    """Inverse of :func:`encode_outcome` (returns a ``JobOutcome``)."""
    from repro.parallel.backends import JobOutcome

    error = node.get("error")
    exception = None
    if node.get("exception") is not None:
        exception = decode_exception(node["exception"])
    elif error is not None:
        # A failed outcome must stay unwrap-able even when the worker could
        # not encode the exception itself.
        exception = RemoteJobError(str(error))
    return JobOutcome(
        index=int(node["index"]),
        value=decode_value(node.get("value", {"t": "none"})),
        error=error,
        exception=exception,
        traceback=node.get("traceback"),
        duration_seconds=float(node.get("duration_seconds", 0.0)),
        attempts=int(node.get("attempts", 1)),
        retried=bool(node.get("retried", False)),
        timed_out=bool(node.get("timed_out", False)),
    )


def json_dumps_outcomes(outcomes) -> str:
    """Serialise a sequence of outcomes as one JSON document."""
    return json.dumps({"outcomes": [encode_outcome(outcome) for outcome in outcomes]})
