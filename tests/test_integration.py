"""End-to-end integration tests crossing every layer of the library.

These mirror the demonstration scenarios of the paper: run the full pipeline
on a catalogue dataset, verify the headline behaviours (k-Graph accuracy and
interpretability vs the baselines), and exercise the full dashboard path that
the Graphint GUI takes.
"""

import numpy as np
import pytest

from repro.baselines.registry import run_method
from repro.datasets.synthetic import make_cylinder_bell_funnel, make_shapelet_classes
from repro.metrics.clustering import adjusted_rand_index
from repro.viz.dashboard import build_dashboard
from repro.viz.session import GraphintSession


@pytest.fixture(scope="module")
def scenario_dataset():
    return make_cylinder_bell_funnel(n_series=24, length=64, noise=0.25, random_state=7)


@pytest.fixture(scope="module")
def scenario_session(scenario_dataset):
    session = GraphintSession(scenario_dataset, n_lengths=3, random_state=7).fit()
    session.build_quizzes(n_users=3)
    return session


class TestHeadlineBehaviour:
    def test_kgraph_beats_raw_kmeans_on_shape_data(self, scenario_session):
        """E1/E7 shape check: on event-at-random-onset data, k-Graph must beat raw k-Means."""
        summary = scenario_session.summary()
        assert summary["ari"]["kgraph"] > summary["ari"]["kmeans"]
        assert summary["ari"]["kgraph"] > 0.5

    def test_quiz_scores_reported_for_all_methods(self, scenario_session):
        """E4 shape check: quiz produces a score per method; k-Graph representation is competitive."""
        scores = scenario_session.quiz_scores
        assert set(scores) == {"kgraph", "kmeans", "kshape"}
        assert scores["kgraph"] >= 1.0 / 3  # at least chance level
        assert scores["kgraph"] >= max(scores.values()) - 0.4

    def test_interpretable_length_selected(self, scenario_session):
        """E5 shape check: the selected length maximises W_c * W_e."""
        model = scenario_session.kgraph
        best = max(model.length_scores_, key=lambda s: s.combined)
        assert model.optimal_length_ == best.length or best.combined == pytest.approx(
            next(s for s in model.length_scores_ if s.length == model.optimal_length_).combined
        )

    def test_graphoids_exist_at_some_threshold(self, scenario_session):
        """E3 shape check: lowering gamma always eventually yields >= 1 node per cluster."""
        model = scenario_session.kgraph
        found = False
        for gamma in (0.8, 0.6, 0.4):
            graphoids = model.recompute_graphoids(0.0, gamma)["gamma"]
            if all(not g.is_empty() for g in graphoids.values()):
                found = True
                break
        assert found


class TestCrossLayerConsistency:
    def test_registry_kgraph_matches_direct_estimator(self, scenario_dataset):
        from repro.core.kgraph import KGraph

        direct = KGraph(n_clusters=3, random_state=5).fit_predict(scenario_dataset.data)
        via_registry = run_method("kgraph", scenario_dataset, random_state=5)
        assert adjusted_rand_index(direct, via_registry) == pytest.approx(1.0)

    def test_dashboard_renders_for_fitted_session(self, scenario_session, tmp_path):
        page = build_dashboard(scenario_session, output_path=tmp_path / "dashboard.html")
        # The page embeds every frame and at least one SVG per frame.
        assert page.count("<svg") >= 8
        assert (tmp_path / "dashboard.html").stat().st_size > 10_000

    def test_node_statistics_agree_with_graphoids(self, scenario_session):
        model = scenario_session.kgraph
        statistics = model.node_statistics()
        gamma = 0.5
        graphoids = model.recompute_graphoids(0.0, gamma)["gamma"]
        for cluster, graphoid in graphoids.items():
            for node in graphoid.nodes:
                assert statistics[node]["exclusivity"][cluster] >= gamma


class TestRobustness:
    def test_pipeline_handles_small_and_noisy_data(self):
        dataset = make_shapelet_classes(n_series=12, length=48, noise=0.8, random_state=0)
        session = GraphintSession(dataset, n_lengths=2, random_state=0).fit()
        labels = session.method_labels["kgraph"]
        assert labels.shape == (12,)
        assert np.unique(labels).size == dataset.n_classes

    def test_reproducibility_across_sessions(self, scenario_dataset):
        a = GraphintSession(scenario_dataset, n_lengths=2, random_state=11).fit()
        b = GraphintSession(scenario_dataset, n_lengths=2, random_state=11).fit()
        for method in a.method_labels:
            assert adjusted_rand_index(a.method_labels[method], b.method_labels[method]) == pytest.approx(1.0)
