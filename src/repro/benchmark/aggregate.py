"""Filtering and aggregation of benchmark results.

These are the operations behind the Benchmark frame's widgets: filter the
result population by dataset attributes, then summarise each method's score
distribution as a box plot and a mean-rank table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.benchmark.runner import BenchmarkResult
from repro.exceptions import BenchmarkError


def results_to_rows(results: Sequence[BenchmarkResult]) -> List[Dict[str, object]]:
    """Flatten results to plain dictionaries (CSV/JSON friendly)."""
    return [result.to_dict() for result in results]


def filter_results(
    results: Sequence[BenchmarkResult],
    *,
    dataset_type: Optional[str] = None,
    min_length: Optional[int] = None,
    max_length: Optional[int] = None,
    min_classes: Optional[int] = None,
    max_classes: Optional[int] = None,
    min_series: Optional[int] = None,
    max_series: Optional[int] = None,
    methods: Optional[Sequence[str]] = None,
    include_failed: bool = False,
) -> List[BenchmarkResult]:
    """Filter along the Benchmark-frame dimensions."""
    method_set = {m.lower() for m in methods} if methods is not None else None
    kept: List[BenchmarkResult] = []
    for result in results:
        if not include_failed and result.failed:
            continue
        if dataset_type is not None and result.dataset_type != dataset_type:
            continue
        if min_length is not None and result.length < min_length:
            continue
        if max_length is not None and result.length > max_length:
            continue
        if min_classes is not None and result.n_classes < min_classes:
            continue
        if max_classes is not None and result.n_classes > max_classes:
            continue
        if min_series is not None and result.n_series < min_series:
            continue
        if max_series is not None and result.n_series > max_series:
            continue
        if method_set is not None and result.method.lower() not in method_set:
            continue
        kept.append(result)
    return kept


def _scores_by_method(
    results: Sequence[BenchmarkResult], measure: str
) -> Dict[str, List[float]]:
    scores: Dict[str, List[float]] = {}
    for result in results:
        if result.failed or measure not in result.measures:
            continue
        scores.setdefault(result.method, []).append(float(result.measures[measure]))
    if not scores:
        raise BenchmarkError(f"no successful results carry the measure {measure!r}")
    return scores


def boxplot_summary(
    results: Sequence[BenchmarkResult], measure: str = "ari"
) -> Dict[str, Dict[str, float]]:
    """Box-plot statistics (min, q1, median, q3, max, mean, n) per method."""
    summary: Dict[str, Dict[str, float]] = {}
    for method, values in _scores_by_method(results, measure).items():
        array = np.asarray(values, dtype=float)
        summary[method] = {
            "min": float(array.min()),
            "q1": float(np.percentile(array, 25)),
            "median": float(np.median(array)),
            "q3": float(np.percentile(array, 75)),
            "max": float(array.max()),
            "mean": float(array.mean()),
            "n": int(array.size),
        }
    return summary


def summarize_by_method(
    results: Sequence[BenchmarkResult], measures: Sequence[str] = ("ari", "ri", "nmi", "ami")
) -> Dict[str, Dict[str, float]]:
    """Mean of each measure per method (one row per method)."""
    summary: Dict[str, Dict[str, float]] = {}
    for measure in measures:
        for method, values in _scores_by_method(results, measure).items():
            summary.setdefault(method, {})[measure] = float(np.mean(values))
    # Attach mean runtime as an extra column.
    runtimes: Dict[str, List[float]] = {}
    for result in results:
        if not result.failed:
            runtimes.setdefault(result.method, []).append(result.runtime_seconds)
    for method, values in runtimes.items():
        summary.setdefault(method, {})["runtime_seconds"] = float(np.mean(values))
    return summary


def mean_rank_table(
    results: Sequence[BenchmarkResult], measure: str = "ari"
) -> Dict[str, float]:
    """Average rank of each method across datasets (1 = best).

    Methods missing on a dataset are ignored for that dataset; ties share the
    average of the tied ranks, as in standard critical-difference analyses.
    """
    per_dataset: Dict[str, Dict[str, float]] = {}
    for result in results:
        if result.failed or measure not in result.measures:
            continue
        per_dataset.setdefault(result.dataset, {})[result.method] = float(
            result.measures[measure]
        )
    if not per_dataset:
        raise BenchmarkError(f"no successful results carry the measure {measure!r}")

    rank_sums: Dict[str, float] = {}
    rank_counts: Dict[str, int] = {}
    for scores in per_dataset.values():
        methods = list(scores)
        values = np.array([scores[m] for m in methods])
        # Higher scores get better (smaller) ranks; ties share average ranks.
        order = np.argsort(-values)
        ranks = np.empty(len(methods), dtype=float)
        position = 0
        while position < len(methods):
            tied_end = position
            while (
                tied_end + 1 < len(methods)
                and values[order[tied_end + 1]] == values[order[position]]
            ):
                tied_end += 1
            average_rank = (position + tied_end) / 2.0 + 1.0
            for tied_position in range(position, tied_end + 1):
                ranks[order[tied_position]] = average_rank
            position = tied_end + 1
        for method, rank in zip(methods, ranks):
            rank_sums[method] = rank_sums.get(method, 0.0) + float(rank)
            rank_counts[method] = rank_counts.get(method, 0) + 1
    return {
        method: rank_sums[method] / rank_counts[method] for method in sorted(rank_sums)
    }
