"""Unit tests for the TimeSeriesGraph structure."""

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError, ValidationError
from repro.graph.structure import TimeSeriesGraph


@pytest.fixture()
def toy_graph() -> TimeSeriesGraph:
    """A small hand-built graph over 3 series and 3 nodes.

    Series 0 visits 0 -> 1 -> 0, series 1 visits 1 -> 2, series 2 visits 2 -> 2.
    """
    graph = TimeSeriesGraph(length=4, n_series=3)
    for node in range(3):
        graph.add_node(node, (float(node), 0.0), np.full(4, float(node)))
    # series 0
    graph.record_visit(0, 0)
    graph.record_visit(1, 0)
    graph.record_transition(0, 1, 0)
    graph.record_visit(0, 0)
    graph.record_transition(1, 0, 0)
    # series 1
    graph.record_visit(1, 1)
    graph.record_visit(2, 1)
    graph.record_transition(1, 2, 1)
    # series 2
    graph.record_visit(2, 2)
    graph.record_visit(2, 2)
    graph.record_transition(2, 2, 2)
    return graph


class TestConstruction:
    def test_counts(self, toy_graph):
        assert toy_graph.n_nodes == 3
        assert toy_graph.n_edges == 4
        assert toy_graph.nodes() == [0, 1, 2]
        assert toy_graph.edges() == [(0, 1), (1, 0), (1, 2), (2, 2)]

    def test_duplicate_node_rejected(self, toy_graph):
        with pytest.raises(GraphConstructionError):
            toy_graph.add_node(0, (0.0, 0.0), np.zeros(4))

    def test_bad_position_rejected(self):
        graph = TimeSeriesGraph(length=4, n_series=1)
        with pytest.raises(ValidationError):
            graph.add_node(0, (0.0, 0.0, 0.0), np.zeros(4))

    def test_unknown_node_visit_rejected(self, toy_graph):
        with pytest.raises(GraphConstructionError):
            toy_graph.record_visit(9, 0)
        with pytest.raises(GraphConstructionError):
            toy_graph.record_transition(0, 9, 0)


class TestAccessors:
    def test_weights(self, toy_graph):
        assert toy_graph.node_weight(0) == 2
        assert toy_graph.node_weight(2) == 3
        assert toy_graph.edge_weight((2, 2)) == 1
        assert toy_graph.edge_weight((0, 2)) == 0

    def test_series_through(self, toy_graph):
        assert toy_graph.series_through_node(0) == [0]
        assert toy_graph.series_through_node(1) == [0, 1]
        assert toy_graph.series_through_node(2) == [1, 2]
        assert toy_graph.series_through_edge((1, 2)) == [1]

    def test_visit_counts(self, toy_graph):
        assert toy_graph.node_visit_counts(0) == {0: 2}
        assert toy_graph.edge_visit_counts((2, 2)) == {2: 1}

    def test_trajectory(self, toy_graph):
        assert toy_graph.trajectory(0) == [0, 1, 0]
        assert toy_graph.trajectory(2) == [2, 2]
        assert toy_graph.trajectory(99) == []

    def test_node_pattern_copy(self, toy_graph):
        pattern = toy_graph.node_pattern(1)
        pattern[:] = -1
        assert np.all(toy_graph.node_pattern(1) == 1.0)


class TestMatrices:
    def test_node_feature_matrix_counts(self, toy_graph):
        matrix = toy_graph.node_feature_matrix(normalize=False)
        assert matrix.shape == (3, 3)
        assert matrix[0].tolist() == [2.0, 1.0, 0.0]
        assert matrix[2].tolist() == [0.0, 0.0, 2.0]

    def test_node_feature_matrix_normalized_rows_sum_to_one(self, toy_graph):
        matrix = toy_graph.node_feature_matrix(normalize=True)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_edge_feature_matrix(self, toy_graph):
        matrix = toy_graph.edge_feature_matrix(normalize=False)
        assert matrix.shape == (3, 4)
        assert matrix.sum() == 4.0  # four recorded transitions

    def test_combined_feature_matrix(self, toy_graph):
        combined = toy_graph.feature_matrix()
        assert combined.shape == (3, 7)

    def test_adjacency_matrix(self, toy_graph):
        adjacency = toy_graph.adjacency_matrix()
        assert adjacency.shape == (3, 3)
        assert adjacency[1, 2] == 1
        assert adjacency[2, 2] == 1
        assert adjacency.sum() == 4


class TestInterop:
    def test_to_networkx(self, toy_graph):
        nx_graph = toy_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.nodes[1]["n_series"] == 2
        assert nx_graph.edges[(1, 2)]["weight"] == 1

    def test_summary_serialisable(self, toy_graph):
        import json

        text = json.dumps(toy_graph.summary())
        assert '"n_nodes": 3' in text

    def test_payload_round_trip_is_lossless(self, toy_graph):
        import json

        import numpy as np

        from repro.graph.structure import TimeSeriesGraph

        payload = json.loads(json.dumps(toy_graph.to_payload()))  # via real JSON
        patterns = np.vstack([toy_graph.node_pattern(n) for n in toy_graph.nodes()])
        restored = TimeSeriesGraph.from_payload(payload, patterns)
        assert restored.nodes() == toy_graph.nodes()
        assert restored.edges() == toy_graph.edges()
        assert restored.node_positions() == toy_graph.node_positions()
        assert np.array_equal(restored.feature_matrix(), toy_graph.feature_matrix())
        assert np.array_equal(restored.adjacency_matrix(), toy_graph.adjacency_matrix())
        for node in toy_graph.nodes():
            assert restored.node_visit_counts(node) == toy_graph.node_visit_counts(node)
        for series in range(toy_graph.n_series):
            assert restored.trajectory(series) == toy_graph.trajectory(series)

    def test_from_payload_rejects_pattern_mismatch(self, toy_graph):
        import numpy as np
        import pytest as _pytest

        from repro.exceptions import ValidationError
        from repro.graph.structure import TimeSeriesGraph

        payload = toy_graph.to_payload()
        with _pytest.raises(ValidationError, match="pattern matrix"):
            TimeSeriesGraph.from_payload(payload, np.zeros((1, toy_graph.length)))
