"""Online inference engine: coalesces concurrent predicts into micro-batches.

Serving a fitted k-Graph model is read-only and embarrassingly batchable:
the per-request work is dominated by fixed preparation (pattern/centroid
extraction, input validation, dispatch overhead), not by the per-series
maths.  The :class:`InferenceEngine` therefore

* prepares the model's :class:`~repro.core.kgraph.PredictionState` once,
* queues concurrent single-series requests and flushes them as one batch
  when either ``max_batch_size`` requests are pending (**flush-on-size**) or
  the oldest pending request has waited ``flush_interval`` seconds
  (**flush-on-timeout**), and
* dispatches each micro-batch through an
  :class:`~repro.parallel.ExecutionBackend` in chunks, so a thread backend
  spreads the batch across workers while the serial backend stays a valid
  zero-dependency default.

Each series is processed independently (see
:func:`repro.core.kgraph.predict_with_state`), so a prediction never depends
on which batch it travelled in — online results are bit-identical to an
offline ``model.predict`` call.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.api.protocol import ServableState
from repro.exceptions import (
    ServiceError,
    ServiceFaultError,
    ServiceOverloadError,
    ValidationError,
)
from repro.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    resolve_backend,
)
from repro.utils.validation import check_array


@dataclass(frozen=True)
class _PredictChunkJob:
    """Picklable payload: one chunk of a micro-batch for one backend worker."""

    state: ServableState
    array: np.ndarray


def _predict_chunk(job: _PredictChunkJob) -> np.ndarray:
    """Module-level job function so process backends can run chunks too.

    Dispatches through the state's own ``predict_batch`` (the
    :class:`~repro.api.protocol.ServableState` contract), so one engine
    serves k-Graph's graph-profile states and baseline centroid states
    alike.
    """
    return job.state.predict_batch(job.array)


@dataclass
class _PendingRequest:
    """One queued single-series request and its completion signal."""

    series: np.ndarray
    enqueued_monotonic: float
    done: threading.Event = field(default_factory=threading.Event)
    prediction: Optional[int] = None
    error: Optional[BaseException] = None


class InferenceEngine:
    """Micro-batching predict server around one fitted, servable estimator.

    Parameters
    ----------
    model:
        The fitted model to serve — any estimator implementing
        :class:`~repro.api.protocol.SupportsServing` (k-Graph, or a
        baseline estimator with its centroid state).
    max_batch_size:
        Flush as soon as this many requests are pending.
    flush_interval:
        Maximum seconds the oldest pending request may wait before the
        current (smaller) batch is flushed; this bounds the latency a
        lonely request pays for batching.
    backend, n_jobs:
        Execution backend micro-batches are dispatched through; chunks of
        ``dispatch_chunk_size`` series become individual backend jobs.
    dispatch_chunk_size:
        Series per backend job.  The default (8) lets a thread backend
        overlap chunks of one batch; a serial backend simply runs the
        chunks in order.
    """

    def __init__(
        self,
        model,
        *,
        max_batch_size: int = 32,
        flush_interval: float = 0.005,
        backend: Union[None, str, ExecutionBackend] = None,
        n_jobs: Optional[int] = None,
        dispatch_chunk_size: int = 8,
    ) -> None:
        if int(max_batch_size) < 1:
            raise ValidationError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if float(flush_interval) < 0:
            raise ValidationError(
                f"flush_interval must be >= 0, got {flush_interval}"
            )
        if int(dispatch_chunk_size) < 1:
            raise ValidationError(
                f"dispatch_chunk_size must be >= 1, got {dispatch_chunk_size}"
            )
        self.model = model
        self.state: ServableState = model.prediction_state()
        self.max_batch_size = int(max_batch_size)
        self.flush_interval = float(flush_interval)
        self.dispatch_chunk_size = int(dispatch_chunk_size)
        self._backend = resolve_backend(backend, n_jobs)
        self._owns_backend = self._backend is not backend

        self._queue: List[_PendingRequest] = []
        self._condition = threading.Condition()
        self._closing = False
        self._close_started = False

        # stats (guarded by the condition's lock)
        self._n_requests = 0
        self._n_predictions = 0
        self._n_batches = 0
        self._flush_reasons: Dict[str, int] = {"size": 0, "timeout": 0, "drain": 0}
        self._max_batch_seen = 0

        self._worker = threading.Thread(
            target=self._run, name="repro-serve-engine", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    # client API
    # ------------------------------------------------------------------ #
    def _validate_series(self, series) -> np.ndarray:
        array = check_array(series, name="series", ndim=1)
        # Delegate the length/NaN policy to the model's canonical predict
        # validation so the online and offline paths can never drift.
        self.model.validate_predict_input(array.reshape(1, -1))
        return array

    def predict(self, series, *, timeout: Optional[float] = None) -> int:
        """Predict the cluster of one series, waiting for its micro-batch.

        Validation happens in the caller's thread so malformed requests fail
        fast and never poison a batch.  ``timeout`` bounds the total wait
        (queueing + dispatch); ``None`` waits indefinitely.
        """
        array = self._validate_series(series)
        request = _PendingRequest(series=array, enqueued_monotonic=time.monotonic())
        with self._condition:
            if self._closing:
                raise ServiceError("cannot predict: the inference engine is closed")
            self._queue.append(request)
            self._n_requests += 1
            self._condition.notify_all()
        if not request.done.wait(timeout):
            self._abandon(request)
            # Overload, not a fault: the engine is alive but could not serve
            # within the caller's budget — retriable after backing off.
            raise ServiceOverloadError(
                f"prediction timed out after {timeout} s (queue backlog or a "
                "stalled backend)",
                retry_after=max(1.0, float(timeout or 0.0)),
            )
        if request.error is not None:
            raise request.error
        return int(request.prediction)

    def _abandon(self, request: _PendingRequest) -> None:
        """Drop a timed-out request that is still queued.

        Without this, timeouts shed no load: the backend would still compute
        every abandoned request later.  A request already taken into a batch
        cannot be recalled — its result is simply discarded.
        """
        with self._condition:
            try:
                self._queue.remove(request)
            except ValueError:
                pass

    def predict_many(self, data, *, timeout: Optional[float] = None) -> np.ndarray:
        """Predict several series, enqueueing each as its own request.

        The series ride whatever micro-batches the flusher forms (they may
        coalesce with other clients' requests); results come back in input
        order.
        """
        array = self.model.validate_predict_input(data)
        requests = []
        with self._condition:
            if self._closing:
                raise ServiceError("cannot predict: the inference engine is closed")
            now = time.monotonic()
            for series in array:
                request = _PendingRequest(series=series, enqueued_monotonic=now)
                self._queue.append(request)
                requests.append(request)
            self._n_requests += len(requests)
            self._condition.notify_all()
        # One deadline for the whole call — per-request waits would multiply
        # the caller's budget by the number of series.
        deadline = None if timeout is None else time.monotonic() + timeout
        predictions = np.empty(len(requests), dtype=int)
        for index, request in enumerate(requests):
            remaining = None if deadline is None else deadline - time.monotonic()
            if not request.done.wait(remaining):
                for abandoned in requests[index:]:
                    self._abandon(abandoned)
                raise ServiceOverloadError(
                    f"prediction timed out after {timeout} s",
                    retry_after=max(1.0, float(timeout or 0.0)),
                )
            if request.error is not None:
                # The whole call fails; still-queued siblings would only
                # compute discarded results — shed them like the timeout path.
                for abandoned in requests[index + 1 :]:
                    self._abandon(abandoned)
                raise request.error
            predictions[index] = int(request.prediction)
        return predictions

    # ------------------------------------------------------------------ #
    # flusher
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closing:
                    self._condition.wait()
                if not self._queue:
                    # Closing with an empty queue: nothing left to drain.
                    return
                if self._closing:
                    reason = "drain"
                else:
                    deadline = self._queue[0].enqueued_monotonic + self.flush_interval
                    while (
                        len(self._queue) < self.max_batch_size and not self._closing
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._condition.wait(remaining)
                    if len(self._queue) >= self.max_batch_size:
                        reason = "size"
                    elif self._closing:
                        reason = "drain"
                    else:
                        reason = "timeout"
                batch = self._queue[: self.max_batch_size]
                del self._queue[: self.max_batch_size]
                if not batch:
                    # Every queued request was abandoned (client timeout)
                    # during the flush wait; don't record a phantom batch.
                    continue
                self._n_batches += 1
                self._flush_reasons[reason] += 1
                self._max_batch_seen = max(self._max_batch_seen, len(batch))
            try:
                self._dispatch(batch)
            except Exception as exc:  # noqa: BLE001 - the flusher must survive
                # Nothing below _dispatch should raise, but if something does
                # (MemoryError while stacking, a broken custom backend), the
                # flusher thread must not die silently with clients blocked:
                # fail this batch's requests and keep serving.
                self._fail_requests(
                    [request for request in batch if not request.done.is_set()], exc
                )

    @staticmethod
    def _fail_requests(requests: List[_PendingRequest], exc: BaseException) -> None:
        """Resolve ``requests`` with a ServiceFaultError wrapping ``exc``.

        Dispatch failures are real serving-side faults (dead workers,
        broken pools) — distinct from overload, so the HTTP layer answers
        500 here and reserves 503 + ``Retry-After`` for load shedding.
        Each request gets its own instance: the waiters re-raise from
        different threads and must not share mutable traceback state.
        """
        for request in requests:
            error = ServiceFaultError(
                f"micro-batch dispatch failed: {type(exc).__name__}: {exc}"
            )
            error.__cause__ = exc
            request.error = error
            request.done.set()

    def _dispatch(self, batch: List[_PendingRequest]) -> None:
        """Run one micro-batch through the backend and resolve its requests.

        Requests are grouped by series length (clients may legitimately send
        different — individually valid — lengths), each group is stacked and
        split into chunk jobs.
        """
        groups: Dict[int, List[_PendingRequest]] = {}
        for request in batch:
            groups.setdefault(int(request.series.shape[0]), []).append(request)
        # Each chunk job carries the full PredictionState; across a process
        # boundary that pickling cost scales with the model, not the chunk,
        # so process backends get one job per group instead of per chunk.
        # Serial backends get one job per group too: predict_with_state is
        # batch-vectorised (one windows matrix per call), so splitting a
        # group into chunks only helps when chunks can overlap on workers.
        chunk_size = self.dispatch_chunk_size
        if isinstance(self._backend, (ProcessBackend, SerialBackend)):
            chunk_size = max(chunk_size, self.max_batch_size)
        for requests in groups.values():
            try:
                array = np.vstack([request.series for request in requests])
                jobs = [
                    _PredictChunkJob(
                        state=self.state,
                        array=array[start : start + chunk_size],
                    )
                    for start in range(0, array.shape[0], chunk_size)
                ]
                outcomes = self._backend.map_jobs(_predict_chunk, jobs)
                predictions = np.concatenate(
                    [outcome.unwrap() for outcome in outcomes]
                )
            except Exception as exc:  # noqa: BLE001 - fail the requests, not the loop
                self._fail_requests(requests, exc)
                continue
            with self._condition:
                self._n_predictions += int(predictions.shape[0])
            for request, prediction in zip(requests, predictions):
                request.prediction = int(prediction)
                request.done.set()

    # ------------------------------------------------------------------ #
    # lifecycle / stats
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drain pending requests, stop the flusher, release the backend.

        Safe to call repeatedly and from several threads: only the first
        caller shuts down the backend, later callers just wait for the
        worker to finish draining.
        """
        with self._condition:
            first = not self._close_started
            self._close_started = True
            self._closing = True
            self._condition.notify_all()
        self._worker.join()
        if first and self._owns_backend:
            self._backend.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has begun; a closing engine rejects requests.

        True as soon as shutdown starts (queue drain may still be running) —
        callers holding a reference use this to detect an engine that was
        evicted-and-closed underneath them.
        """
        return self._closing

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        """Batching counters: request/batch totals and flush reasons."""
        with self._condition:
            mean_batch = (
                self._n_predictions / self._n_batches if self._n_batches else 0.0
            )
            return {
                "requests": self._n_requests,
                "predictions": self._n_predictions,
                "batches": self._n_batches,
                "mean_batch_size": mean_batch,
                "max_batch_size_seen": self._max_batch_seen,
                "flush_reasons": dict(self._flush_reasons),
                "pending": len(self._queue),
                "max_batch_size": self.max_batch_size,
                "flush_interval": self.flush_interval,
                "backend": self._backend.name,
            }
