"""Execution backends: serial, thread-pool and process-pool job mapping.

The whole library fans work out through one tiny contract —
:meth:`ExecutionBackend.map_jobs` — so every fan-out site (per-length graph
embedding, benchmark campaigns, graphoid extraction, ...) is parallelised the
same way and new backends only have to implement one method.

Design rules every backend must follow:

* **Ordered results.** ``map_jobs(fn, jobs)`` returns one
  :class:`JobOutcome` per job, in the order the jobs were submitted,
  regardless of completion order.
* **Per-job error capture.** A raising job never takes down its siblings:
  the exception is captured on the outcome (``error`` / ``exception``) and
  the caller decides whether to re-raise (:meth:`JobOutcome.unwrap`) or to
  degrade gracefully (the benchmark runner records the error on the result).
* **Determinism is the caller's job.** Backends never draw randomness; any
  stochastic job must receive its own pre-spawned seed/generator so results
  are bit-identical across backends (see :func:`repro.utils.rng.spawn_rng`).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback as traceback_module
from abc import ABC, abstractmethod
from contextlib import contextmanager
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ParallelExecutionError, ValidationError

OnResult = Optional[Callable[["JobOutcome"], None]]


@dataclass
class JobOutcome:
    """The result (or captured failure) of one submitted job.

    Attributes
    ----------
    index:
        Position of the job in the submitted sequence; ``map_jobs`` returns
        outcomes sorted by this index.
    value:
        The job function's return value (``None`` when the job failed).
    error:
        ``"ExcType: message"`` when the job raised, else ``None``.
    exception:
        The captured exception object, when one is available in this
        process (always for serial/thread, usually for process backends).
    traceback:
        Formatted traceback of the failure, for diagnostics.
    duration_seconds:
        Wall-clock seconds the job spent executing in its worker.
    """

    index: int
    value: Any = None
    error: Optional[str] = None
    exception: Optional[BaseException] = field(default=None, repr=False)
    traceback: Optional[str] = field(default=None, repr=False)
    duration_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the job completed without raising."""
        return self.error is None

    def unwrap(self) -> Any:
        """Return ``value``, re-raising the captured exception on failure."""
        if self.error is None:
            return self.value
        if self.exception is not None:
            raise self.exception
        raise ParallelExecutionError(f"job {self.index} failed: {self.error}")


def pickled_nbytes(obj: Any) -> int:
    """Bytes ``obj`` occupies on the wire when shipped to a process pool.

    Measured with protocol 5 and an out-of-band ``buffer_callback``, so the
    raw pages of large NumPy arrays are *counted* (``memoryview.nbytes``)
    but never copied — the accounting costs metadata pickling only, which
    is why the process backends can afford it on every dispatch.  Objects
    that cannot be pickled measure as 0: the submission itself will surface
    the real error, the accounting must not.
    """
    buffers: List[pickle.PickleBuffer] = []
    try:
        data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    except Exception:  # noqa: BLE001 - unpicklable payloads fail at submit time
        return 0
    return len(data) + sum(buffer.raw().nbytes for buffer in buffers)


def _execute_one(fn: Callable[[Any], Any], index: int, job: Any) -> JobOutcome:
    """Run one job, capturing any exception into the outcome."""
    start = time.perf_counter()
    try:
        value = fn(job)
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the contract
        # KeyboardInterrupt/SystemExit intentionally propagate: aborting the
        # whole fan-out must stay possible from the keyboard.
        return JobOutcome(
            index=index,
            error=f"{type(exc).__name__}: {exc}",
            exception=exc,
            traceback=traceback_module.format_exc(),
            duration_seconds=time.perf_counter() - start,
        )
    return JobOutcome(
        index=index, value=value, duration_seconds=time.perf_counter() - start
    )


def _execute_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[Tuple[int, Any]]
) -> List[JobOutcome]:
    """Run a chunk of (index, job) pairs serially inside one worker."""
    return [_execute_one(fn, index, job) for index, job in chunk]


class ExecutionBackend(ABC):
    """Maps a function over jobs, with ordered results and error capture."""

    name: str = "abstract"

    @abstractmethod
    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
    ) -> List[JobOutcome]:
        """Apply ``fn`` to every job and return ordered :class:`JobOutcome`\\ s.

        ``on_result`` is invoked once per outcome as soon as it is available:
        in submission order for :class:`SerialBackend`, in completion order
        for the parallel backends (callers needing strict streaming order
        should iterate the returned list instead).  Implementations MUST
        invoke ``on_result`` from the thread that called ``map_jobs`` —
        callers rely on this to keep their callbacks single-threaded.
        """

    def close(self) -> None:
        """Release any pooled workers (no-op for stateless backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @staticmethod
    def _collect(outcomes: List[Optional[JobOutcome]]) -> List[JobOutcome]:
        """Validate that every submitted job produced exactly one outcome.

        A lost job would silently desynchronise callers that group results
        positionally, so it fails loudly here instead.
        """
        missing = [index for index, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise ParallelExecutionError(
                f"backend lost the outcomes of jobs {missing}; every job must "
                "produce exactly one JobOutcome"
            )
        return outcomes  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Executes jobs one after another in the calling thread.

    This is the default everywhere: it adds no overhead, keeps tracebacks
    trivial, and — because jobs carry their own seeds — produces exactly the
    same results as the parallel backends.
    """

    name = "serial"

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
    ) -> List[JobOutcome]:
        outcomes: List[JobOutcome] = []
        for index, job in enumerate(jobs):
            outcome = _execute_one(fn, index, job)
            if on_result is not None:
                on_result(outcome)
            outcomes.append(outcome)
        return outcomes


class ThreadBackend(ExecutionBackend):
    """Executes jobs on a thread pool.

    Best for NumPy-heavy jobs (the BLAS/linalg kernels release the GIL) and
    for anything I/O-bound; jobs and results never cross a process boundary,
    so nothing needs to be picklable.
    """

    name = "thread"

    def __init__(self, n_workers: Optional[int] = None) -> None:
        if n_workers is not None and int(n_workers) < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = None if n_workers is None else int(n_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _executor(self) -> ThreadPoolExecutor:
        # The pool is created lazily and reused across map_jobs calls, so a
        # pipeline with several fan-outs (per-length fit, length scoring,
        # graphoid extraction) pays the startup cost once.  max_workers is an
        # upper bound: the executor starts threads on demand, so small
        # fan-outs never hold idle workers.  Creation is locked because a
        # shared backend instance may be driven from several threads (e.g.
        # the per-model inference engines of repro.serve).
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers or os.cpu_count() or 1
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
    ) -> List[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        pool = self._executor()
        futures = {
            pool.submit(_execute_one, fn, index, job): index
            for index, job in enumerate(jobs)
        }
        for future in as_completed(futures):
            outcome = future.result()
            outcomes[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)
        return self._collect(outcomes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(n_workers={self.n_workers})"


class ProcessBackend(ExecutionBackend):
    """Executes jobs on a process pool.

    Sidesteps the GIL entirely, at the cost of pickling: the job function
    must be a module-level callable and jobs/results must be picklable.
    ``chunk_size`` groups several jobs per worker task to amortise IPC
    overhead when jobs are small.
    """

    name = "process"

    def __init__(
        self, n_workers: Optional[int] = None, *, chunk_size: int = 1
    ) -> None:
        if n_workers is not None and int(n_workers) < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if int(chunk_size) < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.n_workers = None if n_workers is None else int(n_workers)
        self.chunk_size = int(chunk_size)
        #: Cumulative pickled payload bytes submitted across every
        #: ``map_jobs`` call (jobs only, not results) — callers snapshot it
        #: around a dispatch to attribute transfer volume per fan-out.
        self.bytes_shipped = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _executor(self) -> ProcessPoolExecutor:
        # Lazily created and reused across map_jobs calls: one pool startup
        # per backend instance, not per fan-out.  max_workers is an upper
        # bound — worker processes are forked/spawned on demand as jobs are
        # submitted, so small fan-outs never pay for idle workers; workers
        # snapshot the parent process at creation (fork) or re-import it
        # (spawn).  Creation is locked for multi-threaded callers (see
        # ThreadBackend._executor).
        with self._pool_lock:
            if self._pool is None:
                # Start the multiprocessing resource tracker *before* any
                # worker can fork: workers then inherit (fork) or are handed
                # (spawn) the coordinator's tracker, so shared-memory
                # registrations land in one shared set no matter which
                # process creates, attaches or unlinks a segment.  Without
                # this, a worker forked before the tracker exists spins up
                # its own and warns about segments the coordinator unlinks.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.ensure_running()
                except Exception:  # noqa: BLE001 - tracker is an optimisation
                    pass
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers or os.cpu_count() or 1
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
    ) -> List[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        self.bytes_shipped += sum(pickled_nbytes(job) for job in jobs)
        indexed = list(enumerate(jobs))
        chunks = [
            indexed[start : start + self.chunk_size]
            for start in range(0, len(indexed), self.chunk_size)
        ]
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        pool = self._executor()
        pool_broken = False
        try:
            futures = {
                pool.submit(_execute_chunk, fn, chunk): chunk for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    chunk_outcomes = future.result()
                except Exception as exc:  # noqa: BLE001 - pickling/worker loss
                    if isinstance(exc, BrokenProcessPool):
                        pool_broken = True
                    # The whole chunk failed before the per-job wrapper could
                    # run (unpicklable payload, killed worker, ...): record the
                    # failure on every job of the chunk instead of crashing.
                    chunk_outcomes = [
                        JobOutcome(
                            index=index,
                            error=f"{type(exc).__name__}: {exc}",
                            exception=exc,
                            traceback=traceback_module.format_exc(),
                        )
                        for index, _ in chunk
                    ]
                for outcome in chunk_outcomes:
                    outcomes[outcome.index] = outcome
                    if on_result is not None:
                        on_result(outcome)
        except BrokenProcessPool:
            # A dead pool cannot be reused; drop it so the next call starts
            # fresh, then surface the failure to the caller.
            self.close()
            raise
        if pool_broken:
            # Errors were captured per job, but the pool itself is dead —
            # discard it so the next map_jobs call starts a fresh one.
            self.close()
        return self._collect(outcomes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(n_workers={self.n_workers}, chunk_size={self.chunk_size})"


def _shared_memory_backend_class():
    # Imported lazily: shared.py imports ProcessBackend from this module.
    from repro.parallel.shared import SharedMemoryBackend

    return SharedMemoryBackend


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "threads": ThreadBackend,
    "process": ProcessBackend,
    "processes": ProcessBackend,
    "shared": _shared_memory_backend_class,
    "shared_memory": _shared_memory_backend_class,
}


def resolve_backend(
    backend: Union[None, str, ExecutionBackend] = None,
    n_jobs: Optional[int] = None,
) -> ExecutionBackend:
    """Normalise the ``backend=`` / ``n_jobs=`` pair every API accepts.

    * an :class:`ExecutionBackend` instance is returned unchanged —
      combining one with ``n_jobs`` is rejected, since the instance already
      fixed its own worker count;
    * ``"serial"`` / ``"thread"`` / ``"process"`` / ``"shared"`` name a
      backend class (``n_jobs`` sets its worker count; ``"serial"`` ignores
      it; ``"shared"`` is a process pool with zero-copy shared-memory
      dataset plans, see :class:`repro.parallel.shared.SharedMemoryBackend`);
    * ``backend=None`` with ``n_jobs`` > 1 selects :class:`ThreadBackend`;
    * everything else (the default) is :class:`SerialBackend`.
    """
    if isinstance(backend, ExecutionBackend):
        if n_jobs is not None:
            raise ValidationError(
                "n_jobs cannot be combined with an ExecutionBackend instance; "
                "configure the worker count on the instance instead"
            )
        return backend
    if n_jobs is not None and int(n_jobs) < 1:
        raise ValidationError(f"n_jobs must be >= 1, got {n_jobs}")
    if backend is None:
        if n_jobs is not None and int(n_jobs) > 1:
            return ThreadBackend(int(n_jobs))
        return SerialBackend()
    if isinstance(backend, str):
        key = backend.strip().lower()
        if key not in _BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r}; available: {sorted(set(_BACKENDS))}"
            )
        cls = _BACKENDS[key]
        if not isinstance(cls, type):
            cls = cls()  # lazy factory (see _shared_memory_backend_class)
        if cls is SerialBackend:
            return SerialBackend()
        return cls(n_jobs)
    raise ValidationError(
        f"backend must be None, a name, or an ExecutionBackend, got {type(backend).__name__}"
    )


@contextmanager
def backend_scope(
    backend: Union[None, str, ExecutionBackend] = None,
    n_jobs: Optional[int] = None,
):
    """Resolve a backend for the duration of one pipeline run.

    Backends created here (from ``None`` or a name) hold pooled workers that
    are released on exit; a caller-supplied :class:`ExecutionBackend`
    instance is passed through untouched and stays open, since its lifetime
    belongs to the caller.
    """
    resolved = resolve_backend(backend, n_jobs)
    owned = resolved is not backend
    try:
        yield resolved
    finally:
        if owned:
            resolved.close()
