"""Tests for the zero-copy shared-memory dataset plans (repro.parallel.shared)."""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.kgraph import KGraph
from repro.datasets import generate_dataset
from repro.exceptions import ValidationError
from repro.parallel import (
    ProcessBackend,
    SerialBackend,
    SharedArrayPlan,
    SharedMemoryBackend,
    resolve_backend,
    substitute_shared_arrays,
)
from repro.parallel.shared import _SharedArrayRef


@dataclass(frozen=True)
class _ArrayJob:
    array: np.ndarray
    offset: float


def _job_sum(job: _ArrayJob) -> float:
    return float(job.array.sum() + job.offset)


def _mutate_job(job: _ArrayJob) -> float:
    job.array[0, 0] = -1.0
    return 0.0


class TestSharedArrayPlan:
    def test_share_roundtrip_is_equal_and_readonly(self):
        rng = np.random.default_rng(0)
        array = rng.normal(size=(64, 32))
        with SharedArrayPlan() as plan:
            ref = plan.share(array)
            assert isinstance(ref, _SharedArrayRef)
            view = pickle.loads(pickle.dumps(ref))
            assert np.array_equal(view, array)
            assert not view.flags.writeable

    def test_identity_deduplication(self):
        array = np.zeros((16, 16))
        other = np.ones((16, 16))
        with SharedArrayPlan() as plan:
            first = plan.share(array)
            second = plan.share(array)
            third = plan.share(other)
            assert first is second
            assert third is not first
            assert plan.n_segments == 2

    def test_reference_pickle_is_tiny(self):
        array = np.zeros((512, 512))
        with SharedArrayPlan() as plan:
            ref = plan.share(array)
            assert len(pickle.dumps(ref)) < 1024
            assert len(pickle.dumps(array)) > array.nbytes

    def test_close_is_idempotent(self):
        plan = SharedArrayPlan()
        plan.share(np.zeros(128))
        plan.close()
        plan.close()
        assert plan.n_segments == 0


class TestSubstitution:
    def test_dataclass_fields(self):
        job = _ArrayJob(array=np.zeros((32, 32)), offset=2.0)
        with SharedArrayPlan() as plan:
            replaced = substitute_shared_arrays(job, plan, min_bytes=0)
            assert isinstance(replaced.array, _SharedArrayRef)
            assert replaced.offset == 2.0
            assert isinstance(job.array, np.ndarray)  # original untouched

    def test_small_arrays_pass_through(self):
        job = _ArrayJob(array=np.zeros((2, 2)), offset=0.0)
        with SharedArrayPlan() as plan:
            replaced = substitute_shared_arrays(job, plan, min_bytes=1 << 20)
            assert replaced is job
            assert plan.n_segments == 0

    def test_containers(self):
        array = np.zeros(64)
        with SharedArrayPlan() as plan:
            as_dict = substitute_shared_arrays({"a": array, "b": 1}, plan, 0)
            as_tuple = substitute_shared_arrays((array, "x"), plan, 0)
            as_list = substitute_shared_arrays([array], plan, 0)
            assert isinstance(as_dict["a"], _SharedArrayRef)
            assert as_dict["b"] == 1
            assert isinstance(as_tuple[0], _SharedArrayRef)
            assert as_tuple[1] == "x"
            assert isinstance(as_list[0], _SharedArrayRef)
            # The same array in all three containers used one segment.
            assert plan.n_segments == 1

    def test_non_array_jobs_untouched(self):
        with SharedArrayPlan() as plan:
            assert substitute_shared_arrays("job", plan, 0) == "job"
            assert substitute_shared_arrays(123, plan, 0) == 123
            assert plan.n_segments == 0


class TestSharedMemoryBackend:
    def test_resolve_by_name(self):
        backend = resolve_backend("shared", 2)
        try:
            assert isinstance(backend, SharedMemoryBackend)
            assert isinstance(backend, ProcessBackend)
            assert backend.n_workers == 2
        finally:
            backend.close()
        with resolve_backend("shared_memory") as alias:
            assert isinstance(alias, SharedMemoryBackend)

    def test_invalid_min_share_bytes(self):
        with pytest.raises(ValidationError):
            SharedMemoryBackend(min_share_bytes=-1)

    def test_results_match_serial(self):
        rng = np.random.default_rng(1)
        shared_array = rng.normal(size=(128, 64))
        jobs = [_ArrayJob(array=shared_array, offset=float(i)) for i in range(6)]
        expected = [outcome.value for outcome in SerialBackend().map_jobs(_job_sum, jobs)]
        with SharedMemoryBackend(2, min_share_bytes=0) as backend:
            outcomes = backend.map_jobs(_job_sum, jobs)
        assert [outcome.value for outcome in outcomes] == expected
        assert all(outcome.ok for outcome in outcomes)

    def test_worker_views_are_readonly(self):
        jobs = [_ArrayJob(array=np.zeros((64, 64)), offset=0.0)]
        with SharedMemoryBackend(1, min_share_bytes=0) as backend:
            outcomes = backend.map_jobs(_mutate_job, jobs)
        assert not outcomes[0].ok
        assert "read-only" in outcomes[0].error

    def test_empty_jobs(self):
        with SharedMemoryBackend(1) as backend:
            assert backend.map_jobs(_job_sum, []) == []

    def test_fallback_when_sharing_fails(self, monkeypatch):
        # If segment creation fails the backend must degrade to plain
        # pickling, not fail the fan-out.
        def broken_share(self, array):
            raise OSError("no shared memory")

        monkeypatch.setattr(SharedArrayPlan, "share", broken_share)
        jobs = [_ArrayJob(array=np.ones((64, 64)), offset=0.0)]
        with SharedMemoryBackend(1, min_share_bytes=0) as backend:
            outcomes = backend.map_jobs(_job_sum, jobs)
        assert outcomes[0].ok
        assert outcomes[0].value == 64 * 64


class TestKGraphIntegration:
    def test_fit_is_bit_identical_to_serial(self):
        dataset = generate_dataset("cylinder_bell_funnel", random_state=0)
        serial = KGraph(n_clusters=3, n_lengths=2, random_state=0).fit(dataset.data)
        with SharedMemoryBackend(2, min_share_bytes=0) as backend:
            shared = KGraph(
                n_clusters=3, n_lengths=2, random_state=0, backend=backend
            ).fit(dataset.data)
        assert np.array_equal(serial.labels_, shared.labels_)
        assert serial.optimal_length_ == shared.optimal_length_
        for length, graph in serial.result_.graphs.items():
            assert graph.to_payload() == shared.result_.graphs[length].to_payload()
