"""The attributed directed graph produced by the k-Graph embedding.

A :class:`TimeSeriesGraph` stores, for one subsequence length ℓ:

* the node set (each node is a recurring subsequence pattern with a 2-D
  position in the PCA projection and a representative pattern),
* the weighted directed edge set (transition counts between patterns),
* for every node and edge, the multiset of time series that traverse it
  (needed to compute representativity and exclusivity), and
* for every time series, its node trajectory (the sequence of nodes visited
  by its consecutive subsequences) — this is what the Graph frame highlights
  when the user selects a node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphConstructionError, ValidationError

Edge = Tuple[int, int]


@dataclass
class NodeInfo:
    """Static attributes of one graph node."""

    node_id: int
    position: Tuple[float, float]
    pattern: np.ndarray
    n_subsequences: int = 0


@dataclass
class TimeSeriesGraph:
    """Directed transition graph over subsequence patterns.

    Parameters
    ----------
    length:
        Subsequence length ℓ this graph was built for.
    n_series:
        Number of time series in the dataset the graph embeds.
    """

    length: int
    n_series: int
    _nodes: Dict[int, NodeInfo] = field(default_factory=dict)
    _edges: Dict[Edge, int] = field(default_factory=dict)
    _node_series: Dict[int, Dict[int, int]] = field(default_factory=dict)
    _edge_series: Dict[Edge, Dict[int, int]] = field(default_factory=dict)
    _trajectories: Dict[int, List[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: int, position: Sequence[float], pattern: np.ndarray) -> None:
        """Register a node with its 2-D position and representative pattern."""
        if node_id in self._nodes:
            raise GraphConstructionError(f"node {node_id} already exists")
        if len(position) != 2:
            raise ValidationError("node position must be 2-dimensional")
        self._nodes[node_id] = NodeInfo(
            node_id=node_id,
            position=(float(position[0]), float(position[1])),
            pattern=np.asarray(pattern, dtype=float),
        )
        self._node_series[node_id] = {}

    def record_visit(self, node_id: int, series_index: int) -> None:
        """Record that a subsequence of ``series_index`` falls in ``node_id``.

        Thin wrapper over the bulk :meth:`add_visits` API; prefer the bulk
        call when recording many visits at once.
        """
        self.add_visits([node_id], [series_index])

    def record_transition(self, source: int, target: int, series_index: int) -> None:
        """Record a transition edge ``source -> target`` for ``series_index``.

        Thin wrapper over the bulk :meth:`add_transitions` API; prefer the
        bulk call when recording many transitions at once.
        """
        if source not in self._nodes or target not in self._nodes:
            raise GraphConstructionError(f"unknown edge endpoint in ({source}, {target})")
        self.add_transitions([source], [target], [series_index])

    def add_visits(self, node_ids, series_indices) -> None:
        """Record many (node, series) visits in one vectorised call.

        ``node_ids`` and ``series_indices`` are equal-length integer arrays:
        element ``t`` records that a subsequence of series
        ``series_indices[t]`` falls in node ``node_ids[t]``.  Per-series
        trajectories are extended in input order, so passing a dataset's
        assignments grouped by series reproduces exactly what a loop of
        :meth:`record_visit` calls would build, at NumPy speed: counts are
        aggregated with ``np.bincount`` and only the distinct (node, series)
        combinations touch Python dictionaries.
        """
        nodes = np.asarray(node_ids, dtype=int).ravel()
        series = np.asarray(series_indices, dtype=int).ravel()
        if nodes.shape[0] != series.shape[0]:
            raise ValidationError(
                f"node_ids and series_indices must have equal length, got "
                f"{nodes.shape[0]} and {series.shape[0]}"
            )
        if nodes.size == 0:
            return
        if nodes.size == 1:
            # Scalar fast path: keeps record_visit at its original per-call
            # cost (no unique/bincount setup for a single element).
            node_id, series_id = int(nodes[0]), int(series[0])
            if node_id not in self._nodes:
                raise GraphConstructionError(f"unknown node {node_id}")
            bucket = self._node_series[node_id]
            bucket[series_id] = bucket.get(series_id, 0) + 1
            self._nodes[node_id].n_subsequences += 1
            self._trajectories.setdefault(series_id, []).append(node_id)
            return
        unique_nodes, node_inverse = np.unique(nodes, return_inverse=True)
        node_list = unique_nodes.tolist()
        for node_id in node_list:
            if node_id not in self._nodes:
                raise GraphConstructionError(f"unknown node {node_id}")
        unique_series, series_inverse = np.unique(series, return_inverse=True)
        series_list = unique_series.tolist()

        node_totals = np.bincount(node_inverse, minlength=unique_nodes.size)
        for position, node_id in enumerate(node_list):
            self._nodes[node_id].n_subsequences += int(node_totals[position])

        key = node_inverse * unique_series.size + series_inverse
        counts = np.bincount(key, minlength=unique_nodes.size * unique_series.size)
        buckets = [self._node_series[node_id] for node_id in node_list]
        occupied = np.flatnonzero(counts)
        for flat, count in zip(occupied.tolist(), counts[occupied].tolist()):
            bucket = buckets[flat // unique_series.size]
            series_id = series_list[flat % unique_series.size]
            bucket[series_id] = bucket.get(series_id, 0) + count

        order = np.argsort(series, kind="stable")
        boundaries = np.flatnonzero(np.diff(series[order])) + 1
        for group in np.split(order, boundaries):
            series_id = int(series[group[0]])
            self._trajectories.setdefault(series_id, []).extend(
                nodes[group].tolist()
            )

    def add_transitions(self, sources, targets, series_indices) -> None:
        """Record many directed transitions in one vectorised call.

        Element ``t`` records a traversal of edge
        ``sources[t] -> targets[t]`` by series ``series_indices[t]``.  Edge
        weights and per-edge series counts are aggregated with
        ``np.bincount``; only distinct (edge, series) combinations touch
        Python dictionaries, so recording a whole dataset's transitions is
        O(total + distinct) instead of one dictionary update per traversal.
        """
        src = np.asarray(sources, dtype=int).ravel()
        dst = np.asarray(targets, dtype=int).ravel()
        series = np.asarray(series_indices, dtype=int).ravel()
        if not (src.shape[0] == dst.shape[0] == series.shape[0]):
            raise ValidationError(
                f"sources, targets and series_indices must have equal length, "
                f"got {src.shape[0]}, {dst.shape[0]} and {series.shape[0]}"
            )
        if src.size == 0:
            return
        if src.size == 1:
            # Scalar fast path mirroring record_transition's original cost.
            source, target = int(src[0]), int(dst[0])
            series_id = int(series[0])
            if source not in self._nodes or target not in self._nodes:
                raise GraphConstructionError(
                    f"unknown edge endpoint in ({source}, {target})"
                )
            edge = (source, target)
            self._edges[edge] = self._edges.get(edge, 0) + 1
            bucket = self._edge_series.setdefault(edge, {})
            bucket[series_id] = bucket.get(series_id, 0) + 1
            return
        for node_id in np.unique(np.concatenate([src, dst])).tolist():
            if node_id not in self._nodes:
                raise GraphConstructionError(
                    f"unknown edge endpoint in ({node_id}, ...)"
                )
        # Encode (source, target) pairs as one integer so the distinct
        # edges come from a fast 1-D unique instead of np.unique(axis=0).
        base = int(min(src.min(), dst.min()))
        span = int(max(src.max(), dst.max())) - base + 1
        unique_keys, pair_inverse = np.unique(
            (src - base) * span + (dst - base), return_inverse=True
        )
        edge_list = [
            (int(key) // span + base, int(key) % span + base)
            for key in unique_keys.tolist()
        ]
        unique_series, series_inverse = np.unique(series, return_inverse=True)
        series_list = unique_series.tolist()

        edge_totals = np.bincount(pair_inverse, minlength=unique_keys.size)
        for position, edge in enumerate(edge_list):
            self._edges[edge] = self._edges.get(edge, 0) + int(edge_totals[position])

        key = pair_inverse * unique_series.size + series_inverse
        counts = np.bincount(key, minlength=unique_keys.size * unique_series.size)
        buckets = [self._edge_series.setdefault(edge, {}) for edge in edge_list]
        occupied = np.flatnonzero(counts)
        for flat, count in zip(occupied.tolist(), counts[occupied].tolist()):
            bucket = buckets[flat // unique_series.size]
            series_id = series_list[flat % unique_series.size]
            bucket[series_id] = bucket.get(series_id, 0) + count

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def n_edges(self) -> int:
        """Number of distinct directed edges."""
        return len(self._edges)

    def nodes(self) -> List[int]:
        """Sorted node identifiers."""
        return sorted(self._nodes)

    def edges(self) -> List[Edge]:
        """Sorted directed edges."""
        return sorted(self._edges)

    def node_info(self, node_id: int) -> NodeInfo:
        """Static attributes of ``node_id``."""
        if node_id not in self._nodes:
            raise GraphConstructionError(f"unknown node {node_id}")
        return self._nodes[node_id]

    def edge_weight(self, edge: Edge) -> int:
        """Total transition count of ``edge`` (0 when absent)."""
        return self._edges.get(tuple(edge), 0)

    def node_weight(self, node_id: int) -> int:
        """Total number of subsequences mapped to ``node_id``."""
        return self.node_info(node_id).n_subsequences

    def series_through_node(self, node_id: int) -> List[int]:
        """Indices of the time series that traverse ``node_id`` at least once."""
        if node_id not in self._nodes:
            raise GraphConstructionError(f"unknown node {node_id}")
        return sorted(self._node_series[node_id])

    def series_through_edge(self, edge: Edge) -> List[int]:
        """Indices of the time series that traverse ``edge`` at least once."""
        return sorted(self._edge_series.get(tuple(edge), {}))

    def node_visit_counts(self, node_id: int) -> Dict[int, int]:
        """Mapping series index -> number of subsequences of it in ``node_id``."""
        if node_id not in self._nodes:
            raise GraphConstructionError(f"unknown node {node_id}")
        return dict(self._node_series[node_id])

    def edge_visit_counts(self, edge: Edge) -> Dict[int, int]:
        """Mapping series index -> number of traversals of ``edge``."""
        return dict(self._edge_series.get(tuple(edge), {}))

    def trajectory(self, series_index: int) -> List[int]:
        """Node sequence visited by ``series_index`` (empty when unseen)."""
        return list(self._trajectories.get(series_index, []))

    def node_positions(self) -> Dict[int, Tuple[float, float]]:
        """Mapping node -> 2-D position from the embedding projection."""
        return {node_id: info.position for node_id, info in self._nodes.items()}

    def node_pattern(self, node_id: int) -> np.ndarray:
        """Representative (average) subsequence pattern of ``node_id``."""
        return self.node_info(node_id).pattern.copy()

    # ------------------------------------------------------------------ #
    # matrices used by the Graph Clustering step
    # ------------------------------------------------------------------ #
    def node_feature_matrix(self, normalize: bool = True) -> np.ndarray:
        """(n_series, n_nodes) matrix of node crossing counts.

        When ``normalize`` is true each row is divided by its sum so series of
        different lengths (or stride effects) are comparable.
        """
        nodes = self.nodes()
        index = {node_id: col for col, node_id in enumerate(nodes)}
        matrix = np.zeros((self.n_series, len(nodes)))
        for node_id, counts in self._node_series.items():
            for series_index, count in counts.items():
                matrix[series_index, index[node_id]] = count
        if normalize:
            sums = matrix.sum(axis=1, keepdims=True)
            sums = np.where(sums == 0, 1.0, sums)
            matrix = matrix / sums
        return matrix

    def edge_feature_matrix(self, normalize: bool = True) -> np.ndarray:
        """(n_series, n_edges) matrix of edge traversal counts."""
        edges = self.edges()
        index = {edge: col for col, edge in enumerate(edges)}
        matrix = np.zeros((self.n_series, len(edges)))
        for edge, counts in self._edge_series.items():
            for series_index, count in counts.items():
                matrix[series_index, index[edge]] = count
        if normalize:
            sums = matrix.sum(axis=1, keepdims=True)
            sums = np.where(sums == 0, 1.0, sums)
            matrix = matrix / sums
        return matrix

    def feature_matrix(self, normalize: bool = True) -> np.ndarray:
        """Concatenated node + edge feature matrix (the paper's F_{D,ℓ})."""
        return np.hstack(
            [self.node_feature_matrix(normalize), self.edge_feature_matrix(normalize)]
        )

    def adjacency_matrix(self) -> np.ndarray:
        """(n_nodes, n_nodes) weighted adjacency matrix in node-sorted order."""
        nodes = self.nodes()
        index = {node_id: i for i, node_id in enumerate(nodes)}
        matrix = np.zeros((len(nodes), len(nodes)))
        for (source, target), weight in self._edges.items():
            matrix[index[source], index[target]] = weight
        return matrix

    # ------------------------------------------------------------------ #
    # interop / summaries
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` with weights and attributes."""
        import networkx as nx

        graph = nx.DiGraph(length=self.length, n_series=self.n_series)
        for node_id, info in self._nodes.items():
            graph.add_node(
                node_id,
                position=info.position,
                weight=info.n_subsequences,
                n_series=len(self._node_series[node_id]),
            )
        for (source, target), weight in self._edges.items():
            graph.add_edge(source, target, weight=weight)
        return graph

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable summary for the Under-the-hood frame."""
        weights = [info.n_subsequences for info in self._nodes.values()]
        return {
            "length": self.length,
            "n_series": self.n_series,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "max_node_weight": int(max(weights)) if weights else 0,
            "mean_node_weight": float(np.mean(weights)) if weights else 0.0,
        }

    def __fingerprint_parts__(self) -> tuple:
        """Compact content representation for :mod:`repro.pipeline` hashing.

        Equal graphs (same nodes, patterns, edges, series multisets and
        trajectories) produce equal parts regardless of construction or
        dict insertion order: every mapping is flattened into a sorted
        integer/float array, so the stage-cache fingerprint is one pass
        over contiguous bytes instead of a Python-level recursion over
        thousands of dict entries.
        """
        node_ids = sorted(self._nodes)
        nodes = np.array(
            [
                (
                    node,
                    self._nodes[node].position[0],
                    self._nodes[node].position[1],
                    self._nodes[node].n_subsequences,
                )
                for node in node_ids
            ],
            dtype=float,
        ).reshape(-1, 4)
        patterns = (
            np.vstack([np.asarray(self._nodes[node].pattern, dtype=float) for node in node_ids])
            if node_ids
            else np.empty((0, self.length))
        )
        edges = np.array(
            sorted((source, target, weight) for (source, target), weight in self._edges.items()),
            dtype=np.int64,
        ).reshape(-1, 3)
        node_series = np.array(
            sorted(
                (node, series, count)
                for node, counts in self._node_series.items()
                for series, count in counts.items()
            ),
            dtype=np.int64,
        ).reshape(-1, 3)
        edge_series = np.array(
            sorted(
                (source, target, series, count)
                for (source, target), counts in self._edge_series.items()
                for series, count in counts.items()
            ),
            dtype=np.int64,
        ).reshape(-1, 4)
        trajectory_series = sorted(self._trajectories)
        trajectory_lengths = np.array(
            [len(self._trajectories[series]) for series in trajectory_series],
            dtype=np.int64,
        )
        trajectory_nodes = (
            np.concatenate(
                [
                    np.asarray(self._trajectories[series], dtype=np.int64)
                    for series in trajectory_series
                ]
            )
            if trajectory_series
            else np.empty(0, dtype=np.int64)
        )
        return (
            int(self.length),
            int(self.n_series),
            nodes,
            patterns,
            edges,
            node_series,
            edge_series,
            np.asarray(trajectory_series, dtype=np.int64),
            trajectory_lengths,
            trajectory_nodes,
        )

    # ------------------------------------------------------------------ #
    # lossless serialisation (model artifacts, see repro.serve.artifacts)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """The structural (non-array) part of the graph as a JSON payload.

        Node patterns are excluded — they are float matrices and travel in
        the artifact's ``.npz`` file instead, stacked in node-sorted order
        (the same order the ``nodes`` list uses here).  The inverse is
        :meth:`from_payload`.
        """
        return {
            "length": int(self.length),
            "n_series": int(self.n_series),
            "nodes": [
                {
                    "id": int(node_id),
                    "position": [float(info.position[0]), float(info.position[1])],
                    "n_subsequences": int(info.n_subsequences),
                }
                for node_id, info in sorted(self._nodes.items())
            ],
            "edges": [
                [int(source), int(target), int(weight)]
                for (source, target), weight in sorted(self._edges.items())
            ],
            "node_series": {
                str(node_id): {str(series): int(count) for series, count in counts.items()}
                for node_id, counts in self._node_series.items()
            },
            "edge_series": [
                [
                    int(source),
                    int(target),
                    {str(series): int(count) for series, count in counts.items()},
                ]
                for (source, target), counts in sorted(self._edge_series.items())
            ],
            "trajectories": {
                str(series): [int(node) for node in trajectory]
                for series, trajectory in self._trajectories.items()
            },
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, object], patterns: np.ndarray
    ) -> "TimeSeriesGraph":
        """Rebuild a graph from :meth:`to_payload` output + its pattern matrix.

        ``patterns`` rows must be in node-sorted order, matching the
        ``nodes`` list of the payload.
        """
        node_rows = payload["nodes"]
        if patterns.shape[0] != len(node_rows):
            raise ValidationError(
                f"graph for length {payload['length']} declares {len(node_rows)} "
                f"nodes but the pattern matrix has {patterns.shape[0]} rows"
            )
        graph = cls(length=int(payload["length"]), n_series=int(payload["n_series"]))
        for row, entry in enumerate(node_rows):
            node_id = int(entry["id"])
            graph._nodes[node_id] = NodeInfo(
                node_id=node_id,
                position=(float(entry["position"][0]), float(entry["position"][1])),
                pattern=np.ascontiguousarray(patterns[row], dtype=float),
                n_subsequences=int(entry["n_subsequences"]),
            )
            graph._node_series[node_id] = {}
        for source, target, weight in payload["edges"]:
            graph._edges[(int(source), int(target))] = int(weight)
        for node_key, counts in payload["node_series"].items():
            graph._node_series[int(node_key)] = {
                int(series): int(count) for series, count in counts.items()
            }
        for source, target, counts in payload["edge_series"]:
            graph._edge_series[(int(source), int(target))] = {
                int(series): int(count) for series, count in counts.items()
            }
        for series_key, trajectory in payload["trajectories"].items():
            graph._trajectories[int(series_key)] = [int(node) for node in trajectory]
        return graph
