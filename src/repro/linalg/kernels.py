"""Affinity kernels used by spectral clustering and consensus clustering."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.utils.validation import check_array


def gaussian_kernel_matrix(distances, gamma: Optional[float] = None) -> np.ndarray:
    """Convert a distance matrix to Gaussian (RBF) affinities ``exp(-g d^2)``.

    When ``gamma`` is ``None`` it defaults to ``1 / median(d^2)`` over the
    strictly positive entries (the "median heuristic"), which keeps affinities
    well spread for arbitrary scales.
    """
    matrix = check_array(distances, name="distances", ndim=2)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValidationError("distance matrix must be square")
    squared = matrix**2
    if gamma is None:
        positive = squared[squared > 0]
        scale = float(np.median(positive)) if positive.size else 1.0
        gamma = 1.0 / max(scale, 1e-12)
    elif gamma <= 0:
        raise ValidationError(f"gamma must be positive, got {gamma}")
    affinity = np.exp(-gamma * squared)
    np.fill_diagonal(affinity, 1.0)
    return affinity


def rbf_affinity(data, gamma: Optional[float] = None, metric: str = "euclidean") -> np.ndarray:
    """RBF affinity matrix computed directly from a feature matrix."""
    array = check_array(data, name="data", ndim=2)
    distances = pairwise_distances(array, metric=metric)
    return gaussian_kernel_matrix(distances, gamma=gamma)


def knn_affinity(data, n_neighbors: int = 10, metric: str = "euclidean") -> np.ndarray:
    """Symmetric k-nearest-neighbour connectivity affinity (0/1 entries)."""
    array = check_array(data, name="data", ndim=2)
    n = array.shape[0]
    if n_neighbors < 1:
        raise ValidationError(f"n_neighbors must be >= 1, got {n_neighbors}")
    n_neighbors = min(n_neighbors, n - 1)
    distances = pairwise_distances(array, metric=metric)
    affinity = np.zeros((n, n))
    for i in range(n):
        order = np.argsort(distances[i])
        neighbours = [j for j in order if j != i][:n_neighbors]
        affinity[i, neighbours] = 1.0
    # Symmetrise: connect if either endpoint lists the other as a neighbour.
    return np.maximum(affinity, affinity.T)
