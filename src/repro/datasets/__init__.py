"""Dataset generation and loading.

The Graphint demo runs on datasets of the UCR archive; that archive is not
available in this offline environment, so this package provides:

* a registry of **synthetic labelled dataset generators** whose classes are
  defined by distinct subsequence patterns (exactly the structure the k-Graph
  embedding is designed to capture), and
* a loader for the **UCR tab-separated format** so the real archive can be
  plugged in when available.

Each generator is registered in the catalogue with metadata (type, length,
number of classes, number of series) because the Benchmark frame filters
datasets along those dimensions.
"""

from repro.datasets.synthetic import (
    make_cylinder_bell_funnel,
    make_gun_point_like,
    make_mixed_bag,
    make_noise_only,
    make_random_walk_regimes,
    make_seasonal_mixture,
    make_shapelet_classes,
    make_sine_families,
    make_spiky_patterns,
    make_trend_classes,
    make_two_patterns,
)
from repro.datasets.catalogue import (
    DatasetCatalogue,
    DatasetSpec,
    default_catalogue,
    generate_dataset,
    list_dataset_names,
)
from repro.datasets.ucr import load_ucr_dataset, parse_ucr_lines, save_ucr_dataset

__all__ = [
    "DatasetCatalogue",
    "DatasetSpec",
    "default_catalogue",
    "generate_dataset",
    "list_dataset_names",
    "load_ucr_dataset",
    "make_cylinder_bell_funnel",
    "make_gun_point_like",
    "make_mixed_bag",
    "make_noise_only",
    "make_random_walk_regimes",
    "make_seasonal_mixture",
    "make_shapelet_classes",
    "make_sine_families",
    "make_spiky_patterns",
    "make_trend_classes",
    "make_two_patterns",
    "parse_ucr_lines",
    "save_ucr_dataset",
]
