"""Sliding-window (subsequence) extraction utilities.

The k-Graph embedding operates on *all* overlapping subsequences of every
series for several subsequence lengths; these helpers produce them as
stride-tricked views (no copy) wherever possible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_positive_int


def subsequence_count(series_length: int, window: int, stride: int = 1) -> int:
    """Number of windows of size ``window`` with ``stride`` in a series of given length."""
    series_length = check_positive_int(series_length, "series_length")
    window = check_positive_int(window, "window")
    stride = check_positive_int(stride, "stride")
    if window > series_length:
        return 0
    return (series_length - window) // stride + 1


def sliding_window_matrix(series, window: int, stride: int = 1) -> np.ndarray:
    """Return all subsequences of ``series`` as a (n_windows, window) matrix.

    The result is a copy (C-contiguous) so callers may normalise it in place.
    """
    array = check_array(series, name="series", ndim=1, min_rows=1)
    window = check_positive_int(window, "window")
    stride = check_positive_int(stride, "stride")
    if window > array.shape[0]:
        raise ValidationError(
            f"window ({window}) is larger than the series length ({array.shape[0]})"
        )
    view = np.lib.stride_tricks.sliding_window_view(array, window)[::stride]
    return np.ascontiguousarray(view)


def pad_series(series, target_length: int, mode: str = "edge") -> np.ndarray:
    """Pad ``series`` on the right up to ``target_length`` points."""
    array = check_array(series, name="series", ndim=1, min_rows=1)
    target_length = check_positive_int(target_length, "target_length")
    if target_length <= array.shape[0]:
        return array[:target_length].copy()
    pad = target_length - array.shape[0]
    if mode not in {"edge", "zero", "wrap"}:
        raise ValidationError(f"unknown padding mode {mode!r}")
    if mode == "zero":
        return np.concatenate([array, np.zeros(pad)])
    if mode == "wrap":
        return np.concatenate([array, np.resize(array, pad)])
    return np.concatenate([array, np.full(pad, array[-1])])


def subsequences_of_dataset(
    data, window: int, stride: int = 1
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract subsequences from every series of a dataset.

    Returns
    -------
    subsequences:
        Array of shape ``(total_windows, window)``.
    series_index:
        For each subsequence, the index of the series it came from.
    position_index:
        For each subsequence, its starting offset within its series.
    """
    array = check_array(data, name="data", ndim=2, min_rows=1)
    window = check_positive_int(window, "window")
    if window > array.shape[1]:
        raise ValidationError(
            f"window ({window}) is larger than the series length ({array.shape[1]})"
        )
    all_windows: List[np.ndarray] = []
    series_index: List[np.ndarray] = []
    position_index: List[np.ndarray] = []
    for i, row in enumerate(array):
        windows = sliding_window_matrix(row, window, stride)
        all_windows.append(windows)
        series_index.append(np.full(windows.shape[0], i, dtype=int))
        position_index.append(np.arange(0, windows.shape[0] * stride, stride, dtype=int))
    return (
        np.vstack(all_windows),
        np.concatenate(series_index),
        np.concatenate(position_index),
    )


def length_grid(series_length: int, n_lengths: int, minimum: int = 8, maximum_fraction: float = 0.4) -> List[int]:
    """Build the grid of subsequence lengths used by the k-Graph embedding.

    Lengths are spread geometrically between ``minimum`` and
    ``maximum_fraction * series_length`` and deduplicated, mirroring the
    multi-length design of the paper (M graphs for M lengths).
    """
    series_length = check_positive_int(series_length, "series_length", minimum=4)
    n_lengths = check_positive_int(n_lengths, "n_lengths")
    minimum = check_positive_int(minimum, "minimum", minimum=2)
    upper = max(minimum + 1, int(series_length * maximum_fraction))
    upper = min(upper, series_length - 1)
    if upper <= minimum:
        return [min(minimum, series_length - 1)]
    values = np.unique(
        np.round(np.geomspace(minimum, upper, n_lengths)).astype(int)
    )
    return [int(v) for v in values if v >= 2]
