"""Unit tests for graph layouts."""

import numpy as np
import pytest

from repro.graph.embedding import build_graph
from repro.graph.layout import circular_layout, force_directed_layout, pca_layout


@pytest.fixture(scope="module")
def embedded_graph(request):
    from repro.datasets.synthetic import make_cylinder_bell_funnel

    dataset = make_cylinder_bell_funnel(n_series=18, length=64, noise=0.2, random_state=0)
    return build_graph(dataset.data, length=12, random_state=0)


def _assert_unit_square(positions):
    coords = np.array(list(positions.values()))
    assert coords.min() >= -1e-9
    assert coords.max() <= 1.0 + 1e-9


class TestLayouts:
    def test_pca_layout_covers_all_nodes(self, embedded_graph):
        positions = pca_layout(embedded_graph)
        assert set(positions) == set(embedded_graph.nodes())
        _assert_unit_square(positions)

    def test_circular_layout_on_circle(self, embedded_graph):
        positions = circular_layout(embedded_graph)
        assert set(positions) == set(embedded_graph.nodes())
        radii = [np.hypot(x - 0.5, y - 0.5) for x, y in positions.values()]
        assert np.allclose(radii, 0.5, atol=1e-6)

    def test_force_layout_complete_and_bounded(self, embedded_graph):
        positions = force_directed_layout(embedded_graph, n_iterations=30, random_state=0)
        assert set(positions) == set(embedded_graph.nodes())
        _assert_unit_square(positions)

    def test_force_layout_deterministic(self, embedded_graph):
        a = force_directed_layout(embedded_graph, n_iterations=20, random_state=1)
        b = force_directed_layout(embedded_graph, n_iterations=20, random_state=1)
        for node in a:
            assert a[node] == pytest.approx(b[node])

    def test_force_layout_spreads_nodes(self, embedded_graph):
        positions = force_directed_layout(embedded_graph, n_iterations=50, random_state=0)
        coords = np.array(list(positions.values()))
        # No two nodes should collapse onto the exact same point.
        distances = np.linalg.norm(coords[:, None, :] - coords[None, :, :], axis=2)
        np.fill_diagonal(distances, np.inf)
        assert distances.min() > 1e-4

    def test_single_node_graph(self):
        from repro.graph.structure import TimeSeriesGraph

        graph = TimeSeriesGraph(length=4, n_series=1)
        graph.add_node(0, (0.3, 0.7), np.zeros(4))
        graph.record_visit(0, 0)
        assert force_directed_layout(graph) == {0: (0.5, 0.5)}
        assert pca_layout(graph)[0] is not None
