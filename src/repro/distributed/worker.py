"""The distributed worker service: a small HTTP executor for job chunks.

A worker is a plain top-level process serving four routes through the
shared HTTP plumbing of :func:`repro.viz.server.serve_application`:

* ``GET /healthz``   — liveness + identity (pid, inner backend, functions)
* ``GET /metrics``   — jobs run/failed/dropped, attempts, bytes in/out
* ``POST /jobs``     — run a chunk of jobs through a **registered** function
* ``POST /shutdown`` — drain and stop serving

Security model: the coordinator ships job *data* (pickled payloads — the
same trust boundary as the on-disk stage cache) but never job *code*.  The
``function`` field of a ``/jobs`` request is a name resolved against the
:mod:`repro.distributed.registry` dispatch table; unknown names are a 404
listing what the worker actually serves.

The worker deliberately owns **no retry policy**: it runs each job once
(attempt accounting and timeout budgets live in the coordinator's
:class:`~repro.distributed.backend.DistributedBackend`, which reuses the
``RetryPolicy``/bisection machinery of the process backend).  Chaos
semantics cross the wire too: a chunk flagged ``"chaos": true`` is run
through :class:`repro.parallel.chaos._ChaosRunner`, so an armed ``kill``
fault takes the whole service down mid-request (the coordinator sees a
connection reset, i.e. a :class:`~repro.parallel.retry.WorkerCrashError`)
and a ``drop_result`` fault makes the worker reply 200 but omit that
job's outcome.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.distributed.registry import (
    load_default_worker_functions,
    registered_function_names,
    resolve_worker_function,
)
from repro.distributed.stagecache import PlaneMissError, StageDataPlane
from repro.exceptions import ValidationError
from repro.parallel.backends import JobOutcome, resolve_backend
from repro.parallel.chaos import WORKER_PROCESS_ENV, ChaosDroppedResult, _ChaosRunner
from repro.viz.server import Response, json_error, serve_application

__all__ = [
    "WorkerApplication",
    "serve_worker",
    "WORKER_PROCESS_ENV",
    "DEFAULT_MAX_CHUNK_JOBS",
]

#: Reject chunks larger than this many jobs — a coordinator bug must not
#: make a worker buffer an unbounded fan-out in one request.
DEFAULT_MAX_CHUNK_JOBS = 4096


class WorkerApplication:
    """Request-independent worker state served by ``serve_application``.

    Parameters
    ----------
    backend:
        Inner execution backend for the jobs of one chunk (default serial:
        the coordinator already spreads chunks across workers, so
        per-worker parallelism is opt-in for multi-core worker hosts).
    n_jobs:
        Worker-local parallelism for the inner backend.
    data_plane:
        Root directory this worker may resolve
        :class:`~repro.distributed.stagecache.StageDataPlane` payloads
        against.  ``None`` (default) disables the data plane: requests
        carrying a ``plane`` section are rejected rather than letting the
        coordinator point the worker at arbitrary paths.
    max_chunk_jobs:
        Upper bound on jobs per ``/jobs`` request (413 beyond it).
    """

    ROUTES: List[str] = ["/healthz", "/metrics", "/jobs", "/shutdown"]

    def __init__(
        self,
        *,
        backend: Union[None, str, Any] = None,
        n_jobs: Optional[int] = None,
        data_plane: Union[None, str, Path] = None,
        max_chunk_jobs: int = DEFAULT_MAX_CHUNK_JOBS,
    ) -> None:
        load_default_worker_functions()
        if backend is None:
            self._backend = resolve_backend("serial")
            self._owns_backend = True
        else:
            self._backend = resolve_backend(backend, n_jobs=n_jobs)
            self._owns_backend = isinstance(backend, str)
        self.data_plane_root = (
            Path(data_plane).resolve() if data_plane is not None else None
        )
        if int(max_chunk_jobs) < 1:
            raise ValidationError(
                f"max_chunk_jobs must be >= 1, got {max_chunk_jobs}"
            )
        self.max_chunk_jobs = int(max_chunk_jobs)
        self._metrics: Dict[str, int] = {
            "requests": 0,
            "chunks": 0,
            "jobs_run": 0,
            "jobs_failed": 0,
            "jobs_dropped": 0,
            "attempts": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }
        self._lock = threading.Lock()
        self._server = None

    # ------------------------------------------------------------------ #
    def attach_server(self, server) -> None:
        """Give the application its server so ``/shutdown`` can stop it."""
        self._server = server

    def close(self) -> None:
        """Release the inner backend (if this application created it)."""
        if self._owns_backend:
            self._backend.close()

    def _count(self, **deltas: int) -> None:
        with self._lock:
            for key, delta in deltas.items():
                self._metrics[key] += int(delta)

    def metrics(self) -> Dict[str, int]:
        """A snapshot of the request/job/transfer counters."""
        with self._lock:
            return dict(self._metrics)

    # ------------------------------------------------------------------ #
    def handle_request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Response:
        """Route one request (the ``serve_application`` contract)."""
        self._count(requests=1)
        route = path.split("?", 1)[0].rstrip("/") or "/"
        if route == "/healthz":
            if method != "GET":
                return json_error(
                    405, f"method {method} not allowed on /healthz", allow=["GET"]
                )
            payload = {
                "status": "ok",
                "pid": os.getpid(),
                "backend": getattr(self._backend, "name", type(self._backend).__name__),
                "functions": len(registered_function_names()),
            }
            return 200, "application/json", json.dumps(payload, indent=2)
        if route == "/metrics":
            if method != "GET":
                return json_error(
                    405, f"method {method} not allowed on /metrics", allow=["GET"]
                )
            return 200, "application/json", json.dumps(self.metrics(), indent=2)
        if route == "/shutdown":
            if method != "POST":
                return json_error(
                    405, f"method {method} not allowed on /shutdown", allow=["POST"]
                )
            server = self._server
            if server is not None:
                # shutdown() blocks until serve_forever returns, which would
                # deadlock inside a handler thread — stop from a helper.
                threading.Thread(target=server.shutdown, daemon=True).start()
            return 200, "application/json", json.dumps({"status": "shutting-down"})
        if route == "/jobs":
            if method != "POST":
                return json_error(
                    405, f"method {method} not allowed on /jobs", allow=["POST"]
                )
            return self._handle_jobs(body or b"")
        return json_error(404, f"unknown route {route!r}", routes=self.ROUTES)

    # ------------------------------------------------------------------ #
    def _plane_from_payload(
        self, payload: Optional[Dict[str, Any]]
    ) -> Optional[StageDataPlane]:
        if payload is None:
            return None
        if self.data_plane_root is None:
            raise ValidationError(
                "this worker has no data plane configured; start it with "
                "--data-plane DIR to accept plane-resolved jobs"
            )
        directory = Path(str(payload.get("directory", ""))).resolve()
        if (
            directory != self.data_plane_root
            and self.data_plane_root not in directory.parents
        ):
            raise ValidationError(
                f"data-plane directory {str(directory)!r} is outside this "
                f"worker's allowed root {str(self.data_plane_root)!r}"
            )
        min_bytes = int(payload.get("min_bytes", 0))
        return StageDataPlane(directory, min_bytes=max(min_bytes, 0))

    def _handle_jobs(self, body: bytes) -> Response:
        self._count(bytes_in=len(body))
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return json_error(400, f"malformed /jobs body: {exc}")
        if not isinstance(payload, dict):
            return json_error(400, "the /jobs body must be a JSON object")

        function_name = payload.get("function")
        if not isinstance(function_name, str):
            return json_error(400, "the /jobs body needs a 'function' name")
        try:
            fn: Callable[[Any], Any] = resolve_worker_function(function_name)
        except ValidationError:
            return json_error(
                404,
                f"unknown worker function {function_name!r}",
                functions=registered_function_names(),
            )

        try:
            raw_jobs = pickle.loads(base64.b64decode(payload["jobs"]))
        except KeyError:
            return json_error(400, "the /jobs body needs a 'jobs' field")
        except Exception as exc:  # noqa: BLE001 - any codec failure is a 400
            return json_error(400, f"could not decode the job chunk: {exc}")
        if not isinstance(raw_jobs, list):
            return json_error(400, "the job chunk must decode to a list")
        if len(raw_jobs) > self.max_chunk_jobs:
            return json_error(
                413,
                f"chunk of {len(raw_jobs)} jobs exceeds this worker's "
                f"{self.max_chunk_jobs}-job limit",
            )

        try:
            plane = self._plane_from_payload(payload.get("plane"))
        except (ValidationError, OSError, ValueError) as exc:
            return json_error(400, str(exc))

        if payload.get("chaos"):
            fn = _ChaosRunner(fn)

        # Resolve data-plane refs per job so one missing array fails only
        # its own job (as a retryable PlaneMissError outcome), not the chunk.
        prepared: List[Tuple[int, Any]] = []
        failed: List[JobOutcome] = []
        for entry in raw_jobs:
            global_index, job = int(entry[0]), entry[1]
            if plane is not None:
                try:
                    job = plane.resolve(job)
                except PlaneMissError as exc:
                    failed.append(
                        JobOutcome(
                            index=global_index,
                            error=f"{type(exc).__name__}: {exc}",
                            exception=exc,
                        )
                    )
                    continue
            prepared.append((global_index, job))

        # One attempt per job: the coordinator owns retries and budgets.
        local_outcomes = self._backend.map_jobs(fn, [job for _, job in prepared])

        outcomes: List[JobOutcome] = list(failed)
        dropped = 0
        for (global_index, _), outcome in zip(prepared, local_outcomes):
            if isinstance(outcome.exception, ChaosDroppedResult):
                dropped += 1
                continue
            value = outcome.value
            if plane is not None and outcome.ok:
                value = plane.stash(value)
            outcomes.append(
                JobOutcome(
                    index=global_index,
                    value=value,
                    error=outcome.error,
                    exception=outcome.exception,
                    traceback=outcome.traceback,
                    duration_seconds=outcome.duration_seconds,
                    attempts=outcome.attempts,
                    retried=outcome.retried,
                    timed_out=outcome.timed_out,
                )
            )

        n_failed = sum(1 for outcome in outcomes if not outcome.ok)
        self._count(
            chunks=1,
            jobs_run=len(raw_jobs),
            jobs_failed=n_failed,
            jobs_dropped=dropped,
            attempts=len(prepared),
        )
        response_body = json.dumps(
            {
                "outcomes": [outcome.to_payload() for outcome in outcomes],
                "pid": os.getpid(),
                "worker_jobs": len(raw_jobs),
            }
        )
        self._count(bytes_out=len(response_body))
        return 200, "application/json", response_body

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerApplication(backend={self._backend!r}, "
            f"data_plane={str(self.data_plane_root)!r})"
        )


def serve_worker(
    application: Optional[WorkerApplication] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    poll: bool = True,
    ready: Optional[Callable[[Any], None]] = None,
    **application_kwargs: Any,
):
    """Serve a worker over HTTP (see :func:`repro.viz.server.serve_application`).

    ``port=0`` (the default) binds an ephemeral port; pass ``ready`` to
    learn the bound address (it receives the configured server after bind,
    before serving).  With ``poll=False`` the server object is returned for
    the caller to drive.
    """
    if application is None:
        application = WorkerApplication(**application_kwargs)
    elif application_kwargs:
        raise ValidationError(
            "pass either a prebuilt application or application keyword "
            "arguments, not both"
        )

    def _ready(server) -> None:
        application.attach_server(server)
        if ready is not None:
            ready(server)

    return serve_application(
        application, host=host, port=port, poll=poll, ready=_ready
    )
