"""Scenario: compare k-Graph against the baseline population (Benchmark frame).

Run with::

    python examples/compare_methods.py [--full]

By default a fast subset of methods and datasets is used so the example
finishes in well under a minute; ``--full`` runs the complete 15-method
campaign over the whole catalogue (what the Benchmark frame of the paper
shows).  Results are saved to ``benchmark_results.json`` and summarised as a
mean-score table and a mean-rank table.
"""

from __future__ import annotations

import argparse

from repro.benchmark import (
    BenchmarkRunner,
    boxplot_summary,
    mean_rank_table,
    save_results,
    summarize_by_method,
)

FAST_METHODS = ("kmeans", "kshape", "featts_like", "gmm", "spectral", "kgraph")
FAST_DATASETS = ("cylinder_bell_funnel", "two_patterns", "trend_classes", "sine_families")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all methods on all datasets")
    parser.add_argument("--output", default="benchmark_results.json")
    args = parser.parse_args()

    methods = None if args.full else list(FAST_METHODS)
    datasets = None if args.full else list(FAST_DATASETS)

    runner = BenchmarkRunner(methods, random_state=0)

    def progress(method: str, dataset: str, result) -> None:
        status = "FAILED" if result.failed else f"ARI={result.measures.get('ari', float('nan')):.3f}"
        print(f"  {dataset:<24} {method:<16} {status}")

    print("running benchmark campaign...")
    results = runner.run(datasets, progress=progress)
    save_results(results, args.output)
    print(f"\nresults saved to {args.output}\n")

    print("mean score per method (higher is better):")
    summary = summarize_by_method(results)
    for method, values in sorted(summary.items(), key=lambda kv: -kv[1].get("ari", 0.0)):
        print(f"  {method:<16} ARI={values.get('ari', float('nan')):.3f}  "
              f"NMI={values.get('nmi', float('nan')):.3f}  "
              f"runtime={values.get('runtime_seconds', 0.0):.2f}s")

    print("\nmean rank (ARI, 1 = best):")
    for method, rank in sorted(mean_rank_table(results, "ari").items(), key=lambda kv: kv[1]):
        print(f"  {method:<16} {rank:.2f}")

    print("\nARI distribution per method (box-plot statistics):")
    for method, stats in sorted(boxplot_summary(results, "ari").items()):
        print(f"  {method:<16} median={stats['median']:.3f}  "
              f"[q1={stats['q1']:.3f}, q3={stats['q3']:.3f}]  n={stats['n']}")


if __name__ == "__main__":
    main()
