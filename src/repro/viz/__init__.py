"""Graphint visualisation layer (dependency-free HTML/SVG).

The original demo is a Streamlit + Plotly web application.  Neither is
available in this environment, so the tool is re-implemented as:

* :mod:`repro.viz.svg` / :mod:`repro.viz.plots` — an SVG drawing substrate
  and the plot types the frames need (line, scatter, box plot, heatmap,
  histogram, bar chart),
* :mod:`repro.viz.graph_render` — graph drawing with λ/γ colouring,
* :mod:`repro.viz.frames` — one builder per GUI frame (clustering
  comparison, benchmark, graph, interpretability test, under the hood),
* :mod:`repro.viz.dashboard` — assembly of all frames into a single static
  HTML dashboard,
* :mod:`repro.viz.server` — a stdlib HTTP server exposing the dashboard with
  query-parameter interactivity (dataset selection, λ/γ thresholds),
* :mod:`repro.viz.cli` — the ``graphint`` command-line entry point.
"""

from repro.viz.svg import SVGCanvas
from repro.viz.plots import (
    bar_chart,
    box_plot,
    heatmap,
    histogram,
    line_plot,
    scatter_plot,
    series_grid,
)
from repro.viz.graph_render import render_graph
from repro.viz.dashboard import build_dashboard
from repro.viz.theme import CLUSTER_PALETTE, Theme, color_for_cluster

__all__ = [
    "CLUSTER_PALETTE",
    "SVGCanvas",
    "Theme",
    "bar_chart",
    "box_plot",
    "build_dashboard",
    "color_for_cluster",
    "heatmap",
    "histogram",
    "line_plot",
    "render_graph",
    "scatter_plot",
    "series_grid",
]
