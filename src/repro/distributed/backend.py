"""The coordinator side of distributed execution: an ``ExecutionBackend``
that maps jobs over a pool of HTTP worker services.

``DistributedBackend`` speaks the worker protocol of
:mod:`repro.distributed.worker`: chunks of ``(index, job)`` pairs travel as
pickled payloads under a **registered function name** (never a pickled
callable), and outcomes come back through the JSON wire codec of
:mod:`repro.parallel.wire` — bit-identical ndarrays, reconstructed
exception types, fault fields intact.

Fault tolerance deliberately mirrors :class:`ProcessBackend.map_jobs
<repro.parallel.backends.ProcessBackend>` so every policy written for
process pools transfers unchanged:

* an unreachable worker is a crashed worker: its in-flight chunks are
  *quarantined*, re-dispatched alone and bisected until a genuinely
  poisonous job records a :class:`~repro.parallel.retry.WorkerCrashError`
  while innocent chunk-mates recover;
* a request that exceeds its attempt budget settles ``timed_out``
  outcomes carrying :class:`~repro.parallel.retry.JobTimeoutError` and
  marks the worker dead (it may be hung);
* when every worker is dead, a ``/healthz`` probe sweep plays the role of
  a pool rebuild — bounded by the policy's ``max_pool_rebuilds``, after
  which remaining jobs drain as
  :class:`~repro.parallel.retry.WorkerPoolExhausted`, the exact signal
  :class:`~repro.parallel.backends.FallbackBackend` demotes on.

With a :class:`~repro.distributed.stagecache.StageDataPlane` attached,
large arrays leave the payload entirely: jobs ship fingerprint refs and
workers resolve them against the shared directory (and stash their own
large results the same way), collapsing coordinator ``bytes_shipped`` by
an order of magnitude on array-heavy fan-outs.

Spec syntax (accepted by :func:`repro.parallel.resolve_backend` and every
``--backend`` CLI flag)::

    distributed:HOST:PORT[,HOST:PORT...][@PLANE_DIR]
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import time
import urllib.error
import urllib.request
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)
from collections import deque

from repro.distributed.registry import worker_function_name
from repro.distributed.stagecache import PlaneMissError, StageDataPlane
from repro.exceptions import ParallelExecutionError, ValidationError
from repro.parallel.backends import (
    ExecutionBackend,
    JobOutcome,
    OnResult,
    _timeout_outcome,
)
from repro.parallel.chaos import _ChaosRunner
from repro.parallel.retry import (
    DEFAULT_MAX_POOL_REBUILDS,
    RetryPolicy,
    WorkerCrashError,
    WorkerPoolExhausted,
)

__all__ = ["DistributedBackend", "DEFAULT_REQUEST_TIMEOUT", "DEFAULT_PROBE_TIMEOUT"]

#: Per-chunk HTTP budget when the retry policy carries no per-attempt
#: timeout — generous, because a request with no budget at all would pin
#: the fan-out on one hung worker forever.
DEFAULT_REQUEST_TIMEOUT = 60.0

#: Budget for a ``/healthz`` probe during a pool-rebuild sweep.
DEFAULT_PROBE_TIMEOUT = 2.0


def _normalise_worker_url(worker: str) -> str:
    worker = worker.strip()
    if not worker:
        raise ValidationError("worker URLs must be non-empty")
    if "://" not in worker:
        worker = f"http://{worker}"
    return worker.rstrip("/")


def _is_timeout(exc: BaseException) -> bool:
    if isinstance(exc, (socket.timeout, TimeoutError)):
        return True
    reason = getattr(exc, "reason", None)
    return isinstance(reason, (socket.timeout, TimeoutError))


class _Worker:
    """One pool member: its URL plus liveness/dispatch bookkeeping."""

    __slots__ = ("url", "alive", "dispatches", "failures")

    def __init__(self, url: str) -> None:
        self.url = url
        self.alive = True
        self.dispatches = 0
        self.failures = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "dead"
        return f"_Worker({self.url!r}, {state})"


class DistributedBackend(ExecutionBackend):
    """Executes jobs on a pool of HTTP worker services (see module docs)."""

    name = "distributed"

    def __init__(
        self,
        workers: Sequence[str],
        *,
        chunk_size: int = 1,
        data_plane: Union[None, str, Path, StageDataPlane] = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
    ) -> None:
        urls = [_normalise_worker_url(worker) for worker in workers]
        if not urls:
            raise ValidationError(
                "a DistributedBackend needs at least one worker URL, e.g. "
                "DistributedBackend(['127.0.0.1:8101'])"
            )
        if len(set(urls)) != len(urls):
            raise ValidationError(f"duplicate worker URLs in {urls}")
        if int(chunk_size) < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        if float(request_timeout) <= 0:
            raise ValidationError(
                f"request_timeout must be > 0, got {request_timeout}"
            )
        self.workers = [_Worker(url) for url in urls]
        self.chunk_size = int(chunk_size)
        if data_plane is not None and not isinstance(data_plane, StageDataPlane):
            data_plane = StageDataPlane(data_plane)
        self.data_plane: Optional[StageDataPlane] = data_plane
        self.request_timeout = float(request_timeout)
        self.probe_timeout = float(probe_timeout)
        #: Cumulative request-body bytes POSTed to workers (the coordinator
        #: analogue of the process backends' pickled-payload accounting).
        self.bytes_shipped = 0
        #: Cumulative response-body bytes read back from workers.
        self.bytes_received = 0
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str) -> "DistributedBackend":
        """Build a backend from ``distributed:HOST:PORT[,...][@PLANE_DIR]``."""
        text = spec.strip()
        if text == "distributed":
            rest = ""
        elif text.startswith("distributed:"):
            rest = text[len("distributed:") :]
        else:
            rest = text
        workers_part, _, plane_part = rest.partition("@")
        workers = [part for part in workers_part.split(",") if part.strip()]
        if not workers:
            raise ValidationError(
                f"the distributed backend spec {spec!r} names no workers; "
                "expected 'distributed:HOST:PORT[,HOST:PORT...][@PLANE_DIR]', "
                "e.g. 'distributed:127.0.0.1:8101,127.0.0.1:8102@/tmp/plane'"
            )
        plane = plane_part.strip() or None
        return cls(workers, data_plane=plane)

    # ------------------------------------------------------------------ #
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=len(self.workers),
                thread_name_prefix="repro-distributed",
            )
        return self._executor

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def shutdown_workers(self) -> int:
        """Best-effort ``POST /shutdown`` to every worker; count of acks."""
        acked = 0
        for worker in self.workers:
            request = urllib.request.Request(
                f"{worker.url}/shutdown", data=b"", method="POST"
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.probe_timeout
                ) as response:
                    response.read()
                acked += 1
            except Exception:  # noqa: BLE001 - best-effort by definition
                pass
        return acked

    def _probe(self, worker: _Worker) -> bool:
        try:
            with urllib.request.urlopen(
                f"{worker.url}/healthz", timeout=self.probe_timeout
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
            worker.alive = payload.get("status") == "ok"
        except Exception:  # noqa: BLE001 - any failure means not alive
            worker.alive = False
        return worker.alive

    # ------------------------------------------------------------------ #
    def _function_spec(self, fn: Callable[[Any], Any]) -> Tuple[str, bool]:
        """Resolve ``fn`` to (registered name, chaos flag) for the wire."""
        if isinstance(fn, str):
            return fn, False
        if isinstance(fn, _ChaosRunner):
            # Chaos wrapping crosses the wire as a flag, not a callable:
            # the worker re-wraps the registered function in its own
            # _ChaosRunner, so kill faults take the worker service down.
            return worker_function_name(fn.fn), True
        return worker_function_name(fn), False

    def _encode_chunk(
        self, function_name: str, chunk: List[Tuple[int, Any]], chaos: bool
    ) -> bytes:
        jobs = chunk
        if self.data_plane is not None:
            jobs = [(index, self.data_plane.stash(job)) for index, job in chunk]
        blob = base64.b64encode(pickle.dumps(jobs, protocol=4)).decode("ascii")
        body: Dict[str, Any] = {"function": function_name, "jobs": blob}
        if chaos:
            body["chaos"] = True
        if self.data_plane is not None:
            body["plane"] = {
                "directory": str(self.data_plane.directory),
                "min_bytes": self.data_plane.min_bytes,
            }
        return json.dumps(body).encode("utf-8")

    def _dispatch_chunk(
        self, worker: _Worker, body: bytes, budget: float
    ) -> Tuple[str, Any]:
        """POST one chunk; classify the result instead of raising.

        Returns ``(kind, payload)`` where kind is one of ``"outcomes"``
        (payload: ``(outcomes, response_bytes)``), ``"timeout"``,
        ``"rejected"`` (HTTP 4xx — the request itself is invalid, final),
        ``"error"`` (HTTP 5xx / undecodable — worker alive, retryable) or
        ``"crash"`` (connection-level failure — worker presumed dead).
        """
        request = urllib.request.Request(
            f"{worker.url}/jobs",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=budget) as response:
                text = response.read()
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))["error"]["message"]
            except Exception:  # noqa: BLE001 - non-JSON error body
                detail = str(exc)
            if 400 <= exc.code < 500:
                return (
                    "rejected",
                    f"worker {worker.url} rejected the chunk "
                    f"(HTTP {exc.code}): {detail}",
                )
            return (
                "error",
                f"worker {worker.url} failed the chunk (HTTP {exc.code}): {detail}",
            )
        except Exception as exc:  # noqa: BLE001 - classify, never raise
            if _is_timeout(exc):
                return (
                    "timeout",
                    f"worker {worker.url} did not answer within its "
                    f"{budget:.3f} s attempt budget",
                )
            return ("crash", f"worker {worker.url} is unreachable: {exc}")
        try:
            payload = json.loads(text.decode("utf-8"))
            outcomes = [
                JobOutcome.from_payload(node) for node in payload["outcomes"]
            ]
        except Exception as exc:  # noqa: BLE001 - truncated/garbled body
            return (
                "error",
                f"worker {worker.url} returned an undecodable response: {exc}",
            )
        return ("outcomes", (outcomes, len(text)))

    # ------------------------------------------------------------------ #
    def map_jobs(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        on_result: OnResult = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        function_name, chaos = self._function_spec(fn)
        policy = self._effective_retry(retry)
        timeout = None if policy is None else policy.timeout
        deadline_at = (
            time.monotonic() + policy.deadline
            if policy is not None and policy.deadline is not None
            else None
        )
        max_rebuilds = (
            DEFAULT_MAX_POOL_REBUILDS
            if policy is None
            else int(policy.max_pool_rebuilds)
        )

        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        attempts = [0] * len(jobs)
        indexed = list(enumerate(jobs))
        #: Chunks awaiting a normal (spread-across-workers) dispatch.
        normal: Deque[List[Tuple[int, Any]]] = deque(
            indexed[start : start + self.chunk_size]
            for start in range(0, len(indexed), self.chunk_size)
        )
        #: Chunks implicated in a worker crash: dispatched one at a time so
        #: repeat crashes unambiguously convict the dispatched chunk.
        quarantined: Deque[List[Tuple[int, Any]]] = deque()
        rebuilds = 0
        next_round_delay = 0.0

        def record(outcome: JobOutcome) -> None:
            outcome.attempts = attempts[outcome.index]
            outcome.retried = attempts[outcome.index] > 1
            if outcome.timed_out:
                self.timeouts += 1
            outcomes[outcome.index] = outcome
            if on_result is not None:
                on_result(outcome)

        def settle(outcome: JobOutcome) -> None:
            nonlocal next_round_delay
            index = outcome.index
            if outcome.ok or policy is None:
                record(outcome)
                return
            past_deadline = (
                deadline_at is not None and time.monotonic() >= deadline_at
            )
            if past_deadline or not policy.should_retry(
                outcome.exception, attempts[index]
            ):
                record(outcome)
                return
            next_round_delay = max(
                next_round_delay, policy.backoff_seconds(attempts[index] + 1, index)
            )
            normal.append([(index, jobs[index])])

        def drain(outcome_for: Callable[[int], JobOutcome]) -> None:
            while normal or quarantined:
                chunk = (normal if normal else quarantined).popleft()
                for index, _ in chunk:
                    record(outcome_for(index))

        while normal or quarantined:
            if deadline_at is not None and time.monotonic() >= deadline_at:
                drain(
                    lambda index: _timeout_outcome(
                        index,
                        f"fan-out deadline of {policy.deadline} s expired "
                        f"before job {index} finished",
                    )
                )
                break
            if rebuilds > max_rebuilds:
                def _exhausted(index: int) -> JobOutcome:
                    exc = WorkerPoolExhausted(
                        f"all {len(self.workers)} distributed workers are "
                        f"unreachable after {rebuilds} probe sweeps "
                        f"(max_pool_rebuilds={max_rebuilds}); job {index} "
                        "abandoned"
                    )
                    return JobOutcome(
                        index=index,
                        error=f"{type(exc).__name__}: {exc}",
                        exception=exc,
                    )

                drain(_exhausted)
                break

            alive = [worker for worker in self.workers if worker.alive]
            if not alive:
                # The distributed analogue of a pool rebuild: one bounded
                # /healthz sweep over every worker, hoping supervision (or
                # the operator) brought some back.
                rebuilds += 1
                self.pool_rebuilds += 1
                for worker in self.workers:
                    self._probe(worker)
                continue

            if next_round_delay > 0:
                delay = next_round_delay
                if deadline_at is not None:
                    delay = min(delay, max(0.0, deadline_at - time.monotonic()))
                if delay > 0:
                    time.sleep(delay)
                next_round_delay = 0.0

            isolated = not normal
            if isolated:
                batch = [quarantined.popleft()]
            else:
                batch = list(normal)
                normal.clear()

            pool = self._pool()
            submitted: Dict[Any, Tuple[_Worker, List[Tuple[int, Any]]]] = {}
            for position, chunk in enumerate(batch):
                worker = alive[position % len(alive)]
                for index, _ in chunk:
                    attempts[index] += 1
                    self.attempts += 1
                body = self._encode_chunk(function_name, chunk, chaos)
                self.bytes_shipped += len(body)
                budget = (
                    self.request_timeout
                    if timeout is None
                    else float(timeout) * len(chunk)
                )
                if deadline_at is not None:
                    budget = min(
                        budget, max(0.001, deadline_at - time.monotonic())
                    )
                worker.dispatches += 1
                future = pool.submit(self._dispatch_chunk, worker, body, budget)
                submitted[future] = (worker, chunk)

            pending = set(submitted)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    worker, chunk = submitted[future]
                    kind, payload = future.result()
                    if kind == "outcomes":
                        chunk_outcomes, response_nbytes = payload
                        self.bytes_received += response_nbytes
                        by_index = {
                            outcome.index: outcome for outcome in chunk_outcomes
                        }
                        for index, _ in chunk:
                            outcome = by_index.get(index)
                            if outcome is None:
                                # 200 with a missing outcome: the worker
                                # dropped the result (chaos, or a protocol
                                # bug) — retryable as a crash-class failure.
                                crash = WorkerCrashError(
                                    f"worker {worker.url} returned no outcome "
                                    f"for job {index}"
                                )
                                settle(
                                    JobOutcome(
                                        index=index,
                                        error=f"{type(crash).__name__}: {crash}",
                                        exception=crash,
                                    )
                                )
                                continue
                            if (
                                self.data_plane is not None
                                and outcome.ok
                            ):
                                try:
                                    outcome.value = self.data_plane.resolve(
                                        outcome.value
                                    )
                                except PlaneMissError as exc:
                                    outcome.value = None
                                    outcome.error = (
                                        f"{type(exc).__name__}: {exc}"
                                    )
                                    outcome.exception = exc
                            settle(outcome)
                        continue
                    worker.failures += 1
                    if kind == "timeout":
                        # The worker may be hung mid-job; stop routing to it
                        # until a probe sweep sees /healthz answer again.
                        worker.alive = False
                        for index, _ in chunk:
                            settle(
                                _timeout_outcome(
                                    index,
                                    f"job {index} exceeded its attempt budget "
                                    f"on {worker.url} (attempt "
                                    f"{attempts[index]})",
                                )
                            )
                        continue
                    if kind == "rejected":
                        # The request itself is invalid (unknown function,
                        # oversized chunk, bad plane): retrying cannot help.
                        for index, _ in chunk:
                            exc = ValidationError(str(payload))
                            record(
                                JobOutcome(
                                    index=index,
                                    error=f"{type(exc).__name__}: {exc}",
                                    exception=exc,
                                )
                            )
                        continue
                    if kind == "error":
                        for index, _ in chunk:
                            exc = ParallelExecutionError(str(payload))
                            settle(
                                JobOutcome(
                                    index=index,
                                    error=f"{type(exc).__name__}: {exc}",
                                    exception=exc,
                                )
                            )
                        continue
                    # kind == "crash": connection-level failure.
                    worker.alive = False
                    if not isolated:
                        quarantined.append(chunk)
                    elif len(chunk) > 1:
                        middle = len(chunk) // 2
                        quarantined.append(chunk[:middle])
                        quarantined.append(chunk[middle:])
                    else:
                        index = chunk[0][0]
                        crash = WorkerCrashError(
                            f"job {index} lost its worker (attempt "
                            f"{attempts[index]}): {payload}"
                        )
                        record(
                            JobOutcome(
                                index=index,
                                error=f"{type(crash).__name__}: {crash}",
                                exception=crash,
                            )
                        )
        return self._collect(outcomes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        urls = [worker.url for worker in self.workers]
        return (
            f"DistributedBackend({urls!r}, chunk_size={self.chunk_size}, "
            f"data_plane={self.data_plane!r})"
        )
