"""Lloyd's k-Means with k-means++ initialisation and restarts.

k-Means is used twice in the paper: as the per-graph clustering step of
k-Graph (on node/edge feature matrices) and as one of the raw baselines in
the comparison frames.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_array,
    check_positive_int,
    check_random_state,
)


def kmeans_plus_plus_init(data: np.ndarray, n_clusters: int, rng: np.random.Generator) -> np.ndarray:
    """Choose initial centroids with the k-means++ D^2 weighting scheme."""
    data = check_array(data, name="data", ndim=2)
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    n_samples = data.shape[0]
    if n_clusters > n_samples:
        raise ValidationError(
            f"n_clusters ({n_clusters}) cannot exceed the number of samples ({n_samples})"
        )
    centers = np.empty((n_clusters, data.shape[1]))
    first = int(rng.integers(n_samples))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for i in range(1, n_clusters):
        total = float(closest_sq.sum())
        if total <= 1e-18:
            # All remaining points coincide with existing centers; pick randomly.
            idx = int(rng.integers(n_samples))
        else:
            probabilities = closest_sq / total
            idx = int(rng.choice(n_samples, p=probabilities))
        centers[i] = data[idx]
        distances = np.sum((data - centers[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distances)
    return centers


class KMeans(BaseClusterer):
    """Euclidean k-Means (Lloyd's algorithm).

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of k-means++ restarts; the run with the lowest inertia wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Relative center-shift tolerance for convergence.
    random_state:
        Seed or generator controlling initialisation.

    Attributes
    ----------
    cluster_centers_:
        Final centroids, shape ``(n_clusters, n_features)``.
    labels_:
        Cluster index per sample.
    inertia_:
        Sum of squared distances of samples to their closest centroid.
    n_iter_:
        Iterations run by the best restart.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-4,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if tol < 0:
            raise ValidationError(f"tol must be non-negative, got {tol}")
        self.tol = float(tol)
        self.random_state = random_state

        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _assign(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = (
            np.sum(data**2, axis=1)[:, None]
            - 2.0 * data @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        return np.argmin(distances, axis=1)

    @staticmethod
    def _inertia(data: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
        diff = data - centers[labels]
        return float(np.sum(diff * diff))

    def _single_run(self, data: np.ndarray, rng: np.random.Generator):
        centers = kmeans_plus_plus_init(data, self.n_clusters, rng)
        labels = self._assign(data, centers)
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            new_centers = centers.copy()
            for j in range(self.n_clusters):
                members = data[labels == j]
                if members.shape[0] == 0:
                    # Re-seed an empty cluster with the point farthest from its centroid.
                    distances = np.sum((data - centers[labels]) ** 2, axis=1)
                    new_centers[j] = data[int(np.argmax(distances))]
                else:
                    new_centers[j] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centers - centers))
            scale = float(np.linalg.norm(centers)) + 1e-12
            centers = new_centers
            new_labels = self._assign(data, centers)
            converged = shift / scale <= self.tol or np.array_equal(new_labels, labels)
            labels = new_labels
            if converged:
                break
        return centers, labels, self._inertia(data, centers, labels), n_iter

    def fit(self, data) -> "KMeans":
        """Run k-Means on ``data`` of shape (n_samples, n_features)."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if array.shape[0] < self.n_clusters:
            raise ValidationError(
                f"n_clusters ({self.n_clusters}) cannot exceed n_samples ({array.shape[0]})"
            )
        rng = check_random_state(self.random_state)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._single_run(array, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, data) -> np.ndarray:
        """Assign each row of ``data`` to its nearest fitted centroid."""
        self._check_fitted()
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if array.shape[1] != self.cluster_centers_.shape[1]:
            raise ValidationError(
                f"data has {array.shape[1]} features, centroids have "
                f"{self.cluster_centers_.shape[1]}"
            )
        return self._assign(array, self.cluster_centers_)

    def transform(self, data) -> np.ndarray:
        """Distance of each sample to each centroid (cluster-distance space)."""
        self._check_fitted()
        array = check_array(data, name="data", ndim=2, min_rows=1)
        distances = (
            np.sum(array**2, axis=1)[:, None]
            - 2.0 * array @ self.cluster_centers_.T
            + np.sum(self.cluster_centers_**2, axis=1)[None, :]
        )
        return np.sqrt(np.maximum(distances, 0.0))
