"""Kernel density estimation in one and two dimensions.

The k-Graph node-extraction step finds dense regions of the PCA-projected
subsequence cloud by scanning radial directions and locating local maxima of
a kernel density estimate along each scan line.  This module provides that
estimator (Gaussian and Epanechnikov kernels, Scott/Silverman bandwidth
rules) plus grid evaluation and 1-D local-maxima search helpers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array


def scott_bandwidth(data: np.ndarray) -> float:
    """Scott's rule-of-thumb bandwidth for a (n, d) sample."""
    array = check_array(data, name="data")
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    n, d = array.shape
    sigma = float(np.mean(array.std(axis=0)))
    sigma = max(sigma, 1e-12)
    return sigma * n ** (-1.0 / (d + 4))


def silverman_bandwidth(data: np.ndarray) -> float:
    """Silverman's rule-of-thumb bandwidth for a (n, d) sample."""
    array = check_array(data, name="data")
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    n, d = array.shape
    sigma = float(np.mean(array.std(axis=0)))
    sigma = max(sigma, 1e-12)
    factor = (n * (d + 2) / 4.0) ** (-1.0 / (d + 4))
    return sigma * factor


class KernelDensityEstimator:
    """Fixed-bandwidth kernel density estimator.

    Parameters
    ----------
    bandwidth:
        Positive smoothing bandwidth, or ``"scott"`` / ``"silverman"`` to pick
        it from the data at fit time.
    kernel:
        ``"gaussian"`` (default) or ``"epanechnikov"``.
    """

    def __init__(self, bandwidth="scott", kernel: str = "gaussian") -> None:
        if isinstance(bandwidth, str):
            if bandwidth not in {"scott", "silverman"}:
                raise ValidationError(f"unknown bandwidth rule {bandwidth!r}")
        else:
            bandwidth = float(bandwidth)
            if bandwidth <= 0:
                raise ValidationError(f"bandwidth must be positive, got {bandwidth}")
        if kernel not in {"gaussian", "epanechnikov"}:
            raise ValidationError(f"unknown kernel {kernel!r}")
        self.bandwidth = bandwidth
        self.kernel = kernel
        self.bandwidth_: Optional[float] = None
        self._samples: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "KernelDensityEstimator":
        """Store the sample and resolve the bandwidth."""
        array = check_array(data, name="data")
        if array.ndim == 1:
            array = array.reshape(-1, 1)
        self._samples = array
        if isinstance(self.bandwidth, str):
            rule = scott_bandwidth if self.bandwidth == "scott" else silverman_bandwidth
            self.bandwidth_ = max(rule(array), 1e-9)
        else:
            self.bandwidth_ = float(self.bandwidth)
        return self

    def _check_fitted(self) -> None:
        if self._samples is None or self.bandwidth_ is None:
            raise NotFittedError("KernelDensityEstimator is not fitted yet")

    def _kernel_values(self, squared_distances: np.ndarray) -> np.ndarray:
        h = self.bandwidth_
        if self.kernel == "gaussian":
            return np.exp(-0.5 * squared_distances / (h * h))
        scaled = squared_distances / (h * h)
        return np.maximum(1.0 - scaled, 0.0)

    def score_samples(self, points) -> np.ndarray:
        """Unnormalised density estimate at each query point.

        The absolute scale is irrelevant for local-maxima detection (the only
        use in the pipeline), so the kernel sum is returned without the
        normalising constant; values are comparable across points for a fixed
        fitted estimator.
        """
        self._check_fitted()
        query = check_array(points, name="points")
        if query.ndim == 1:
            query = query.reshape(-1, 1)
        if query.shape[1] != self._samples.shape[1]:
            raise ValidationError(
                f"points have dimension {query.shape[1]}, estimator was fitted with "
                f"{self._samples.shape[1]}"
            )
        # (n_query, n_samples) squared distances, chunked to bound memory.
        densities = np.zeros(query.shape[0])
        chunk = 2048
        for start in range(0, query.shape[0], chunk):
            block = query[start: start + chunk]
            diff = block[:, None, :] - self._samples[None, :, :]
            sq = np.sum(diff * diff, axis=2)
            densities[start: start + chunk] = self._kernel_values(sq).sum(axis=1)
        return densities / (self._samples.shape[0] * self.bandwidth_)

    def evaluate_grid_1d(
        self, low: float, high: float, n_points: int = 256
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate the density on a regular 1-D grid; returns (grid, density)."""
        self._check_fitted()
        if self._samples.shape[1] != 1:
            raise ValidationError("evaluate_grid_1d requires a 1-D fitted sample")
        if high <= low:
            raise ValidationError("grid bounds must satisfy low < high")
        grid = np.linspace(low, high, int(n_points))
        return grid, self.score_samples(grid.reshape(-1, 1))


def local_maxima_1d(values, *, min_prominence: float = 0.0) -> List[int]:
    """Indices of local maxima of a 1-D signal, optionally prominence-filtered.

    A plateau maximum reports its left-most index.  Prominence is measured as
    the drop to the higher of the two neighbouring minima.
    """
    array = check_array(values, name="values", ndim=1, min_rows=1)
    n = array.shape[0]
    if n == 1:
        return [0]
    candidates: List[int] = []
    i = 1
    if array[0] > array[1]:
        candidates.append(0)
    while i < n - 1:
        if array[i] > array[i - 1] and array[i] >= array[i + 1]:
            candidates.append(i)
            # Skip the plateau to avoid duplicate reports.
            j = i + 1
            while j < n - 1 and array[j] == array[i]:
                j += 1
            i = j
        else:
            i += 1
    if array[n - 1] > array[n - 2]:
        candidates.append(n - 1)

    if min_prominence <= 0:
        return candidates

    kept: List[int] = []
    for idx in candidates:
        left = array[:idx + 1]
        right = array[idx:]
        left_min = float(left.min()) if left.size else float(array[idx])
        right_min = float(right.min()) if right.size else float(array[idx])
        prominence = float(array[idx]) - max(left_min, right_min)
        if prominence >= min_prominence:
            kept.append(idx)
    return kept
