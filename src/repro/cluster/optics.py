"""OPTICS ordering-based density clustering.

Computes the reachability ordering and extracts a DBSCAN-like flat
clustering at a chosen eps (the "extract DBSCAN" strategy), providing a
second density-based baseline that is less sensitive to the eps choice.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.utils.validation import check_array, check_positive_int


class OPTICS(BaseClusterer):
    """Ordering Points To Identify the Clustering Structure.

    Parameters
    ----------
    min_samples:
        Neighbourhood size used for core distances.
    max_eps:
        Maximum radius considered (``inf`` = unbounded).
    cluster_eps:
        Radius at which the flat clustering is extracted from the ordering;
        ``None`` uses the median of the finite reachability values.
    metric:
        Distance metric or ``"precomputed"``.

    Attributes
    ----------
    ordering_:
        Visit order of the samples.
    reachability_:
        Reachability distance per sample (inf for the first of each component).
    labels_:
        Flat cluster labels with -1 as noise.
    """

    def __init__(
        self,
        min_samples: int = 5,
        *,
        max_eps: float = np.inf,
        cluster_eps: Optional[float] = None,
        metric: str = "euclidean",
    ) -> None:
        self.min_samples = check_positive_int(min_samples, "min_samples")
        if max_eps <= 0:
            raise ValidationError(f"max_eps must be positive, got {max_eps}")
        self.max_eps = float(max_eps)
        if cluster_eps is not None and cluster_eps <= 0:
            raise ValidationError(f"cluster_eps must be positive, got {cluster_eps}")
        self.cluster_eps = cluster_eps
        self.metric = metric

        self.ordering_: Optional[np.ndarray] = None
        self.reachability_: Optional[np.ndarray] = None
        self.core_distances_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None

    def fit(self, data) -> "OPTICS":
        """Compute the OPTICS ordering and a flat extraction."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if self.metric == "precomputed":
            if array.shape[0] != array.shape[1]:
                raise ValidationError("precomputed distance matrix must be square")
            distances = array
        else:
            distances = pairwise_distances(array, metric=self.metric)
        n = distances.shape[0]
        k = min(self.min_samples, n)

        sorted_d = np.sort(distances, axis=1)
        core_distances = sorted_d[:, k - 1]
        core_distances = np.where(core_distances <= self.max_eps, core_distances, np.inf)

        reachability = np.full(n, np.inf)
        processed = np.zeros(n, dtype=bool)
        ordering = []

        for start in range(n):
            if processed[start]:
                continue
            # Expand one density-connected component starting at `start`.
            seeds = {start: np.inf}
            while seeds:
                point = min(seeds, key=lambda idx: seeds[idx])
                seeds.pop(point)
                if processed[point]:
                    continue
                processed[point] = True
                ordering.append(point)
                if not np.isfinite(core_distances[point]):
                    continue
                neighbours = np.flatnonzero(distances[point] <= self.max_eps)
                for neighbour in neighbours:
                    if processed[neighbour]:
                        continue
                    new_reach = max(core_distances[point], distances[point, neighbour])
                    if new_reach < reachability[neighbour]:
                        reachability[neighbour] = new_reach
                        seeds[neighbour] = new_reach

        self.ordering_ = np.asarray(ordering, dtype=int)
        self.reachability_ = reachability
        self.core_distances_ = core_distances
        self.labels_ = self._extract_dbscan(distances)
        return self

    def _extract_dbscan(self, distances: np.ndarray) -> np.ndarray:
        finite = self.reachability_[np.isfinite(self.reachability_)]
        if self.cluster_eps is not None:
            eps = self.cluster_eps
        elif finite.size:
            # A permissive default keeps most density-reachable points
            # clustered; the median proved too aggressive (many false noise
            # points on well-separated blobs).
            eps = float(np.quantile(finite, 0.75))
        else:
            eps = np.inf
        n = distances.shape[0]
        labels = np.full(n, -1, dtype=int)
        cluster_id = -1
        for point in self.ordering_:
            if self.reachability_[point] > eps:
                if self.core_distances_[point] <= eps:
                    cluster_id += 1
                    labels[point] = cluster_id
            else:
                labels[point] = cluster_id if cluster_id >= 0 else -1
        return labels
