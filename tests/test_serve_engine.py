"""Tests for the micro-batching inference engine (repro.serve.engine)."""

import threading

import numpy as np
import pytest

from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.exceptions import ServiceError, ValidationError
from repro.parallel import ThreadBackend
from repro.serve.engine import InferenceEngine


@pytest.fixture(scope="module")
def fresh_series():
    return make_cylinder_bell_funnel(n_series=16, length=64, noise=0.2, random_state=5).data


def _concurrent_predict(engine, series_matrix):
    """Issue one engine.predict per row from its own thread."""
    results = [None] * len(series_matrix)
    errors = []

    def worker(index):
        try:
            results[index] = engine.predict(series_matrix[index])
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(series_matrix))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return np.asarray(results)


class TestCorrectness:
    def test_single_predict_matches_model(self, fitted_kgraph, fresh_series):
        with InferenceEngine(fitted_kgraph, flush_interval=0.001) as engine:
            prediction = engine.predict(fresh_series[0])
        expected = fitted_kgraph.predict(fresh_series[:1])
        assert prediction == expected[0]

    def test_concurrent_predictions_are_bit_identical(self, fitted_kgraph, fresh_series):
        expected = fitted_kgraph.predict(fresh_series)
        with InferenceEngine(fitted_kgraph, max_batch_size=4, flush_interval=0.02) as engine:
            results = _concurrent_predict(engine, fresh_series)
        assert np.array_equal(results, expected)

    def test_predict_many_matches_model(self, fitted_kgraph, fresh_series):
        expected = fitted_kgraph.predict(fresh_series)
        with InferenceEngine(fitted_kgraph, max_batch_size=8) as engine:
            results = engine.predict_many(fresh_series)
        assert np.array_equal(results, expected)

    def test_thread_backend_dispatch_is_identical(self, fitted_kgraph, fresh_series):
        expected = fitted_kgraph.predict(fresh_series)
        backend = ThreadBackend(2)
        with InferenceEngine(
            fitted_kgraph, max_batch_size=8, backend=backend, dispatch_chunk_size=3
        ) as engine:
            results = engine.predict_many(fresh_series)
        backend.close()
        assert np.array_equal(results, expected)


class TestBatching:
    def test_flush_on_size(self, fitted_kgraph, fresh_series):
        # A huge flush interval means only the size trigger can flush full
        # batches; requests arrive together so they must coalesce.
        with InferenceEngine(fitted_kgraph, max_batch_size=4, flush_interval=5.0) as engine:
            _concurrent_predict(engine, fresh_series[:8])
            stats = engine.stats()
        assert stats["requests"] == 8
        assert stats["flush_reasons"]["size"] >= 1
        assert stats["max_batch_size_seen"] == 4

    def test_flush_on_timeout(self, fitted_kgraph, fresh_series):
        # One lonely request can never fill the batch: only the timeout (or a
        # drain) may flush it.
        with InferenceEngine(fitted_kgraph, max_batch_size=64, flush_interval=0.01) as engine:
            engine.predict(fresh_series[0])
            stats = engine.stats()
        assert stats["batches"] == 1
        assert stats["flush_reasons"]["timeout"] == 1
        assert stats["flush_reasons"]["size"] == 0

    def test_mixed_series_lengths_share_a_batch(self, fitted_kgraph, fresh_series):
        longer = np.concatenate([fresh_series[0], fresh_series[0]])
        with InferenceEngine(fitted_kgraph, max_batch_size=8, flush_interval=0.05) as engine:
            matrix = [fresh_series[0], longer, fresh_series[1]]
            results = [None] * 3
            threads = [
                threading.Thread(target=lambda i=i: results.__setitem__(i, engine.predict(matrix[i])))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert results[0] == fitted_kgraph.predict(fresh_series[:1])[0]
        assert results[2] == fitted_kgraph.predict(fresh_series[1:2])[0]
        assert results[1] in set(np.unique(fitted_kgraph.labels_).tolist())


class TestValidationAndLifecycle:
    def test_malformed_series_fails_fast(self, fitted_kgraph):
        with InferenceEngine(fitted_kgraph) as engine:
            with pytest.raises(ValidationError, match="1-dimensional"):
                engine.predict(np.zeros((3, 64)))
            with pytest.raises(ValidationError, match="length"):
                engine.predict(np.zeros(3))
            with pytest.raises(ValidationError, match="NaN"):
                engine.predict([float("nan")] * 64)

    def test_bad_request_does_not_poison_later_ones(self, fitted_kgraph, fresh_series):
        with InferenceEngine(fitted_kgraph, flush_interval=0.001) as engine:
            with pytest.raises(ValidationError):
                engine.predict(np.zeros(2))
            assert engine.predict(fresh_series[0]) == fitted_kgraph.predict(fresh_series[:1])[0]

    def test_closed_engine_rejects_requests(self, fitted_kgraph, fresh_series):
        engine = InferenceEngine(fitted_kgraph)
        engine.close()
        with pytest.raises(ServiceError, match="closed"):
            engine.predict(fresh_series[0])

    def test_close_is_idempotent(self, fitted_kgraph):
        engine = InferenceEngine(fitted_kgraph)
        engine.close()
        engine.close()

    def test_parameter_validation(self, fitted_kgraph):
        with pytest.raises(ValidationError):
            InferenceEngine(fitted_kgraph, max_batch_size=0)
        with pytest.raises(ValidationError):
            InferenceEngine(fitted_kgraph, flush_interval=-1.0)
        with pytest.raises(ValidationError):
            InferenceEngine(fitted_kgraph, dispatch_chunk_size=0)
