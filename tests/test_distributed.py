"""Tests for the distributed subsystem: registry, worker service, backend.

The HTTP tests run real ``ThreadingHTTPServer`` workers bound to ephemeral
loopback ports (``port=0``) with ``serve_forever`` on daemon threads — the
same wire path production uses, without subprocesses (the subprocess +
SIGKILL path lives in ``tests/test_distributed_chaos.py``).
"""

import json
import threading

import numpy as np
import pytest

from repro.distributed import (
    DistributedBackend,
    PlaneArrayRef,
    PlaneMissError,
    StageDataPlane,
    WorkerApplication,
    canonical_name,
    register_worker_function,
    registered_function_names,
    resolve_worker_function,
    serve_worker,
    worker_function_name,
)
from repro.distributed.functions import checked_sqrt, scale_array, square
from repro.exceptions import ValidationError
from repro.parallel import (
    FallbackBackend,
    RetryPolicy,
    SerialBackend,
    WorkerPoolExhausted,
    resolve_backend,
)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_canonical_name(self):
        assert canonical_name(square) == "repro.distributed.functions:square"

    def test_library_functions_self_register(self):
        names = registered_function_names()
        assert "repro.distributed.functions:square" in names
        assert "repro.benchmark.runner:_execute_grid_combo" in names
        assert any("kgraph_stages" in name for name in names)

    def test_resolve_roundtrip(self):
        assert resolve_worker_function(canonical_name(square)) is square
        assert worker_function_name(square) == canonical_name(square)
        assert worker_function_name("already-a-name") == "already-a-name"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown worker function"):
            resolve_worker_function("no.such:function")

    def test_unregistered_callable_rejected(self):
        def local_fn(job):
            return job

        with pytest.raises(ValidationError, match="not registered"):
            worker_function_name(local_fn)

    def test_collision_rejected_and_reregistration_is_noop(self):
        def probe(job):
            return job

        register_worker_function(probe, name="tests:collision-probe")
        register_worker_function(probe, name="tests:collision-probe")

        def impostor(job):
            return job

        with pytest.raises(ValidationError, match="already registered"):
            register_worker_function(impostor, name="tests:collision-probe")

    def test_non_callable_rejected(self):
        with pytest.raises(ValidationError, match="only callables"):
            register_worker_function("not-a-function")


# --------------------------------------------------------------------- #
# WorkerApplication routed directly (no sockets)
# --------------------------------------------------------------------- #
def _post_jobs(app, function, jobs, **extra):
    import base64
    import pickle

    body = {
        "function": function,
        "jobs": base64.b64encode(
            pickle.dumps(list(jobs), protocol=4)
        ).decode("ascii"),
    }
    body.update(extra)
    return app.handle_request("POST", "/jobs", json.dumps(body).encode())


class TestWorkerApplication:
    @pytest.fixture()
    def app(self):
        application = WorkerApplication()
        yield application
        application.close()

    def test_healthz(self, app):
        status, ctype, body = app.handle_request("GET", "/healthz")
        assert status == 200 and ctype == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["functions"] > 0

    def test_method_not_allowed(self, app):
        status, _, body = app.handle_request("POST", "/healthz", b"")
        assert status == 405
        assert json.loads(body)["error"]["allow"] == ["GET"]
        status, _, _ = app.handle_request("GET", "/jobs")
        assert status == 405

    def test_unknown_route_lists_routes(self, app):
        status, _, body = app.handle_request("GET", "/nope")
        assert status == 404
        assert "/jobs" in json.loads(body)["error"]["routes"]

    def test_jobs_happy_path_and_metrics(self, app):
        status, _, body = _post_jobs(
            app, canonical_name(square), [(3, 2.0), (7, 5.0)]
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["worker_jobs"] == 2
        outcomes = {
            node["index"]: node["value"] for node in payload["outcomes"]
        }
        assert outcomes[3]["v"] == 4.0 and outcomes[7]["v"] == 25.0
        metrics = app.metrics()
        assert metrics["chunks"] == 1 and metrics["jobs_run"] == 2
        assert metrics["bytes_in"] > 0 and metrics["bytes_out"] > 0

    def test_jobs_malformed_body(self, app):
        status, _, _ = app.handle_request("POST", "/jobs", b"not json")
        assert status == 400
        status, _, _ = app.handle_request("POST", "/jobs", b"[1, 2]")
        assert status == 400

    def test_jobs_unknown_function_lists_table(self, app):
        status, _, body = _post_jobs(app, "no.such:function", [(0, 1.0)])
        assert status == 404
        functions = json.loads(body)["error"]["functions"]
        assert canonical_name(square) in functions

    def test_jobs_missing_fields(self, app):
        status, _, _ = app.handle_request("POST", "/jobs", b'{"jobs": "x"}')
        assert status == 400  # no function name
        status, _, body = app.handle_request(
            "POST", "/jobs", json.dumps({"function": canonical_name(square)}).encode()
        )
        assert status == 400
        assert "'jobs'" in json.loads(body)["error"]["message"]

    def test_jobs_oversized_chunk(self):
        app = WorkerApplication(max_chunk_jobs=2)
        try:
            status, _, body = _post_jobs(
                app, canonical_name(square), [(i, 1.0) for i in range(3)]
            )
            assert status == 413
            assert "2-job limit" in json.loads(body)["error"]["message"]
        finally:
            app.close()

    def test_plane_rejected_without_data_plane(self, app):
        status, _, body = _post_jobs(
            app,
            canonical_name(square),
            [(0, 1.0)],
            plane={"directory": "/tmp/x", "min_bytes": 0},
        )
        assert status == 400
        assert "no data plane" in json.loads(body)["error"]["message"]

    def test_plane_outside_root_rejected(self, tmp_path):
        app = WorkerApplication(data_plane=tmp_path / "root")
        try:
            status, _, body = _post_jobs(
                app,
                canonical_name(square),
                [(0, 1.0)],
                plane={"directory": str(tmp_path / "elsewhere"), "min_bytes": 0},
            )
            assert status == 400
            assert "outside" in json.loads(body)["error"]["message"]
        finally:
            app.close()

    def test_invalid_max_chunk_jobs(self):
        with pytest.raises(ValidationError):
            WorkerApplication(max_chunk_jobs=0)


# --------------------------------------------------------------------- #
# Real HTTP workers on ephemeral ports
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def worker_pool(tmp_path_factory):
    plane_dir = tmp_path_factory.mktemp("plane")
    servers, applications, urls = [], [], []
    for _ in range(2):
        application = WorkerApplication(data_plane=plane_dir)
        server = serve_worker(application, port=0, poll=False)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        applications.append(application)
        urls.append(f"127.0.0.1:{server.server_port}")
    yield {"urls": urls, "applications": applications, "plane_dir": plane_dir}
    for server in servers:
        server.shutdown()
        server.server_close()
    for application in applications:
        application.close()


class TestDistributedBackend:
    def test_port_zero_binds_ephemeral_and_ready_sees_it(self):
        seen = {}
        application = WorkerApplication()
        server = serve_worker(
            application, port=0, poll=False, ready=lambda s: seen.update(port=s.server_port)
        )
        try:
            assert server.server_port > 0
            assert seen["port"] == server.server_port
        finally:
            server.server_close()
            application.close()

    def test_results_match_serial_in_order(self, worker_pool):
        jobs = [float(value) for value in range(11)]
        backend = DistributedBackend(worker_pool["urls"])
        try:
            outcomes = backend.map_jobs(square, jobs)
            serial = SerialBackend().map_jobs(square, jobs)
            assert [outcome.index for outcome in outcomes] == list(range(11))
            assert [outcome.value for outcome in outcomes] == [
                outcome.value for outcome in serial
            ]
            assert backend.bytes_shipped > 0
            assert backend.bytes_received > 0
        finally:
            backend.close()

    def test_function_may_be_passed_by_name(self, worker_pool):
        backend = DistributedBackend(worker_pool["urls"])
        try:
            outcomes = backend.map_jobs(canonical_name(square), [3.0])
            assert outcomes[0].value == 9.0
        finally:
            backend.close()

    def test_ndarray_results_bit_identical(self, worker_pool):
        rng = np.random.default_rng(5)
        jobs = [(rng.standard_normal((16, 4)), float(i + 1)) for i in range(4)]
        backend = DistributedBackend(worker_pool["urls"], chunk_size=2)
        try:
            outcomes = backend.map_jobs(scale_array, jobs)
            for outcome, (array, factor) in zip(outcomes, jobs):
                np.testing.assert_array_equal(outcome.value, array * factor)
                assert outcome.value.dtype == np.float64
        finally:
            backend.close()

    def test_error_capture_preserves_type(self, worker_pool):
        backend = DistributedBackend(worker_pool["urls"])
        try:
            outcomes = backend.map_jobs(checked_sqrt, [4.0, -1.0, 9.0])
            assert outcomes[0].value == 2.0 and outcomes[2].value == 3.0
            assert not outcomes[1].ok
            assert isinstance(outcomes[1].exception, ValidationError)
            with pytest.raises(ValidationError):
                outcomes[1].unwrap()
        finally:
            backend.close()

    def test_on_result_runs_on_calling_thread(self, worker_pool):
        threads = []
        backend = DistributedBackend(worker_pool["urls"])
        try:
            backend.map_jobs(
                square,
                [1.0, 2.0, 3.0],
                on_result=lambda outcome: threads.append(
                    threading.current_thread()
                ),
            )
            assert len(threads) == 3
            assert all(thread is threading.main_thread() for thread in threads)
        finally:
            backend.close()

    def test_empty_jobs(self, worker_pool):
        backend = DistributedBackend(worker_pool["urls"])
        try:
            assert backend.map_jobs(square, []) == []
        finally:
            backend.close()

    def test_unreachable_pool_exhausts_and_fallback_demotes(self):
        policy = RetryPolicy(max_attempts=2, max_pool_rebuilds=1)
        backend = DistributedBackend(
            ["127.0.0.1:9"], probe_timeout=0.2, request_timeout=0.5
        )
        try:
            outcomes = backend.map_jobs(square, [2.0], retry=policy)
            assert isinstance(outcomes[0].exception, WorkerPoolExhausted)
            assert "probe sweeps" in outcomes[0].error
        finally:
            backend.close()

        chain = resolve_backend(
            DistributedBackend(
                ["127.0.0.1:9"], probe_timeout=0.2, request_timeout=0.5
            ),
            fallback="serial",
        )
        try:
            assert isinstance(chain, FallbackBackend)
            outcomes = chain.map_jobs(square, [6.0], retry=policy)
            assert outcomes[0].value == 36.0
            assert len(chain.demotions) == 1
            assert chain.demotions[0]["from"] == "distributed"
        finally:
            chain.close()


class TestBackendSpec:
    def test_from_spec_parses_workers_and_plane(self, tmp_path):
        backend = DistributedBackend.from_spec(
            f"distributed:127.0.0.1:8101,127.0.0.1:8102@{tmp_path}"
        )
        try:
            assert [worker.url for worker in backend.workers] == [
                "http://127.0.0.1:8101",
                "http://127.0.0.1:8102",
            ]
            assert backend.data_plane is not None
            assert backend.data_plane.directory == tmp_path
        finally:
            backend.close()

    def test_from_spec_without_plane(self):
        backend = DistributedBackend.from_spec("distributed:127.0.0.1:8101")
        try:
            assert backend.data_plane is None
        finally:
            backend.close()

    def test_from_spec_requires_workers(self):
        with pytest.raises(ValidationError, match="names no workers"):
            DistributedBackend.from_spec("distributed")
        with pytest.raises(ValidationError, match="names no workers"):
            DistributedBackend.from_spec("distributed:@/tmp/plane")

    def test_resolve_backend_accepts_distributed_spec(self):
        backend = resolve_backend("distributed:127.0.0.1:8101")
        try:
            assert backend.name == "distributed"
        finally:
            backend.close()

    def test_constructor_validation(self):
        with pytest.raises(ValidationError, match="at least one worker"):
            DistributedBackend([])
        with pytest.raises(ValidationError, match="duplicate"):
            DistributedBackend(["127.0.0.1:8101", "127.0.0.1:8101"])
        with pytest.raises(ValidationError, match="chunk_size"):
            DistributedBackend(["127.0.0.1:8101"], chunk_size=0)


# --------------------------------------------------------------------- #
# Stage data plane
# --------------------------------------------------------------------- #
class TestStageDataPlane:
    def test_stash_resolve_roundtrip(self, tmp_path):
        plane = StageDataPlane(tmp_path, min_bytes=64)
        array = np.arange(64, dtype=np.float64)
        job = {"data": array, "small": np.arange(2), "k": 3}
        stashed = plane.stash(job)
        assert isinstance(stashed["data"], PlaneArrayRef)
        assert isinstance(stashed["small"], np.ndarray)  # below min_bytes
        resolved = plane.resolve(stashed)
        np.testing.assert_array_equal(resolved["data"], array)
        assert resolved["k"] == 3
        assert plane.arrays_stashed == 1
        assert plane.arrays_resolved == 1
        assert plane.bytes_offloaded == array.nbytes

    def test_dedup_by_content(self, tmp_path):
        plane = StageDataPlane(tmp_path, min_bytes=64)
        array = np.ones(128)
        first = plane.stash_array(array)
        second = plane.stash_array(array.copy())
        assert first == second
        assert plane.arrays_stashed == 1
        assert plane.arrays_deduplicated == 1
        assert plane.bytes_offloaded == 2 * array.nbytes

    def test_miss_raises_plane_miss(self, tmp_path):
        plane = StageDataPlane(tmp_path)
        ref = PlaneArrayRef("0" * 16, "<f8", (4,), 32)
        with pytest.raises(PlaneMissError):
            plane.resolve(ref)

    def test_refs_pickle_roundtrip(self, tmp_path):
        import pickle

        plane = StageDataPlane(tmp_path, min_bytes=8)
        ref = plane.stash_array(np.arange(32, dtype=np.int64))
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        np.testing.assert_array_equal(
            plane.load_array(clone), np.arange(32, dtype=np.int64)
        )

    def test_plane_collapses_bytes_shipped(self, worker_pool):
        rng = np.random.default_rng(9)
        jobs = [(rng.standard_normal((256, 64)), 2.0) for _ in range(3)]

        plain = DistributedBackend(worker_pool["urls"])
        planed = DistributedBackend(
            worker_pool["urls"],
            data_plane=StageDataPlane(worker_pool["plane_dir"], min_bytes=1024),
        )
        try:
            baseline = plain.map_jobs(scale_array, jobs)
            offloaded = planed.map_jobs(scale_array, jobs)
            for lhs, rhs in zip(baseline, offloaded):
                np.testing.assert_array_equal(lhs.value, rhs.value)
            assert plain.bytes_shipped / planed.bytes_shipped >= 10
            assert planed.data_plane.bytes_offloaded > 0
        finally:
            plain.close()
            planed.close()
