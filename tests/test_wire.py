"""Tests for the JSON wire codec behind ``JobOutcome.to_payload``."""

import json
import pickle

import numpy as np
import pytest

from repro.exceptions import BenchmarkError, ValidationError
from repro.parallel import (
    JobOutcome,
    JobTimeoutError,
    RemoteJobError,
    WorkerCrashError,
    WorkerPoolExhausted,
)
from repro.parallel.wire import (
    decode_exception,
    decode_outcome,
    decode_value,
    encode_exception,
    encode_outcome,
    encode_value,
    json_dumps_outcomes,
)


def _roundtrip(value):
    node = encode_value(value)
    # The node must survive an actual JSON hop, not just an in-memory one.
    return decode_value(json.loads(json.dumps(node)))


class TestValueCodec:
    def test_none_and_scalars(self):
        for value in (None, True, False, 0, -7, 3.25, "label", ""):
            assert _roundtrip(value) == value
            assert type(_roundtrip(value)) is type(value)

    def test_ndarray_bit_identical(self):
        rng = np.random.default_rng(3)
        for array in (
            rng.standard_normal((5, 7)),
            np.arange(12, dtype=np.int32).reshape(3, 4),
            np.array([], dtype=np.float64),
            rng.standard_normal((2, 3, 4)).astype(np.float32),
        ):
            decoded = _roundtrip(array)
            assert decoded.dtype == array.dtype
            assert decoded.shape == array.shape
            np.testing.assert_array_equal(decoded, array)

    def test_decoded_ndarray_is_writable(self):
        decoded = _roundtrip(np.ones(4))
        decoded[0] = 5.0
        assert decoded[0] == 5.0

    def test_non_contiguous_ndarray(self):
        array = np.arange(20, dtype=np.float64).reshape(4, 5)[:, ::2]
        np.testing.assert_array_equal(_roundtrip(array), array)

    def test_numpy_scalar(self):
        scalar = np.float64(2.5)
        decoded = _roundtrip(scalar)
        assert decoded == scalar
        assert decoded.dtype == scalar.dtype

    def test_bytes(self):
        payload = b"\x00\x01\xff binary"
        assert _roundtrip(payload) == payload

    def test_list_tuple_identity_preserved(self):
        value = [1, (2.0, "three"), [None, (4,)]]
        decoded = _roundtrip(value)
        assert decoded == value
        assert type(decoded[1]) is tuple
        assert type(decoded[2]) is list
        assert type(decoded[2][1]) is tuple

    def test_dict_with_nested_arrays(self):
        value = {"labels": np.arange(6), "score": 0.5, "meta": {"k": 3}}
        decoded = _roundtrip(value)
        np.testing.assert_array_equal(decoded["labels"], value["labels"])
        assert decoded["score"] == 0.5
        assert decoded["meta"] == {"k": 3}

    def test_pickle_fallback_for_unmodelled_types(self):
        value = {1: "non-str-keyed dicts fall back to pickle"}
        node = encode_value(value)
        assert node["t"] == "pickle"
        assert decode_value(node) == value

    def test_object_dtype_array_uses_pickle(self):
        array = np.array([{"a": 1}, None], dtype=object)
        node = encode_value(array)
        assert node["t"] == "pickle"
        decoded = decode_value(node)
        assert decoded[0] == {"a": 1}

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown wire tag"):
            decode_value({"t": "mystery"})


class TestExceptionCodec:
    @pytest.mark.parametrize(
        "exc",
        [
            ValidationError("n_clusters must be positive"),
            BenchmarkError("no such spec"),
            JobTimeoutError("job 3 timed out after 0.5s"),
            WorkerCrashError("worker pid 123 died"),
            WorkerPoolExhausted("all workers unreachable"),
            ValueError("plain builtin"),
            KeyError("missing"),
        ],
    )
    def test_allowlisted_types_reconstruct(self, exc):
        decoded = decode_exception(encode_exception(exc))
        assert type(decoded) is type(exc)
        assert str(exc) in str(decoded)

    def test_unknown_type_degrades_to_remote_job_error(self):
        decoded = decode_exception(
            {"type": "SomeVendorError", "message": "gpu fell off"}
        )
        assert isinstance(decoded, RemoteJobError)
        assert "SomeVendorError" in str(decoded)
        assert "gpu fell off" in str(decoded)


class TestOutcomePayload:
    def test_ok_ndarray_outcome_roundtrip(self):
        labels = np.array([0, 1, 1, 2, 0], dtype=np.int64)
        outcome = JobOutcome(index=4, value=labels, duration_seconds=0.125)
        restored = JobOutcome.from_payload(
            json.loads(json.dumps(outcome.to_payload()))
        )
        assert restored.index == 4
        assert restored.ok
        np.testing.assert_array_equal(restored.value, labels)
        assert restored.value.dtype == labels.dtype
        assert restored.duration_seconds == 0.125

    def test_failed_outcome_preserves_exception_type(self):
        try:
            raise ValidationError("negative input")
        except ValidationError as exc:
            outcome = JobOutcome(
                index=1,
                error=f"{type(exc).__name__}: {exc}",
                exception=exc,
                traceback="Traceback (most recent call last): ...",
            )
        restored = JobOutcome.from_payload(outcome.to_payload())
        assert not restored.ok
        assert isinstance(restored.exception, ValidationError)
        assert "negative input" in restored.error
        assert restored.traceback.startswith("Traceback")
        with pytest.raises(ValidationError):
            restored.unwrap()

    def test_fault_tolerance_fields_survive(self):
        outcome = JobOutcome(
            index=2,
            error="JobTimeoutError: job 2 timed out",
            exception=JobTimeoutError("job 2 timed out"),
            attempts=3,
            retried=True,
            timed_out=True,
        )
        restored = JobOutcome.from_payload(outcome.to_payload())
        assert restored.attempts == 3
        assert restored.retried is True
        assert restored.timed_out is True
        assert isinstance(restored.exception, JobTimeoutError)

    def test_error_without_exception_stays_unwrappable(self):
        payload = JobOutcome(index=0, error="Exception: lost").to_payload()
        payload["exception"] = None
        restored = JobOutcome.from_payload(payload)
        assert isinstance(restored.exception, RemoteJobError)
        with pytest.raises(RemoteJobError):
            restored.unwrap()

    def test_missing_fault_fields_default_to_single_attempt(self):
        # Payloads from older workers never carried the retry fields.
        payload = encode_outcome(JobOutcome(index=5, value=1.5))
        for key in ("attempts", "retried", "timed_out"):
            del payload[key]
        restored = decode_outcome(payload)
        assert restored.attempts == 1
        assert restored.retried is False
        assert restored.timed_out is False

    def test_pickled_library_value_roundtrips(self):
        # Library dataclasses (e.g. BenchmarkResult) fall back to pickle.
        value = pickle.loads(pickle.dumps({"nested": (np.arange(3), "x")}))
        restored = JobOutcome.from_payload(
            JobOutcome(index=0, value=value).to_payload()
        )
        np.testing.assert_array_equal(restored.value["nested"][0], np.arange(3))

    def test_json_dumps_outcomes_document(self):
        outcomes = [
            JobOutcome(index=0, value=np.ones(2)),
            JobOutcome(index=1, error="ValueError: boom"),
        ]
        document = json.loads(json_dumps_outcomes(outcomes))
        assert [node["index"] for node in document["outcomes"]] == [0, 1]
        restored = [decode_outcome(node) for node in document["outcomes"]]
        assert restored[0].ok and not restored[1].ok
