"""Benchmark frame (Fig. 3, frame 1.2).

A box plot compares k-Graph against the 14 baselines on the selected
evaluation measure, after applying the user's filters on dataset type,
series length, number of classes and number of series.  A mean-rank table
summarises the same population.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.benchmark.aggregate import (
    boxplot_summary,
    filter_results,
    mean_rank_table,
    summarize_by_method,
)
from repro.benchmark.runner import BenchmarkResult
from repro.exceptions import VisualizationError
from repro.viz.frames.base import Frame, Panel, html_table
from repro.viz.plots import box_plot


def build_benchmark_frame(
    results: Sequence[BenchmarkResult],
    *,
    measure: str = "ari",
    dataset_type: Optional[str] = None,
    min_length: Optional[int] = None,
    max_length: Optional[int] = None,
    min_classes: Optional[int] = None,
    max_classes: Optional[int] = None,
    min_series: Optional[int] = None,
    max_series: Optional[int] = None,
) -> Frame:
    """Build the frame from benchmark results and the user's filters."""
    if not results:
        raise VisualizationError("no benchmark results to display")
    filtered = filter_results(
        results,
        dataset_type=dataset_type,
        min_length=min_length,
        max_length=max_length,
        min_classes=min_classes,
        max_classes=max_classes,
        min_series=min_series,
        max_series=max_series,
    )
    if not filtered:
        raise VisualizationError("the selected filters exclude every benchmark result")

    distributions = {
        method: [stats]  # placeholder replaced below; keeps key order stable
        for method, stats in boxplot_summary(filtered, measure).items()
    }
    # Rebuild the raw per-method distributions for the box plot.
    distributions = {}
    for result in filtered:
        if result.failed or measure not in result.measures:
            continue
        distributions.setdefault(result.method, []).append(result.measures[measure])

    frame = Frame(
        frame_id="benchmark",
        title="Compare Methods: Benchmark",
        description=(
            f"Distribution of the {measure.upper()} measure for k-Graph and the "
            "baselines over the filtered dataset population."
        ),
        metadata={
            "measure": measure,
            "n_results": len(filtered),
            "filters": {
                "dataset_type": dataset_type,
                "min_length": min_length,
                "max_length": max_length,
                "min_classes": min_classes,
                "max_classes": max_classes,
                "min_series": min_series,
                "max_series": max_series,
            },
        },
    )
    frame.add_panel(
        Panel(
            title=f"{measure.upper()} per method",
            svg=box_plot(
                distributions,
                title=f"{measure.upper()} across datasets",
                y_label=measure.upper(),
                highlight="kgraph",
            ),
            caption=f"{len(filtered)} (method, dataset) results after filtering.",
        )
    )

    summary = summarize_by_method(filtered)
    rows = [
        {"method": method, **{k: v for k, v in sorted(values.items())}}
        for method, values in sorted(summary.items())
    ]
    frame.add_panel(
        Panel(
            title="Mean score per method",
            html_body=html_table(rows),
            caption="Average of each evaluation measure (and runtime) per method.",
        )
    )

    ranks = mean_rank_table(filtered, measure)
    rank_rows = [
        {"method": method, "mean_rank": rank}
        for method, rank in sorted(ranks.items(), key=lambda item: item[1])
    ]
    frame.add_panel(
        Panel(
            title=f"Mean rank ({measure.upper()})",
            html_body=html_table(rank_rows),
            caption="1 = best; average rank of each method across the filtered datasets.",
        )
    )
    return frame
