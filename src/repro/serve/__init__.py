"""Model serving: artifacts, registry, micro-batching engine, HTTP API.

The fit side of k-Graph is expensive; the predict side is cheap.  This
package turns fitted :class:`~repro.core.kgraph.KGraph` models into
first-class servable artifacts:

* :func:`save_model` / :func:`load_model` — versioned, pickle-free on-disk
  artifacts with bit-exact ``predict`` round-trips
  (:mod:`repro.serve.artifacts`);
* :class:`ModelRegistry` — a disk store with sequential versioning per
  dataset and an in-memory LRU cache (:mod:`repro.serve.registry`);
* :class:`InferenceEngine` — coalesces concurrent single-series predict
  requests into micro-batches dispatched through any
  :class:`~repro.parallel.ExecutionBackend` (:mod:`repro.serve.engine`);
* :class:`ServeApplication` / :func:`serve_models` — the JSON HTTP API
  (``POST /predict``, ``GET /models``, ``GET /healthz``) built on the
  dashboard server plumbing (:mod:`repro.serve.service`).

CLI entry points: ``repro export-model``, ``repro import-model`` and
``repro serve --registry DIR`` (see :mod:`repro.viz.cli`).
"""

from repro.serve.artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_SCHEMA_VERSION,
    load_model,
    read_manifest,
    save_model,
)
from repro.serve.engine import InferenceEngine
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.serve.service import CombinedApplication, ServeApplication, serve_models

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_SCHEMA_VERSION",
    "CombinedApplication",
    "InferenceEngine",
    "ModelRecord",
    "ModelRegistry",
    "ServeApplication",
    "load_model",
    "read_manifest",
    "save_model",
    "serve_models",
]
