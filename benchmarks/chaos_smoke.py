#!/usr/bin/env python
"""Chaos smoke check (CI).

Drives the fault-tolerant execution layer end-to-end with a seeded
:class:`~repro.parallel.ChaosPlan` — no flaky hardware, no wall-clock
randomness — and verifies the recovery invariants cheaply:

1. **Worker kill**: a fan-out whose worker is killed mid-chunk must
   complete with every job's result intact (innocent chunk-mates recovered
   via chunk bisection, the pool rebuilt) and values bit-identical to a
   serial run.
2. **Hang**: a job that hangs must be abandoned by the timeout watchdog
   and recovered on retry within the deadline, not waited out.
3. **k-Graph under chaos**: ``KGraph.fit`` on a chaos-wrapped process
   backend with a retry policy must produce labels bit-identical to the
   serial fit, with the injected faults visible in the pipeline report's
   fault counters.
4. **Fallback demotion**: a chain whose primary exhausts its pool-rebuild
   budget must demote and still return correct results.

Exit status: 0 when every invariant holds, 1 otherwise.  The full matrix
lives in ``tests/test_retry.py`` and ``tests/test_chaos.py``.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel
from repro.parallel import (
    ChaosBackend,
    ChaosPlan,
    FallbackBackend,
    ProcessBackend,
    RetryPolicy,
    SerialBackend,
)


def _check(condition: bool, message: str, failures: list) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


def _square(value: int) -> int:
    return value * value


def _kill_phase(failures: list) -> None:
    print("worker kill mid-chunk (bisection + pool rebuild)")
    plan = ChaosPlan(kills=frozenset({2}))
    policy = RetryPolicy(max_attempts=3, max_pool_rebuilds=8)
    with ProcessBackend(2, chunk_size=4) as inner:
        backend = ChaosBackend(inner, plan)
        outcomes = backend.map_jobs(_square, list(range(12)), retry=policy)
        rebuilds = backend.pool_rebuilds
    expected = [value * value for value in range(12)]
    _check(
        [outcome.value for outcome in outcomes] == expected,
        "all 12 results recovered bit-identically after the kill",
        failures,
    )
    _check(rebuilds >= 1, f"the broken pool was rebuilt ({rebuilds}x)", failures)
    _check(
        outcomes[2].attempts >= 2 and outcomes[2].retried,
        f"the killed job was re-dispatched (attempts={outcomes[2].attempts})",
        failures,
    )


def _hang_phase(failures: list) -> None:
    print("hung job (watchdog abandon + retry)")
    plan = ChaosPlan(hangs=frozenset({1}), hang_seconds=60.0)
    policy = RetryPolicy(max_attempts=2, timeout=0.5)
    start = time.monotonic()
    with ProcessBackend(2) as inner:
        backend = ChaosBackend(inner, plan)
        outcomes = backend.map_jobs(_square, list(range(4)), retry=policy)
    elapsed = time.monotonic() - start
    _check(
        elapsed < 20.0,
        f"the 60 s hang was abandoned, not waited out ({elapsed:.1f} s)",
        failures,
    )
    _check(
        [outcome.value for outcome in outcomes] == [0, 1, 4, 9],
        "every job (including the hung one) recovered",
        failures,
    )


def _kgraph_phase(failures: list) -> None:
    print("k-Graph fit under a kill+hang plan (acceptance scenario)")
    dataset = make_cylinder_bell_funnel(
        n_series=15, length=48, noise=0.2, random_state=0
    )
    params = dict(n_clusters=3, n_lengths=2, random_state=0)
    serial = KGraph(**params).fit(dataset.data)

    plan = ChaosPlan(kills=frozenset({0}), hangs=frozenset({1}), hang_seconds=60.0)
    policy = RetryPolicy(max_attempts=3, timeout=5.0)
    start = time.monotonic()
    with ProcessBackend(2) as inner:
        chaotic = KGraph(
            **params, backend=ChaosBackend(inner, plan), retry=policy
        ).fit(dataset.data)
    elapsed = time.monotonic() - start
    report = chaotic.pipeline_report_
    _check(
        np.array_equal(serial.labels_, chaotic.labels_),
        "labels bit-identical to the serial fit",
        failures,
    )
    _check(
        serial.optimal_length_ == chaotic.optimal_length_,
        f"optimal length preserved ({chaotic.optimal_length_})",
        failures,
    )
    _check(
        report.total_pool_rebuilds >= 1,
        f"injected faults were recovered (pool_rebuilds={report.total_pool_rebuilds}, "
        f"attempts={report.total_attempts})",
        failures,
    )
    _check(elapsed < 120.0, f"fit returned within budget ({elapsed:.1f} s)", failures)


def _fallback_phase(failures: list) -> None:
    print("fallback demotion (rebuild budget exhausted)")
    plan = ChaosPlan(kills=frozenset({0}), persistent=True)
    policy = RetryPolicy(max_attempts=2, max_pool_rebuilds=0)
    with ProcessBackend(2) as inner:
        chain = FallbackBackend([ChaosBackend(inner, plan), SerialBackend()])
        outcomes = chain.map_jobs(_square, list(range(6)), retry=policy)
        demoted = chain.active_index == 1 and len(chain.demotions) == 1
    _check(demoted, f"the chain demoted to serial ({chain.demotions})", failures)
    _check(
        [outcome.value for outcome in outcomes]
        == [value * value for value in range(6)],
        "the demoted re-run returned every result",
        failures,
    )


def main(argv=None) -> int:
    failures: list = []
    _kill_phase(failures)
    _hang_phase(failures)
    _kgraph_phase(failures)
    _fallback_phase(failures)
    if failures:
        print(f"\nchaos smoke FAILED ({len(failures)} check(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\nchaos smoke passed: kills, hangs and exhaustion all recover "
        "with bit-identical results."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
