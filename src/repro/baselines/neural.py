"""A small dense auto-encoder implemented with NumPy.

This is the shared backbone of the deep-learning-style baselines (DAE, DTC,
SOM-VAE).  It is intentionally compact: a single hidden encoder/decoder pair
trained with mini-batch gradient descent on the reconstruction error, enough
to produce a meaningful latent space for clustering on the dataset sizes the
Graphint tool targets.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array, check_positive_int, check_random_state


def _relu(values: np.ndarray) -> np.ndarray:
    return np.maximum(values, 0.0)


def _relu_grad(values: np.ndarray) -> np.ndarray:
    return (values > 0.0).astype(values.dtype)


class DenseAutoencoder:
    """Fully connected auto-encoder ``input -> hidden -> latent -> hidden -> input``.

    Parameters
    ----------
    latent_dim:
        Size of the bottleneck representation.
    hidden_dim:
        Size of the intermediate layers (defaults to ``4 * latent_dim``).
    n_epochs:
        Training epochs over the dataset.
    batch_size:
        Mini-batch size.
    learning_rate:
        Gradient-descent step size.
    random_state:
        Seed for weight initialisation and batch shuffling.

    Attributes
    ----------
    losses_:
        Mean reconstruction loss per epoch (monotone decrease is asserted in
        the tests for well-conditioned inputs).
    """

    def __init__(
        self,
        latent_dim: int = 8,
        *,
        hidden_dim: Optional[int] = None,
        n_epochs: int = 60,
        batch_size: int = 16,
        learning_rate: float = 1e-2,
        random_state=None,
    ) -> None:
        self.latent_dim = check_positive_int(latent_dim, "latent_dim")
        self.hidden_dim = (
            check_positive_int(hidden_dim, "hidden_dim") if hidden_dim is not None else 4 * self.latent_dim
        )
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.random_state = random_state

        self._weights: Optional[List[np.ndarray]] = None
        self._biases: Optional[List[np.ndarray]] = None
        self.losses_: List[float] = []
        self._input_dim: int = 0
        self._scale: Tuple[np.ndarray, np.ndarray] = (np.zeros(1), np.ones(1))

    # ------------------------------------------------------------------ #
    def _init_parameters(self, input_dim: int, rng: np.random.Generator) -> None:
        sizes = [input_dim, self.hidden_dim, self.latent_dim, self.hidden_dim, input_dim]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))
        self._input_dim = input_dim

    def _forward(self, batch: np.ndarray):
        """Forward pass returning every pre-activation and activation."""
        activations = [batch]
        pre_activations = []
        current = batch
        for layer, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            pre = current @ weight + bias
            pre_activations.append(pre)
            # Last layer is linear; latent layer (index 1) is linear too so the
            # embedding is unbounded; the rest use ReLU.
            if layer in (1, len(self._weights) - 1):
                current = pre
            else:
                current = _relu(pre)
            activations.append(current)
        return pre_activations, activations

    def fit(self, data) -> "DenseAutoencoder":
        """Train on ``data`` of shape (n_samples, n_features)."""
        array = check_array(data, name="data", ndim=2, min_rows=2)
        rng = check_random_state(self.random_state)

        means = array.mean(axis=0)
        stds = array.std(axis=0)
        stds = np.where(stds < 1e-12, 1.0, stds)
        self._scale = (means, stds)
        scaled = (array - means) / stds

        self._init_parameters(scaled.shape[1], rng)
        n = scaled.shape[0]
        self.losses_ = []
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                batch = scaled[order[start: start + self.batch_size]]
                pre_activations, activations = self._forward(batch)
                output = activations[-1]
                error = output - batch
                epoch_loss += float(np.mean(error**2))
                n_batches += 1

                # Backpropagation through the 4 layers.
                grad = 2.0 * error / batch.shape[0]
                for layer in range(len(self._weights) - 1, -1, -1):
                    if layer not in (1, len(self._weights) - 1):
                        grad = grad * _relu_grad(pre_activations[layer])
                    weight_grad = activations[layer].T @ grad
                    bias_grad = grad.sum(axis=0)
                    grad = grad @ self._weights[layer].T
                    self._weights[layer] -= self.learning_rate * weight_grad
                    self._biases[layer] -= self.learning_rate * bias_grad
            self.losses_.append(epoch_loss / max(n_batches, 1))
        return self

    def _check_fitted(self) -> None:
        if self._weights is None:
            raise NotFittedError("DenseAutoencoder is not fitted yet")

    def encode(self, data) -> np.ndarray:
        """Latent representation of ``data``."""
        self._check_fitted()
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if array.shape[1] != self._input_dim:
            raise ValidationError(
                f"data has {array.shape[1]} features, model expects {self._input_dim}"
            )
        means, stds = self._scale
        current = (array - means) / stds
        for layer in range(2):
            pre = current @ self._weights[layer] + self._biases[layer]
            current = pre if layer == 1 else _relu(pre)
        return current

    def reconstruct(self, data) -> np.ndarray:
        """Decode the encoding of ``data`` back to the input space."""
        self._check_fitted()
        array = check_array(data, name="data", ndim=2, min_rows=1)
        means, stds = self._scale
        scaled = (array - means) / stds
        _, activations = self._forward(scaled)
        return activations[-1] * stds + means

    def reconstruction_error(self, data) -> float:
        """Mean squared reconstruction error in the original units."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        reconstruction = self.reconstruct(array)
        return float(np.mean((reconstruction - array) ** 2))
