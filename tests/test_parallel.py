"""Tests for the pluggable parallel execution layer (:mod:`repro.parallel`).

The two guarantees under test: (1) backend *parity* — serial, thread and
process execution produce bit-identical pipeline/benchmark results for a
fixed seed; (2) *error isolation* — a raising job is captured on its own
outcome/result instead of crashing the fan-out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.runner import BenchmarkRunner
from repro.core.interpretability import interpretability_scores
from repro.core.kgraph import KGraph
from repro.datasets.catalogue import DatasetCatalogue, DatasetSpec
from repro.datasets.synthetic import make_trend_classes, make_two_patterns
from repro.exceptions import ValidationError
from repro.parallel import (
    ExecutionBackend,
    JobOutcome,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_scope,
    resolve_backend,
)
from repro.utils.timing import Stopwatch

BACKENDS = ["serial", "thread", "process"]


def _square(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return value * value


def _square_or_fail(value: int) -> int:
    """Module-level job that fails on a specific input."""
    if value == 3:
        raise ValueError("boom on 3")
    return value * value


def _picklable_catalogue() -> DatasetCatalogue:
    """A tiny catalogue whose generators survive pickling (module-level)."""
    catalogue = DatasetCatalogue()
    catalogue.register(
        DatasetSpec(
            name="tiny_trend",
            generator=make_trend_classes,
            dataset_type="synthetic-trend",
            n_series=16,
            length=48,
            n_classes=2,
            default_kwargs={"n_series": 16, "length": 48},
        )
    )
    catalogue.register(
        DatasetSpec(
            name="tiny_patterns",
            generator=make_two_patterns,
            dataset_type="synthetic-shape",
            n_series=16,
            length=48,
            n_classes=4,
            default_kwargs={"n_series": 16, "length": 48},
        )
    )
    return catalogue


def _result_signature(results):
    return [
        (
            r.method,
            r.dataset,
            r.error,
            tuple(sorted((k, round(v, 12)) for k, v in r.measures.items())),
        )
        for r in results
    ]


# ---------------------------------------------------------------------- #
# backend mechanics
# ---------------------------------------------------------------------- #
class TestBackends:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_ordered_results(self, name):
        backend = resolve_backend(name, 2)
        outcomes = backend.map_jobs(_square, list(range(8)))
        assert [o.index for o in outcomes] == list(range(8))
        assert [o.unwrap() for o in outcomes] == [v * v for v in range(8)]
        assert all(o.ok for o in outcomes)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_per_job_error_capture(self, name):
        backend = resolve_backend(name, 2)
        outcomes = backend.map_jobs(_square_or_fail, [1, 2, 3, 4])
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert "boom on 3" in outcomes[2].error
        assert outcomes[3].unwrap() == 16
        with pytest.raises(ValueError, match="boom on 3"):
            outcomes[2].unwrap()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_jobs(self, name):
        assert resolve_backend(name).map_jobs(_square, []) == []

    def test_serial_on_result_streams_in_order(self):
        seen = []
        SerialBackend().map_jobs(_square, [1, 2, 3], on_result=seen.append)
        assert [o.index for o in seen] == [0, 1, 2]

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_parallel_on_result_sees_every_job(self, name):
        seen = []
        resolve_backend(name, 2).map_jobs(_square, [1, 2, 3, 4], on_result=seen.append)
        assert sorted(o.index for o in seen) == [0, 1, 2, 3]

    def test_process_chunking(self):
        backend = ProcessBackend(2, chunk_size=3)
        outcomes = backend.map_jobs(_square_or_fail, list(range(7)))
        assert [o.index for o in outcomes] == list(range(7))
        assert not outcomes[3].ok
        assert [o.value for o in outcomes if o.ok] == [0, 1, 4, 16, 25, 36]

    def test_process_unpicklable_job_is_captured(self):
        backend = ProcessBackend(1)
        outcomes = backend.map_jobs(_square, [lambda: 1])
        assert len(outcomes) == 1
        assert not outcomes[0].ok

    def test_durations_recorded(self):
        outcomes = SerialBackend().map_jobs(_square, [5])
        assert outcomes[0].duration_seconds >= 0.0

    def test_job_outcome_unwrap_without_exception_object(self):
        from repro.exceptions import ParallelExecutionError

        outcome = JobOutcome(index=0, error="RuntimeError: lost")
        with pytest.raises(ParallelExecutionError, match="lost"):
            outcome.unwrap()

    @pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
    def test_pool_reused_and_recreated_after_close(self, cls):
        backend = cls(2)
        try:
            assert [o.unwrap() for o in backend.map_jobs(_square, [2, 3])] == [4, 9]
            pool = backend._pool
            backend.map_jobs(_square, [4])
            assert backend._pool is pool  # pool survives across fan-outs
            backend.close()
            assert backend._pool is None
            assert backend.map_jobs(_square, [5])[0].unwrap() == 25  # lazily recreated
        finally:
            backend.close()

    def test_backend_scope_closes_owned_backends_only(self):
        with backend_scope("thread", 2) as owned:
            owned.map_jobs(_square, [1, 2])
        assert owned._pool is None  # closed on exit

        external = ThreadBackend(2)
        try:
            with backend_scope(external) as resolved:
                assert resolved is external
                resolved.map_jobs(_square, [1])
            assert external._pool is not None  # caller-owned: left open
        finally:
            external.close()


class TestResolveBackend:
    def test_default_is_serial(self):
        assert isinstance(resolve_backend(), SerialBackend)
        assert isinstance(resolve_backend(None, 1), SerialBackend)

    def test_n_jobs_alone_selects_threads(self):
        backend = resolve_backend(None, 4)
        assert isinstance(backend, ThreadBackend)
        assert backend.n_workers == 4

    def test_names(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("threads", 2), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend(2)
        assert resolve_backend(backend) is backend

    def test_instance_with_n_jobs_rejected(self):
        with pytest.raises(ValidationError, match="n_jobs cannot be combined"):
            resolve_backend(ThreadBackend(2), 4)

    def test_serial_ignores_n_jobs(self):
        assert isinstance(resolve_backend("serial", 4), SerialBackend)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            resolve_backend("distributed")
        with pytest.raises(ValidationError):
            resolve_backend(None, 0)
        with pytest.raises(ValidationError):
            resolve_backend(42)
        with pytest.raises(ValidationError):
            ThreadBackend(0)
        with pytest.raises(ValidationError):
            ProcessBackend(chunk_size=0)

    def test_pool_sized_from_n_workers(self):
        backend = ThreadBackend(3)
        try:
            backend.map_jobs(_square, [1])
            assert backend._pool._max_workers == 3
        finally:
            backend.close()


class TestStopwatchMerge:
    def test_add_and_merge_accumulate(self):
        watch = Stopwatch()
        watch.add("embedding", 1.0)
        watch.merge({"embedding": 0.5, "clustering": 2.0}, {"embedding": 3, "clustering": 1})
        assert watch.totals() == {"embedding": 1.5, "clustering": 2.0}
        assert watch.counts() == {"embedding": 4, "clustering": 1}

    def test_merge_stopwatch_instance(self):
        first, second = Stopwatch(), Stopwatch()
        first.add("a", 1.0)
        second.add("a", 2.0, count=2)
        first.merge(second)
        assert first.totals()["a"] == pytest.approx(3.0)
        assert first.counts()["a"] == 3

    def test_add_rejects_bad_values(self):
        watch = Stopwatch()
        with pytest.raises(ValueError):
            watch.add("a", -1.0)
        with pytest.raises(ValueError):
            watch.add("a", 1.0, count=0)


# ---------------------------------------------------------------------- #
# backend parity on the real pipeline
# ---------------------------------------------------------------------- #
class TestKGraphParity:
    @pytest.fixture(scope="class")
    def serial_fit(self, small_dataset):
        model = KGraph(n_clusters=3, n_lengths=2, random_state=7)
        model.fit(small_dataset.data)
        return model

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_labels_and_length_identical(self, name, small_dataset, serial_fit):
        model = KGraph(
            n_clusters=3, n_lengths=2, random_state=7, backend=name, n_jobs=2
        )
        model.fit(small_dataset.data)
        assert np.array_equal(model.labels_, serial_fit.labels_)
        assert model.optimal_length_ == serial_fit.optimal_length_
        assert np.allclose(
            model.consensus_matrix_, serial_fit.consensus_matrix_
        )
        for mine, theirs in zip(model.length_scores_, serial_fit.length_scores_):
            assert mine == theirs

    def test_n_jobs_alone(self, small_dataset, serial_fit):
        model = KGraph(n_clusters=3, n_lengths=2, random_state=7, n_jobs=2)
        assert np.array_equal(
            model.fit_predict(small_dataset.data), serial_fit.labels_
        )

    def test_timing_sections_survive_parallel_fit(self, small_dataset):
        model = KGraph(
            n_clusters=3, n_lengths=2, random_state=7, backend="thread", n_jobs=2
        )
        model.fit(small_dataset.data)
        timings = model.result_.timings
        assert {"graph_embedding", "graph_clustering", "consensus_clustering"} <= set(
            timings
        )
        assert all(value >= 0.0 for value in timings.values())

    def test_interpretability_scores_backend_param(self, small_dataset, serial_fit):
        result = serial_fit.result_
        scores = interpretability_scores(
            result.graphs,
            result.partitions,
            result.labels,
            backend="thread",
            n_jobs=2,
        )
        assert scores == result.length_scores


class TestBenchmarkParity:
    @pytest.fixture(scope="class")
    def serial_results(self):
        runner = BenchmarkRunner(
            ["kmeans", "gmm"], catalogue=_picklable_catalogue(), n_runs=2, random_state=3
        )
        return runner.run()

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_measures_identical(self, name, serial_results):
        runner = BenchmarkRunner(
            ["kmeans", "gmm"],
            catalogue=_picklable_catalogue(),
            n_runs=2,
            random_state=3,
            backend=name,
            n_jobs=2,
        )
        assert _result_signature(runner.run()) == _result_signature(serial_results)

    def test_progress_fires_per_run(self):
        calls = []
        runner = BenchmarkRunner(
            ["kmeans"],
            catalogue=_picklable_catalogue(),
            n_runs=2,
            random_state=0,
            backend="thread",
            n_jobs=2,
        )
        runner.run(["tiny_trend"], progress=lambda m, d, r: calls.append((m, d)))
        assert calls == [("kmeans", "tiny_trend")] * 2

    @pytest.mark.parametrize("name", BACKENDS)
    def test_method_failure_is_isolated(self, name, monkeypatch):
        from repro.baselines import registry

        broken = registry.BaselineMethod(
            name="kmeans", family="raw", runner=lambda *a, **k: 1 / 0, description=""
        )
        monkeypatch.setitem(registry._REGISTRY, "kmeans", broken)
        runner = BenchmarkRunner(
            ["kmeans", "gmm"],
            catalogue=_picklable_catalogue(),
            random_state=0,
            backend=name,
            n_jobs=2,
        )
        results = runner.run(["tiny_trend"])
        by_method = {result.method: result for result in results}
        assert by_method["kmeans"].failed
        assert "ZeroDivisionError" in by_method["kmeans"].error
        assert not by_method["gmm"].failed

    def test_misbehaving_backend_rejected(self):
        from repro.exceptions import BenchmarkError

        class LossyBackend(SerialBackend):
            def map_jobs(self, fn, jobs, *, on_result=None):
                return super().map_jobs(fn, jobs, on_result=on_result)[:-1]

        runner = BenchmarkRunner(
            ["kmeans"],
            catalogue=_picklable_catalogue(),
            n_runs=2,
            random_state=0,
            backend=LossyBackend(),
        )
        with pytest.raises(BenchmarkError, match="submitted"):
            runner.run(["tiny_trend"])

    def test_unpicklable_spec_is_isolated_on_process_backend(self):
        catalogue = DatasetCatalogue()
        catalogue.register(
            DatasetSpec(
                name="lambda_ds",
                generator=lambda random_state=None, **kw: make_trend_classes(
                    n_series=16, length=48, random_state=random_state
                ),
                dataset_type="synthetic-trend",
                n_series=16,
                length=48,
                n_classes=2,
            )
        )
        runner = BenchmarkRunner(
            ["kmeans"], catalogue=catalogue, random_state=0, backend="process", n_jobs=2
        )
        results = runner.run(["lambda_ds"])
        assert len(results) == 1
        assert results[0].failed
        assert results[0].dataset == "lambda_ds"
        assert results[0].n_series == 16


class TestSessionThreading:
    def test_session_forwards_backend(self, small_dataset):
        from repro.viz.session import GraphintSession

        serial = GraphintSession(small_dataset, random_state=0).fit()
        threaded = GraphintSession(
            small_dataset, random_state=0, backend="thread", n_jobs=2
        ).fit()
        assert np.array_equal(
            serial.method_labels["kgraph"], threaded.method_labels["kgraph"]
        )
        assert serial.kgraph.optimal_length_ == threaded.kgraph.optimal_length_


def test_custom_backend_instance_is_used(small_dataset):
    class CountingBackend(ExecutionBackend):
        name = "counting"

        def __init__(self):
            self.calls = 0
            self._serial = SerialBackend()

        def map_jobs(self, fn, jobs, *, on_result=None):
            self.calls += 1
            return self._serial.map_jobs(fn, jobs, on_result=on_result)

    backend = CountingBackend()
    KGraph(n_clusters=3, n_lengths=2, random_state=7, backend=backend).fit(
        small_dataset.data
    )
    # per-length embedding + per-length clustering (separate pipeline
    # stages) + interpretability scores + graphoid extraction
    assert backend.calls == 4
