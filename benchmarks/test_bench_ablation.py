"""E9 — Ablation of the design choices DESIGN.md calls out.

1. Consensus over M lengths vs a single-length graph (the motivation for the
   consensus-clustering step).
2. Node+edge features vs node-only vs edge-only in the graph-clustering step.
3. Number of lengths M (accuracy / runtime trade-off).

Expected shapes: the consensus is at least as accurate as the average
single-length partition; node+edge features are competitive with the best
single family; accuracy saturates while runtime grows with M.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from bench_utils import bench_catalogue, format_table, report
from repro.core.kgraph import KGraph
from repro.metrics.clustering import adjusted_rand_index

DATASETS = ("cylinder_bell_funnel", "shapelet_classes", "seasonal_mixture")


def _run_ablation():
    catalogue = bench_catalogue()
    consensus_rows, feature_rows, m_rows = [], [], []
    for name in DATASETS:
        dataset = catalogue.get(name).generate(random_state=5)
        truth = dataset.labels
        k = dataset.n_classes

        # 1. consensus vs single-length graphs.
        model = KGraph(n_clusters=k, n_lengths=4, random_state=5).fit(dataset.data)
        consensus_ari = adjusted_rand_index(truth, model.labels_)
        single_aris = [
            adjusted_rand_index(truth, partition.labels)
            for partition in model.result_.partitions
        ]
        consensus_rows.append(
            {
                "dataset": name,
                "consensus_ari": consensus_ari,
                "best_single_length": max(single_aris),
                "mean_single_length": float(np.mean(single_aris)),
                "worst_single_length": min(single_aris),
            }
        )

        # 2. feature families.
        for mode in ("both", "nodes", "edges"):
            ablated = KGraph(n_clusters=k, n_lengths=3, feature_mode=mode, random_state=5)
            labels = ablated.fit_predict(dataset.data)
            feature_rows.append(
                {
                    "dataset": name,
                    "features": mode,
                    "ari": adjusted_rand_index(truth, labels),
                }
            )

        # 3. number of lengths M.
        for n_lengths in (1, 2, 4):
            start = time.perf_counter()
            swept = KGraph(n_clusters=k, n_lengths=n_lengths, random_state=5)
            labels = swept.fit_predict(dataset.data)
            m_rows.append(
                {
                    "dataset": name,
                    "M": len(swept.result_.graphs),
                    "ari": adjusted_rand_index(truth, labels),
                    "runtime_s": time.perf_counter() - start,
                }
            )
    return consensus_rows, feature_rows, m_rows


@pytest.mark.benchmark(group="E9-ablation")
def test_bench_ablation(benchmark):
    consensus_rows, feature_rows, m_rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    sections = [
        "--- consensus clustering vs single-length graphs (ARI) ---\n"
        + format_table(
            consensus_rows,
            ["dataset", "consensus_ari", "best_single_length", "mean_single_length", "worst_single_length"],
        ),
        "--- feature families in the graph-clustering step (ARI) ---\n"
        + format_table(feature_rows, ["dataset", "features", "ari"]),
        "--- number of subsequence lengths M (ARI and runtime) ---\n"
        + format_table(m_rows, ["dataset", "M", "ari", "runtime_s"]),
        "Paper expectation: the consensus is more robust than relying on one length "
        "(it tracks the best single length and beats the mean), node+edge features are "
        "competitive with the best single family, and runtime grows with M while "
        "accuracy saturates.",
    ]
    report("E9: Ablation (consensus, feature families, number of lengths)", "\n\n".join(sections))

    mean_gain = float(
        np.mean([row["consensus_ari"] - row["mean_single_length"] for row in consensus_rows])
    )
    benchmark.extra_info["consensus_vs_mean_single_gain"] = round(mean_gain, 3)
    # Shape assertion: on average the consensus does not lose to the average single length.
    assert mean_gain > -0.05
