"""Under-the-hood frame (Fig. 3, frame 4).

Exposes the internal artifacts of the k-Graph run for the selected dataset:

* panel 4.1 — the length-selection curves W_c(ℓ), W_e(ℓ) and their product,
  with the selected length ¯ℓ marked;
* panel 4.2 — the feature matrix F_{D,¯ℓ} of the selected graph;
* panel 4.3 — the consensus matrix M_C (rows/columns ordered by the final
  labels so the block structure is visible);
* a per-length summary table (graph sizes, partition inertia).
"""

from __future__ import annotations

import numpy as np

from repro.core.kgraph import KGraph
from repro.exceptions import VisualizationError
from repro.viz.frames.base import Frame, Panel, html_table
from repro.viz.plots import curve_comparison, heatmap


def build_under_the_hood_frame(model: KGraph) -> Frame:
    """Build the frame from a fitted k-Graph model."""
    model._check_fitted()
    result = model.result_

    frame = Frame(
        frame_id="under-the-hood",
        title="Under the hood",
        description=(
            "How k-Graph produced the final clustering: the subsequence-length "
            "selection criteria, the graph feature matrix, and the consensus matrix."
        ),
        metadata={
            "optimal_length": result.optimal_length,
            "lengths": sorted(result.graphs),
        },
    )

    # 4.1 length selection curves.
    scores = sorted(result.length_scores, key=lambda s: s.length)
    lengths = [score.length for score in scores]
    curves = {
        "consistency W_c": [score.consistency for score in scores],
        "interpretability W_e": [score.interpretability for score in scores],
        "W_c x W_e": [score.combined for score in scores],
    }
    frame.add_panel(
        Panel(
            title="4.1 Length selection",
            svg=curve_comparison(
                lengths,
                curves,
                title="length selection criteria",
                x_label="subsequence length ℓ",
                y_label="score",
                marker=float(result.optimal_length),
            ),
            caption=(
                f"The selected length ¯ℓ = {result.optimal_length} maximises "
                "W_c(ℓ) · W_e(ℓ) (dashed line)."
            ),
        )
    )

    # 4.2 feature matrix of the selected graph.
    partition = result.partition_for(result.optimal_length)
    order = np.argsort(result.labels, kind="stable")
    frame.add_panel(
        Panel(
            title="4.2 Feature matrix",
            svg=heatmap(
                partition.feature_matrix[order],
                title=f"feature matrix F (ℓ = {result.optimal_length})",
                x_label="graph nodes and edges",
                y_label="time series (sorted by final cluster)",
            ),
            caption=(
                f"{partition.feature_matrix.shape[0]} series x "
                f"{partition.feature_matrix.shape[1]} node/edge features; rows sorted by "
                "the final k-Graph labels."
            ),
        )
    )

    # 4.3 consensus matrix, ordered by final labels.
    consensus = result.consensus_matrix[np.ix_(order, order)]
    frame.add_panel(
        Panel(
            title="4.3 Consensus matrix",
            svg=heatmap(
                consensus,
                title="consensus matrix M_C",
                x_label="time series",
                y_label="time series",
            ),
            caption=(
                "Fraction of per-length partitions grouping each pair of series together; "
                "the block-diagonal structure is what the final spectral step clusters."
            ),
        )
    )

    # Per-length summary table.
    rows = []
    for score in scores:
        graph = result.graphs[score.length]
        partition = result.partition_for(score.length)
        rows.append(
            {
                "length": score.length,
                "n_nodes": graph.n_nodes,
                "n_edges": graph.n_edges,
                "W_c": score.consistency,
                "W_e": score.interpretability,
                "W_c*W_e": score.combined,
                "kmeans_inertia": partition.inertia,
                "selected": "yes" if score.length == result.optimal_length else "",
            }
        )
    frame.add_panel(
        Panel(
            title="Per-length summary",
            html_body=html_table(rows),
            caption="One graph and one partition per candidate subsequence length.",
        )
    )

    # Stage breakdown (pipeline-driven fits record one stage:<name> section
    # per pipeline stage; reference-monolith fits and old artifacts do not).
    stage_timings = result.stage_timings()
    if stage_timings:
        frame.add_panel(
            Panel(
                title="Pipeline stage breakdown",
                html_body=html_table(
                    [
                        {"stage": stage, "seconds": seconds}
                        for stage, seconds in stage_timings.items()
                    ]
                ),
                caption=(
                    "Wall-clock seconds per pipeline stage (embed -> graph_cluster "
                    "-> consensus -> length_selection -> interpretability); "
                    "stages replayed from a checkpoint cache show near-zero time."
                ),
            )
        )

    # Fine-grained timing sections (worker-side busy time per sub-step).
    timing_rows = [
        {"section": section, "seconds": seconds}
        for section, seconds in result.timings.items()
        if not section.startswith("stage:")
    ]
    if timing_rows:
        frame.add_panel(
            Panel(
                title="Pipeline timings",
                html_body=html_table(timing_rows),
                caption="Busy time spent in each pipeline section.",
            )
        )
    return frame
