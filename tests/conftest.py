"""Shared fixtures for the test suite.

Fixtures are intentionally small (tens of series, short lengths) so the whole
suite runs quickly; the session-scoped fitted models are reused by every test
that only needs to *read* a fitted pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kgraph import KGraph
from repro.datasets.synthetic import make_cylinder_bell_funnel, make_sine_families
from repro.utils.containers import TimeSeriesDataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc random data."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset() -> TimeSeriesDataset:
    """A small labelled pattern dataset (3 classes, 24 series of length 64)."""
    return make_cylinder_bell_funnel(n_series=24, length=64, noise=0.2, random_state=0)


@pytest.fixture(scope="session")
def periodic_dataset() -> TimeSeriesDataset:
    """A small periodic dataset (3 sine families)."""
    return make_sine_families(n_series=18, length=64, noise=0.2, random_state=1)


@pytest.fixture(scope="session")
def blob_data() -> tuple:
    """Well-separated Gaussian blobs in 2-D plus their true assignment."""
    generator = np.random.default_rng(7)
    centers = np.array([[0.0, 0.0], [6.0, 6.0], [0.0, 8.0]])
    points = []
    labels = []
    for label, center in enumerate(centers):
        points.append(generator.normal(0.0, 0.5, size=(20, 2)) + center)
        labels.extend([label] * 20)
    return np.vstack(points), np.asarray(labels)


@pytest.fixture(scope="session")
def fitted_kgraph(small_dataset) -> KGraph:
    """A k-Graph model fitted once and shared by read-only tests."""
    model = KGraph(n_clusters=3, n_lengths=3, random_state=0)
    model.fit(small_dataset.data)
    return model
