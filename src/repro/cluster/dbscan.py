"""DBSCAN density-based clustering.

A classic baseline included in the Benchmark-frame population; it can return
a noise label (-1) which the harness maps to its own singleton clusters when
computing external measures.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.cluster.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.metrics.distances import pairwise_distances
from repro.utils.validation import check_array, check_positive_int


class DBSCAN(BaseClusterer):
    """Density-Based Spatial Clustering of Applications with Noise.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum neighbourhood size (including the point itself) for a core point.
    metric:
        Distance metric name, or ``"precomputed"``.

    Attributes
    ----------
    labels_:
        Cluster assignment; ``-1`` marks noise.
    core_sample_indices_:
        Indices of core samples.
    """

    def __init__(
        self,
        eps: float = 0.5,
        min_samples: int = 5,
        *,
        metric: str = "euclidean",
    ) -> None:
        if eps <= 0:
            raise ValidationError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self.min_samples = check_positive_int(min_samples, "min_samples")
        self.metric = metric

        self.labels_: Optional[np.ndarray] = None
        self.core_sample_indices_: Optional[np.ndarray] = None

    def fit(self, data) -> "DBSCAN":
        """Cluster ``data`` (feature matrix or precomputed distances)."""
        array = check_array(data, name="data", ndim=2, min_rows=1)
        if self.metric == "precomputed":
            if array.shape[0] != array.shape[1]:
                raise ValidationError("precomputed distance matrix must be square")
            distances = array
        else:
            distances = pairwise_distances(array, metric=self.metric)
        n = distances.shape[0]

        neighbourhoods = [np.flatnonzero(distances[i] <= self.eps) for i in range(n)]
        is_core = np.array([len(nb) >= self.min_samples for nb in neighbourhoods])

        labels = np.full(n, -1, dtype=int)
        cluster_id = 0
        for seed in range(n):
            if labels[seed] != -1 or not is_core[seed]:
                continue
            # Breadth-first expansion of the density-reachable set.
            labels[seed] = cluster_id
            queue = deque(neighbourhoods[seed].tolist())
            while queue:
                point = queue.popleft()
                if labels[point] == -1:
                    labels[point] = cluster_id
                    if is_core[point]:
                        queue.extend(neighbourhoods[point].tolist())
            cluster_id += 1

        self.labels_ = labels
        self.core_sample_indices_ = np.flatnonzero(is_core)
        return self
