"""Chaos faults crossing the distributed wire: drops, raises, real kills.

Two tiers of realism:

* in-process HTTP workers (``serve_worker`` on daemon threads) exercise the
  ``drop_result`` and ``raise`` faults — the worker replies 200 *without*
  the victim's outcome (or with a reconstructable ``ChaosError``), and the
  coordinator's retry machinery recovers bit-identically;
* subprocess workers started through the real ``graphint worker`` CLI
  exercise the ``kill`` fault — the worker service ``os._exit(17)``s mid
  request (it declared itself sacrificial via ``REPRO_WORKER_PROCESS``),
  the coordinator sees a connection-level crash, quarantines, and the
  surviving worker finishes the fan-out with results identical to serial.
"""

import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.distributed import DistributedBackend, WorkerApplication, serve_worker
from repro.distributed.functions import square
from repro.parallel import (
    ChaosBackend,
    ChaosError,
    ChaosPlan,
    RetryPolicy,
    SerialBackend,
)

_ANNOUNCE = re.compile(r"http://([\d.]+):(\d+) \(pid (\d+)\)")


# --------------------------------------------------------------------- #
# In-process workers: drop_result and raise over the wire
# --------------------------------------------------------------------- #
@pytest.fixture()
def local_pool():
    servers, applications, urls = [], [], []
    for _ in range(2):
        application = WorkerApplication()
        server = serve_worker(application, port=0, poll=False)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        applications.append(application)
        urls.append(f"127.0.0.1:{server.server_port}")
    yield {"urls": urls, "applications": applications}
    for server in servers:
        server.shutdown()
        server.server_close()
    for application in applications:
        application.close()


def test_dropped_results_are_retried_bit_identical(local_pool):
    jobs = [float(value) for value in range(12)]
    plan = ChaosPlan.scatter(len(jobs), drop_results=3, seed=7)
    backend = ChaosBackend(DistributedBackend(local_pool["urls"]), plan)
    try:
        outcomes = backend.map_jobs(
            square, jobs, retry=RetryPolicy(max_attempts=3)
        )
        serial = SerialBackend().map_jobs(square, jobs)
        assert all(outcome.ok for outcome in outcomes)
        assert [outcome.value for outcome in outcomes] == [
            outcome.value for outcome in serial
        ]
        # Every victim's first attempt was dropped, so each was retried.
        retried = {outcome.index for outcome in outcomes if outcome.retried}
        assert plan.drop_results <= retried
        dropped = sum(
            application.metrics()["jobs_dropped"]
            for application in local_pool["applications"]
        )
        assert dropped == 3
    finally:
        backend.close()


def test_injected_raise_reconstructs_chaos_error(local_pool):
    plan = ChaosPlan(raises=frozenset({1}), persistent=True)
    backend = ChaosBackend(DistributedBackend(local_pool["urls"]), plan)
    try:
        outcomes = backend.map_jobs(square, [1.0, 2.0, 3.0])
        assert outcomes[0].ok and outcomes[2].ok
        # The worker captured a ChaosError; the wire codec must hand the
        # coordinator back the same class, not a stringly degraded one.
        assert isinstance(outcomes[1].exception, ChaosError)
        assert "injected failure" in outcomes[1].error
    finally:
        backend.close()


def test_drop_without_retry_surfaces_missing_outcome(local_pool):
    plan = ChaosPlan(drop_results=frozenset({0}), persistent=True)
    backend = ChaosBackend(DistributedBackend(local_pool["urls"]), plan)
    try:
        outcomes = backend.map_jobs(square, [4.0])
        assert not outcomes[0].ok
        assert "returned no outcome" in outcomes[0].error
    finally:
        backend.close()


# --------------------------------------------------------------------- #
# Subprocess workers: a kill fault takes a real service down
# --------------------------------------------------------------------- #
def _spawn_cli_worker():
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.viz.cli", "worker", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = _ANNOUNCE.search(line)
        if match:
            return process, f"{match.group(1)}:{match.group(2)}"
    process.kill()
    raise RuntimeError(f"worker never announced itself: {''.join(lines)!r}")


def test_kill_fault_exits_worker_and_pool_recovers():
    first, first_url = _spawn_cli_worker()
    second, second_url = _spawn_cli_worker()
    backend = None
    try:
        jobs = [float(value) for value in range(8)]
        plan = ChaosPlan(kills=frozenset({2}))
        backend = ChaosBackend(
            DistributedBackend(
                [first_url, second_url], request_timeout=30.0, probe_timeout=0.5
            ),
            plan,
        )
        outcomes = backend.map_jobs(
            square, jobs, retry=RetryPolicy(max_attempts=3, max_pool_rebuilds=2)
        )
        serial = SerialBackend().map_jobs(square, jobs)
        assert all(outcome.ok for outcome in outcomes)
        assert [outcome.value for outcome in outcomes] == [
            outcome.value for outcome in serial
        ]
        assert outcomes[2].retried  # the victim needed its second attempt

        # One of the two services really died, with the chaos exit code.
        exit_codes = []
        for process in (first, second):
            try:
                exit_codes.append(process.wait(timeout=10))
                break
            except subprocess.TimeoutExpired:
                continue
        assert exit_codes == [17] or second.poll() == 17
    finally:
        if backend is not None:
            backend.inner.shutdown_workers()
            backend.close()
        for process in (first, second):
            if process.poll() is None:
                process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
            process.stdout.close()
