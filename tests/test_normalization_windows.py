"""Unit tests for normalisation helpers and sliding-window extraction."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.normalization import (
    minmax_scale,
    paa,
    resample_dataset,
    resample_length,
    znormalize,
    znormalize_dataset,
)
from repro.utils.windows import (
    length_grid,
    pad_series,
    sliding_window_matrix,
    subsequence_count,
    subsequences_of_dataset,
)


class TestZNormalize:
    def test_zero_mean_unit_std(self, rng):
        series = rng.normal(5.0, 3.0, 100)
        normalized = znormalize(series)
        assert abs(normalized.mean()) < 1e-10
        assert abs(normalized.std() - 1.0) < 1e-10

    def test_constant_series_maps_to_zeros(self):
        assert np.all(znormalize(np.full(10, 7.0)) == 0.0)

    def test_dataset_rowwise(self, rng):
        data = rng.normal(0.0, 2.0, (5, 50)) + np.arange(5)[:, None]
        normalized = znormalize_dataset(data)
        assert np.allclose(normalized.mean(axis=1), 0.0, atol=1e-10)
        assert np.allclose(normalized.std(axis=1), 1.0, atol=1e-10)

    def test_dataset_constant_row(self):
        data = np.vstack([np.full(10, 3.0), np.arange(10, dtype=float)])
        normalized = znormalize_dataset(data)
        assert np.all(normalized[0] == 0.0)
        assert normalized[1].std() > 0


class TestMinMaxAndPaa:
    def test_minmax_range(self, rng):
        scaled = minmax_scale(rng.normal(size=50), (0.0, 1.0))
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_minmax_constant(self):
        scaled = minmax_scale(np.full(5, 2.0), (0.0, 1.0))
        assert np.all(scaled == 0.5)

    def test_minmax_invalid_range(self):
        with pytest.raises(ValidationError):
            minmax_scale(np.arange(5.0), (1.0, 0.0))

    def test_paa_reduces_length(self):
        series = np.arange(100, dtype=float)
        reduced = paa(series, 10)
        assert reduced.shape == (10,)
        assert reduced[0] == pytest.approx(np.mean(np.arange(10)))

    def test_paa_longer_than_series_returns_copy(self):
        series = np.arange(5, dtype=float)
        assert np.array_equal(paa(series, 10), series)


class TestResample:
    def test_resample_preserves_endpoints(self):
        series = np.linspace(0.0, 1.0, 10)
        resampled = resample_length(series, 25)
        assert resampled.shape == (25,)
        assert resampled[0] == pytest.approx(series[0])
        assert resampled[-1] == pytest.approx(series[-1])

    def test_resample_same_length_is_copy(self):
        series = np.arange(10, dtype=float)
        out = resample_length(series, 10)
        assert np.array_equal(out, series)
        assert out is not series

    def test_resample_dataset(self):
        data = np.tile(np.arange(10.0), (3, 1))
        out = resample_dataset(data, 20)
        assert out.shape == (3, 20)


class TestSlidingWindows:
    def test_count_formula(self):
        assert subsequence_count(10, 3) == 8
        assert subsequence_count(10, 3, stride=2) == 4
        assert subsequence_count(3, 10) == 0

    def test_matrix_contents(self):
        series = np.arange(6, dtype=float)
        windows = sliding_window_matrix(series, 3)
        assert windows.shape == (4, 3)
        assert np.array_equal(windows[0], [0, 1, 2])
        assert np.array_equal(windows[-1], [3, 4, 5])

    def test_matrix_stride(self):
        windows = sliding_window_matrix(np.arange(10, dtype=float), 4, stride=3)
        assert windows.shape == (3, 4)
        assert np.array_equal(windows[1], [3, 4, 5, 6])

    def test_window_too_large(self):
        with pytest.raises(ValidationError):
            sliding_window_matrix(np.arange(3, dtype=float), 5)

    def test_dataset_extraction_indices(self):
        data = np.vstack([np.arange(8.0), np.arange(8.0) + 100])
        windows, series_idx, positions = subsequences_of_dataset(data, 4)
        assert windows.shape == (10, 4)
        assert series_idx.tolist() == [0] * 5 + [1] * 5
        assert positions.tolist() == list(range(5)) * 2


class TestPadAndLengthGrid:
    def test_pad_edge(self):
        padded = pad_series(np.array([1.0, 2.0]), 5)
        assert padded.tolist() == [1.0, 2.0, 2.0, 2.0, 2.0]

    def test_pad_zero(self):
        padded = pad_series(np.array([1.0, 2.0]), 4, mode="zero")
        assert padded.tolist() == [1.0, 2.0, 0.0, 0.0]

    def test_pad_truncates(self):
        padded = pad_series(np.arange(10.0), 4)
        assert padded.shape == (4,)

    def test_pad_unknown_mode(self):
        with pytest.raises(ValidationError):
            pad_series(np.arange(4.0), 8, mode="mirror")

    def test_length_grid_properties(self):
        grid = length_grid(128, 4)
        assert len(grid) <= 4
        assert all(g < 128 for g in grid)
        assert grid == sorted(grid)
        assert len(set(grid)) == len(grid)

    def test_length_grid_short_series(self):
        grid = length_grid(16, 5)
        assert all(2 <= g < 16 for g in grid)
