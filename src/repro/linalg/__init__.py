"""Numerical substrates: PCA, kernel density estimation, kernels.

The paper's graph embedding step projects subsequences with PCA and extracts
nodes as local maxima of a kernel density estimate — both are implemented
here from scratch on top of NumPy/SciPy linear algebra.
"""

from repro.linalg.pca import PCA
from repro.linalg.kde import KernelDensityEstimator, scott_bandwidth, silverman_bandwidth
from repro.linalg.kernels import gaussian_kernel_matrix, rbf_affinity

__all__ = [
    "PCA",
    "KernelDensityEstimator",
    "gaussian_kernel_matrix",
    "rbf_affinity",
    "scott_bandwidth",
    "silverman_bandwidth",
]
